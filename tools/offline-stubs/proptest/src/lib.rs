//! Typecheck-only stand-in for `proptest` (see ../README.md).
//!
//! The `proptest!` macro here typechecks test bodies inside a never-called
//! closure; under the stub, property tests compile but assert nothing at
//! runtime. Real runs must use the real crate.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        pub max_local_rejects: u32,
        pub max_global_rejects: u32,
        pub max_shrink_iters: u32,
        pub fork: bool,
        pub timeout: u32,
        pub verbose: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_local_rejects: 65_536,
                max_global_rejects: 1024,
                max_shrink_iters: 4096,
                fork: false,
                timeout: 0,
                verbose: 0,
            }
        }
    }

    /// Mirror of `proptest::test_runner::TestCaseError`.
    #[derive(Debug)]
    pub enum TestCaseError {
        Reject(String),
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail<T: Into<String>>(reason: T) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject<T: Into<String>>(reason: T) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }
}

pub mod strategy {
    use std::marker::PhantomData;

    /// Mirror of `proptest::strategy::Strategy` (value type only; no
    /// shrink trees — the stub never generates values).
    pub trait Strategy {
        type Value: core::fmt::Debug;

        fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, _f: F) -> Map<Self, F, O>
        where
            Self: Sized,
        {
            unimplemented!()
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            _f: F,
        ) -> Filter<Self>
        where
            Self: Sized,
        {
            unimplemented!()
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(PhantomData)
        }
    }

    pub struct Map<S, F, O>(S, F, PhantomData<O>);

    impl<S: Strategy, O: core::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F, O> {
        type Value = O;
    }

    pub struct Filter<S>(S);

    impl<S: Strategy> Strategy for Filter<S> {
        type Value = S::Value;
    }

    /// Mirror of `proptest::strategy::BoxedStrategy`.
    pub struct BoxedStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: core::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
    }

    /// Mirror of `proptest::strategy::Just`.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
        type Value = T;
    }

    /// Backing for `prop_oneof!`: a union of boxed same-valued arms.
    pub fn union<T: core::fmt::Debug>(_arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        BoxedStrategy(PhantomData)
    }

    // String literals are regex strategies generating matching Strings.
    impl Strategy for &'static str {
        type Value = String;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char);

    macro_rules! tuple_strategy {
        ($(($($g:ident),+))*) => {$(
            impl<$($g: Strategy),+> Strategy for ($($g,)+) {
                type Value = ($($g::Value,)+);
            }
        )*};
    }
    tuple_strategy!((A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F));
}

pub mod arbitrary {
    use std::marker::PhantomData;

    /// Mirror of `proptest::arbitrary::Arbitrary` (strategy type elided).
    pub trait Arbitrary: Sized + core::fmt::Debug {}

    macro_rules! arb {
        ($($t:ty),*) => {$( impl Arbitrary for $t {} )*};
    }
    arb!(
        (),
        bool,
        char,
        u8,
        u16,
        u32,
        u64,
        usize,
        i8,
        i16,
        i32,
        i64,
        isize,
        f32,
        f64,
        String
    );

    pub struct StrategyFor<A>(PhantomData<A>);

    impl<A: Arbitrary> crate::strategy::Strategy for StrategyFor<A> {
        type Value = A;
    }

    /// Mirror of `proptest::arbitrary::any`.
    pub fn any<A: Arbitrary>() -> StrategyFor<A> {
        StrategyFor(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::marker::PhantomData;

    /// Mirror of `proptest::collection::SizeRange`.
    pub struct SizeRange(());

    impl From<usize> for SizeRange {
        fn from(_: usize) -> Self {
            SizeRange(())
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(_: core::ops::Range<usize>) -> Self {
            SizeRange(())
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(_: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange(())
        }
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(
        _element: S,
        _size: impl Into<SizeRange>,
    ) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: core::fmt::Debug,
    {
        BoxedStrategy(PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        const _: fn() = || { let _ = $cfg; };
        $crate::proptest! { $($rest)* }
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                fn __stub_value_of<S: $crate::strategy::Strategy>(_s: S) -> S::Value {
                    unreachable!("proptest stub never generates values")
                }
                #[allow(unreachable_code, unused_variables, unused_mut, clippy::diverging_sub_expression)]
                let _typecheck = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = __stub_value_of($strat);)*
                    $body
                    Ok(())
                };
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            let _ = format!("{:?} {:?}", l, r);
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $({ let _ = $weight; $crate::strategy::Strategy::boxed($arm) }),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}
