//! Typecheck-only stand-in for `parking_lot` (see ../README.md).
//!
//! Wraps `std::sync` primitives (ignoring poison) so the API shape —
//! guards without `Result`, `const fn new` — matches parking_lot.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok().map(MutexGuard)
    }

    pub fn try_lock_for(&self, _timeout: std::time::Duration) -> Option<MutexGuard<'_, T>> {
        self.try_lock()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok().map(RwLockReadGuard)
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok().map(RwLockWriteGuard)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
