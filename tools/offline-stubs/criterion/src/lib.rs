//! Typecheck-only stand-in for `criterion` (see ../README.md).
//!
//! Mirrors the bench API shape used by `crates/bench`; closures are
//! typechecked but never executed.

use std::fmt::Display;

/// Mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion(());

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, _f: F) -> &mut Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, _name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup(std::marker::PhantomData)
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a>(std::marker::PhantomData<&'a ()>);

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        _id: ID,
        _f: F,
    ) -> &mut Self {
        self
    }

    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: ID,
        _input: &I,
        _f: F,
    ) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::Bencher`.
pub struct Bencher(());

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, _routine: F) {
        unimplemented!()
    }

    pub fn iter_batched<I, O, S, F>(&mut self, _setup: S, _routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        unimplemented!()
    }

    pub fn iter_custom<F: FnMut(u64) -> std::time::Duration>(&mut self, _routine: F) {
        unimplemented!()
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, _setup: S, _routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        unimplemented!()
    }
}

/// Mirror of `criterion::BatchSize`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Mirror of `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Mirror of `criterion::BenchmarkId`.
pub struct BenchmarkId(());

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(_function_name: S, _parameter: P) -> Self {
        BenchmarkId(())
    }

    pub fn from_parameter<P: Display>(_parameter: P) -> Self {
        BenchmarkId(())
    }
}

/// Anything accepted as a bench id (mirrors criterion's sealed trait).
pub trait IntoBenchmarkId {}

impl IntoBenchmarkId for BenchmarkId {}
impl IntoBenchmarkId for &str {}
impl IntoBenchmarkId for String {}

/// Mirror of `criterion::black_box` (criterion re-exports std's hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
