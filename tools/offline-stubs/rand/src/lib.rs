//! Typecheck-only stand-in for `rand` 0.8 (see ../README.md).

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// Mirror of `rand::RngCore` (marker only; nothing here produces bits).
pub trait RngCore {}

/// Mirror of `rand::SeedableRng` (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Mirror of `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, _range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        unimplemented!()
    }

    fn gen_bool(&mut self, _p: f64) -> bool {
        unimplemented!()
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        unimplemented!()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    /// Mirror of `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng(());

    impl crate::RngCore for StdRng {}

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(_state: u64) -> Self {
            StdRng(())
        }
    }
}

pub mod distributions {
    /// Mirror of `rand::distributions::Standard`.
    #[derive(Debug, Clone, Copy)]
    pub struct Standard;

    /// Mirror of `rand::distributions::Distribution`.
    pub trait Distribution<T> {}

    macro_rules! standard_dist {
        ($($t:ty),*) => {$( impl Distribution<$t> for Standard {} )*};
    }
    standard_dist!(bool, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    pub mod uniform {
        /// Mirror of `rand::distributions::uniform::SampleUniform`.
        pub trait SampleUniform {}

        /// Mirror of `rand::distributions::uniform::SampleRange`.
        pub trait SampleRange<T> {}

        // Generic impls, exactly like real rand: concrete per-type impls
        // would leave integer-literal ranges ambiguous during inference.
        impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {}
        impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {}

        macro_rules! sample_uniform {
            ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
        }
        sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
    }
}

pub mod seq {
    /// Mirror of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: crate::Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: crate::Rng + ?Sized>(&mut self, _rng: &mut R) {
            unimplemented!()
        }

        fn choose<R: crate::Rng + ?Sized>(&self, _rng: &mut R) -> Option<&T> {
            unimplemented!()
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
