//! Typecheck-only stand-in for `serde_json` (see ../README.md).

use std::fmt;

/// Mirror of `serde_json::Error`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(_msg: T) -> Self {
        Error(())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(_msg: T) -> Self {
        Error(())
    }
}

/// Mirror of `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Mirror of `serde_json::Value` (structure only; arithmetic on `Number`
/// is not modelled).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(std::collections::BTreeMap<String, Value>),
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, _s: S) -> std::result::Result<S::Ok, S::Error> {
        unimplemented!()
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(_d: D) -> std::result::Result<Self, D::Error> {
        unimplemented!()
    }
}

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    unimplemented!()
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    unimplemented!()
}

pub fn to_vec<T: ?Sized + serde::Serialize>(_value: &T) -> Result<Vec<u8>> {
    unimplemented!()
}

pub fn to_value<T: serde::Serialize>(_value: T) -> Result<Value> {
    unimplemented!()
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unimplemented!()
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    unimplemented!()
}

pub fn from_value<T: serde::de::DeserializeOwned>(_value: Value) -> Result<T> {
    unimplemented!()
}
