//! Typecheck-only stand-in for `serde` (see ../README.md).
//!
//! Mirrors the trait surface this workspace uses — `Serialize`,
//! `Deserialize<'de>`, the generic `Serializer`/`Deserializer` bounds used
//! by `#[serde(with = ...)]` modules, and `de::Error::custom` — with
//! `unimplemented!()` bodies. Nothing here runs; it exists so `cargo check`
//! works without a registry.

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::Serialize`.
pub trait Serialize {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// Mirror of `serde::Serializer` (associated types only; no workspace
/// code implements it, only bounds on it).
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
}

/// Mirror of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// Mirror of `serde::Deserializer` (associated types only).
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
}

pub mod ser {
    /// Mirror of `serde::ser::Error`.
    pub trait Error: Sized {
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    /// Mirror of `serde::de::Error`.
    pub trait Error: Sized {
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }

    /// Mirror of `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}

macro_rules! stub_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
                unimplemented!()
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
                unimplemented!()
            }
        }
    )*};
}

stub_impls!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        unimplemented!()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        unimplemented!()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        unimplemented!()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        unimplemented!()
    }
}

macro_rules! stub_container {
    ($($name:ident<$($g:ident),*> where ser($($sb:tt)*) de($($db:tt)*);)*) => {$(
        impl<$($g),*> Serialize for $name<$($g),*> where $($sb)* {
            fn serialize<S2: Serializer>(&self, _s: S2) -> Result<S2::Ok, S2::Error> {
                unimplemented!()
            }
        }
        impl<'de, $($g),*> Deserialize<'de> for $name<$($g),*> where $($db)* {
            fn deserialize<D2: Deserializer<'de>>(_d: D2) -> Result<Self, D2::Error> {
                unimplemented!()
            }
        }
    )*};
}

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

stub_container! {
    Vec<T> where ser(T: Serialize) de(T: Deserialize<'de>);
    VecDeque<T> where ser(T: Serialize) de(T: Deserialize<'de>);
    Option<T> where ser(T: Serialize) de(T: Deserialize<'de>);
    Box<T> where ser(T: Serialize) de(T: Deserialize<'de>);
    Rc<T> where ser(T: Serialize) de(T: Deserialize<'de>);
    Arc<T> where ser(T: Serialize) de(T: Deserialize<'de>);
    BinaryHeap<T> where ser(T: Serialize + Ord) de(T: Deserialize<'de> + Ord);
    BTreeSet<T> where ser(T: Serialize + Ord) de(T: Deserialize<'de> + Ord);
    BTreeMap<K, V> where ser(K: Serialize + Ord, V: Serialize)
        de(K: Deserialize<'de> + Ord, V: Deserialize<'de>);
    HashSet<T, S> where ser(T: Serialize + Eq + Hash, S: BuildHasher)
        de(T: Deserialize<'de> + Eq + Hash, S: BuildHasher + Default);
    HashMap<K, V, S> where ser(K: Serialize + Eq + Hash, V: Serialize, S: BuildHasher)
        de(K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>, S: BuildHasher + Default);
}

macro_rules! stub_tuple {
    ($(($($g:ident),+))*) => {$(
        impl<$($g: Serialize),+> Serialize for ($($g,)+) {
            fn serialize<S2: Serializer>(&self, _s: S2) -> Result<S2::Ok, S2::Error> {
                unimplemented!()
            }
        }
        impl<'de, $($g: Deserialize<'de>),+> Deserialize<'de> for ($($g,)+) {
            fn deserialize<D2: Deserializer<'de>>(_d: D2) -> Result<Self, D2::Error> {
                unimplemented!()
            }
        }
    )*};
}

stub_tuple!((A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F));
