//! Typecheck-only stand-in for `serde_derive` (see ../README.md).
//!
//! Emits `unimplemented!()` trait impls for the derived type so downstream
//! code typechecks without pulling `syn`/`quote` from a registry. Field
//! types are never touched, so no bounds are generated — which matches
//! what this workspace needs (all derived types are concrete).

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the first top-level `struct`/`enum`
/// keyword. Attribute contents live inside groups and are not scanned.
fn type_name(input: TokenStream) -> String {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                for tt in &tokens[i + 1..] {
                    if let TokenTree::Ident(name) = tt {
                        return name.to_string();
                    }
                }
            }
        }
        i += 1;
    }
    panic!("offline serde stub: derive input has no struct/enum");
}

fn assert_not_generic(input: &TokenStream, name: &str) {
    let mut seen_name = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == name => seen_name = true,
            TokenTree::Punct(p) if seen_name => {
                if p.as_char() == '<' {
                    panic!(
                        "offline serde stub: generic type `{name}` unsupported; \
                         extend tools/offline-stubs/serde_derive to emit generic impls"
                    );
                }
                break;
            }
            TokenTree::Group(_) if seen_name => break,
            _ => {}
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input.clone());
    assert_not_generic(&input, &name);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S>(&self, _serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error>\n\
             where __S: ::serde::Serializer {{ ::core::unimplemented!() }}\n\
         }}"
    )
    .parse()
    .expect("stub Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input.clone());
    assert_not_generic(&input, &name);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D>(_deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error>\n\
             where __D: ::serde::Deserializer<'de> {{ ::core::unimplemented!() }}\n\
         }}"
    )
    .parse()
    .expect("stub Deserialize impl parses")
}
