#!/usr/bin/env bash
# Typecheck the workspace against the offline stub crates (no network).
# Usage: tools/offline-stubs/check.sh [check|clippy] [extra cargo args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/../.." && pwd)"
stubs="$repo/tools/offline-stubs"
manifest="$repo/Cargo.toml"
cmd="${1:-check}"
shift || true

marker="# BEGIN offline-stubs patch (auto-removed)"
cleanup() {
    # Strip the injected patch table and the lockfile that references it.
    sed -i "/^${marker}\$/,\$d" "$manifest"
    rm -f "$repo/Cargo.lock"
}
trap cleanup EXIT

cleanup # in case a previous run died before its trap
cat >>"$manifest" <<EOF
$marker
[patch.crates-io]
serde = { path = "tools/offline-stubs/serde" }
serde_json = { path = "tools/offline-stubs/serde_json" }
rand = { path = "tools/offline-stubs/rand" }
proptest = { path = "tools/offline-stubs/proptest" }
parking_lot = { path = "tools/offline-stubs/parking_lot" }
criterion = { path = "tools/offline-stubs/criterion" }
EOF

cargo "$cmd" --manifest-path "$manifest" --workspace --all-targets --offline "$@"
