//! Event-graph nodes: one state machine per Snoop operator.
//!
//! Each node receives constituent occurrences on a [`Slot`] and may emit
//! occurrences of its own and/or request timers. All pairing decisions are
//! governed by the node's [`Context`]. The detector owns the nodes and
//! drives propagation; this module is pure state-machine logic so it can be
//! unit-tested without a detector.

use crate::calendar::CalendarExpr;
use crate::context::Context;
use crate::event::{EventId, Occurrence, Params};
use crate::time::{Dur, Interval, Ts};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which input of an operator an occurrence arrives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Slot {
    /// Left child of a binary operator, or the initiator (E₁) of a
    /// windowed operator (NOT / APERIODIC / PERIODIC), or PLUS's base.
    Left,
    /// Right child of a binary operator.
    Right,
    /// Middle event (E₂) of NOT / APERIODIC.
    Middle,
    /// Terminator (E₃) of a windowed operator.
    End,
}

/// A request the node makes of the detector's timer queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TimerReq {
    /// Fire a PLUS detection at `at`, built from the stored base occurrence.
    Plus {
        /// When to fire.
        at: Ts,
        /// The occurrence that started the PLUS.
        base: Occurrence,
    },
    /// Fire a PERIODIC tick for window `serial` at `at`.
    PeriodicTick {
        /// When to fire.
        at: Ts,
        /// The window the tick belongs to.
        serial: u64,
    },
    /// Fire the node's calendar event at `at`.
    Calendar {
        /// When to fire.
        at: Ts,
    },
}

/// An open window of a windowed operator (NOT / APERIODIC / PERIODIC),
/// opened by an initiator occurrence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Window {
    /// Identity for timer routing.
    pub serial: u64,
    /// The initiator occurrence that opened the window.
    pub opener: Occurrence,
    /// NOT: set when a middle event occurred inside the window.
    pub killed: bool,
    /// A* / P*: accumulated middle occurrences.
    pub accum: Vec<Occurrence>,
    /// P / P*: ticks delivered so far.
    pub ticks: u64,
}

impl Window {
    fn new(serial: u64, opener: Occurrence) -> Window {
        Window {
            serial,
            opener,
            killed: false,
            accum: Vec::new(),
            ticks: 0,
        }
    }
}

/// Node behaviour + state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NodeState {
    /// Externally raised event (`U → F(…)`), including external/sensor events.
    Primitive {
        /// The registered event name.
        name: String,
    },
    /// Recurring temporal event from a calendar expression.
    Calendar {
        /// The pattern whose instants fire this event.
        expr: CalendarExpr,
        /// A timer for the next instant is pending.
        scheduled: bool,
    },
    /// Conjunction (any order).
    And(BinState),
    /// Disjunction.
    Or,
    /// Strict sequence.
    Seq(BinState),
    /// Non-occurrence inside a window.
    Not(WindowedState),
    /// Occurrences of a middle event inside a window (A / A*).
    Aperiodic {
        /// Open windows.
        st: WindowedState,
        /// A*: defer to the terminator, accumulated.
        cumulative: bool,
    },
    /// Regular ticks inside a window (P / P*).
    Periodic {
        /// Open windows.
        st: WindowedState,
        /// Tick interval τ.
        period: Dur,
        /// P*: defer to the terminator, counted.
        cumulative: bool,
    },
    /// Relative temporal event: fires Δ after the base event.
    Plus {
        /// The offset Δ.
        delta: Dur,
    },
}

/// Buffers for binary operators (AND buffers both sides, SEQ only the left).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BinState {
    /// Buffered left-side occurrences.
    pub left: VecDeque<Occurrence>,
    /// Buffered right-side occurrences.
    pub right: VecDeque<Occurrence>,
}

/// Open windows of a windowed operator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WindowedState {
    /// Currently open windows, oldest first.
    pub windows: VecDeque<Window>,
    /// Serial for the next window.
    pub next_serial: u64,
}

impl WindowedState {
    fn open(&mut self, opener: Occurrence, ctx: Context) -> u64 {
        // Recent context keeps only the newest window.
        if ctx == Context::Recent {
            self.windows.clear();
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        self.windows.push_back(Window::new(serial, opener));
        serial
    }
}

/// Everything a node emits while handling one input.
#[derive(Debug, Default)]
pub struct NodeOutput {
    /// Occurrences this node produced.
    pub occurrences: Vec<Occurrence>,
    /// Timers this node wants scheduled.
    pub timers: Vec<TimerReq>,
}

fn push_buf(buf: &mut VecDeque<Occurrence>, occ: Occurrence, ctx: Context, cap: usize) {
    if ctx == Context::Recent {
        buf.clear();
    }
    if buf.len() >= cap {
        buf.pop_front();
    }
    buf.push_back(occ);
}

/// Pair a terminator `t` against an initiator buffer per `ctx`.
/// `eligible` decides which buffered occurrences may pair. Returns the
/// composed occurrences; consumed initiators are removed from `buf`.
fn pair(
    me: EventId,
    buf: &mut VecDeque<Occurrence>,
    t: &Occurrence,
    ctx: Context,
    eligible: impl Fn(&Occurrence) -> bool,
) -> Vec<Occurrence> {
    let idxs: Vec<usize> = buf
        .iter()
        .enumerate()
        .filter(|(_, o)| eligible(o))
        .map(|(i, _)| i)
        .collect();
    if idxs.is_empty() {
        return Vec::new();
    }
    let compose = |i: &Occurrence| Occurrence::composite(me, i.interval.hull(&t.interval), &[i, t]);
    match ctx {
        Context::Unrestricted => idxs.iter().map(|&i| compose(&buf[i])).collect(),
        Context::Recent => {
            // Latest eligible initiator; it survives.
            let &i = idxs.last().expect("nonempty");
            vec![compose(&buf[i])]
        }
        Context::Chronicle => {
            let i = idxs[0];
            let init = buf.remove(i).expect("index valid");
            vec![compose(&init)]
        }
        Context::Continuous => {
            let mut out = Vec::with_capacity(idxs.len());
            for &i in idxs.iter().rev() {
                let init = buf.remove(i).expect("index valid");
                out.push(compose(&init));
            }
            out.reverse();
            out
        }
        Context::Cumulative => {
            // Merge all eligible initiators + terminator into one occurrence.
            let mut parts: Vec<Occurrence> = Vec::with_capacity(idxs.len());
            for &i in idxs.iter().rev() {
                parts.push(buf.remove(i).expect("index valid"));
            }
            parts.reverse();
            let mut interval = t.interval;
            for p in &parts {
                interval = interval.hull(&p.interval);
            }
            let mut refs: Vec<&Occurrence> = parts.iter().collect();
            refs.push(t);
            vec![Occurrence::composite(me, interval, &refs)]
        }
    }
}

impl NodeState {
    /// Handle a constituent occurrence arriving on `slot`.
    ///
    /// `me` is this node's id, `ctx` its context, `cap` the buffer cap.
    pub fn on_child(
        &mut self,
        me: EventId,
        ctx: Context,
        cap: usize,
        slot: Slot,
        occ: &Occurrence,
        out: &mut NodeOutput,
    ) {
        match self {
            NodeState::Primitive { .. } | NodeState::Calendar { .. } => {
                unreachable!("leaf nodes have no children")
            }
            NodeState::Or => {
                // OR re-emits the child occurrence under this node's id.
                out.occurrences
                    .push(Occurrence::composite(me, occ.interval, &[occ]));
            }
            NodeState::And(st) => {
                let (mine, other) = match slot {
                    Slot::Left => (&mut st.left, &mut st.right),
                    Slot::Right => (&mut st.right, &mut st.left),
                    _ => unreachable!("AND has only left/right"),
                };
                let dets = pair(me, other, occ, ctx, |_| true);
                if dets.is_empty() {
                    push_buf(mine, occ.clone(), ctx, cap);
                } else {
                    out.occurrences.extend(dets);
                    // Non-consuming contexts also remember the new arrival
                    // for future pairings.
                    if matches!(ctx, Context::Unrestricted | Context::Recent) {
                        push_buf(mine, occ.clone(), ctx, cap);
                    }
                }
            }
            NodeState::Seq(st) => match slot {
                Slot::Left => push_buf(&mut st.left, occ.clone(), ctx, cap),
                Slot::Right => {
                    let dets = pair(me, &mut st.left, occ, ctx, |l| {
                        l.interval.before(&occ.interval)
                    });
                    out.occurrences.extend(dets);
                }
                _ => unreachable!("SEQ has only left/right"),
            },
            NodeState::Not(st) => match slot {
                Slot::Left => {
                    st.open(occ.clone(), ctx);
                }
                Slot::Middle => {
                    for w in st.windows.iter_mut() {
                        if w.opener.interval.before(&occ.interval) {
                            w.killed = true;
                        }
                    }
                }
                Slot::End => {
                    // Collect surviving windows ended by this terminator.
                    let mut survivors: VecDeque<Occurrence> = st
                        .windows
                        .iter()
                        .filter(|w| !w.killed && w.opener.interval.before(&occ.interval))
                        .map(|w| w.opener.clone())
                        .collect();
                    let dets = pair(me, &mut survivors, occ, ctx, |_| true);
                    out.occurrences.extend(dets);
                    // The terminator closes every window it sequences after.
                    st.windows
                        .retain(|w| !w.opener.interval.before(&occ.interval));
                }
                Slot::Right => unreachable!("NOT uses left/middle/end"),
            },
            NodeState::Aperiodic { st, cumulative } => match slot {
                Slot::Left => {
                    st.open(occ.clone(), ctx);
                }
                Slot::Middle => {
                    let eligible: Vec<usize> = st
                        .windows
                        .iter()
                        .enumerate()
                        .filter(|(_, w)| w.opener.interval.before(&occ.interval))
                        .map(|(i, _)| i)
                        .collect();
                    if eligible.is_empty() {
                        return;
                    }
                    if *cumulative {
                        for &i in &eligible {
                            st.windows[i].accum.push(occ.clone());
                        }
                        return;
                    }
                    // Detection interval is the middle event's (SnoopIB: A is
                    // detected whenever E₂ occurs inside the window).
                    let chosen: Vec<usize> = match ctx {
                        Context::Recent => vec![*eligible.last().expect("nonempty")],
                        Context::Chronicle => vec![eligible[0]],
                        _ => eligible,
                    };
                    for i in chosen {
                        let opener = &st.windows[i].opener;
                        out.occurrences.push(Occurrence::composite(
                            me,
                            occ.interval,
                            &[opener, occ],
                        ));
                    }
                }
                Slot::End => {
                    if *cumulative {
                        for w in st
                            .windows
                            .iter()
                            .filter(|w| w.opener.interval.before(&occ.interval))
                        {
                            if w.accum.is_empty() {
                                continue;
                            }
                            let mut interval = occ.interval;
                            interval = interval.hull(&w.opener.interval);
                            let mut refs: Vec<&Occurrence> = vec![&w.opener];
                            refs.extend(w.accum.iter());
                            refs.push(occ);
                            for r in &w.accum {
                                interval = interval.hull(&r.interval);
                            }
                            out.occurrences
                                .push(Occurrence::composite(me, interval, &refs));
                        }
                    }
                    st.windows
                        .retain(|w| !w.opener.interval.before(&occ.interval));
                }
                Slot::Right => unreachable!("APERIODIC uses left/middle/end"),
            },
            NodeState::Periodic { st, period, .. } => match slot {
                Slot::Left => {
                    let at = occ.interval.end + *period;
                    let serial = st.open(occ.clone(), ctx);
                    out.timers.push(TimerReq::PeriodicTick { at, serial });
                }
                // The detector routes PERIODIC's End slot to `on_periodic_end`
                // (it needs `st` and `cumulative` together).
                _ => unreachable!("PERIODIC uses left/end; end routed separately"),
            },
            NodeState::Plus { delta } => {
                debug_assert_eq!(slot, Slot::Left, "PLUS has a single base input");
                out.timers.push(TimerReq::Plus {
                    at: occ.interval.end + *delta,
                    base: occ.clone(),
                });
            }
        }
    }

    /// PERIODIC's `End` slot needs both `st` and `cumulative`; handled here
    /// to keep the borrow simple.
    pub fn on_periodic_end(&mut self, me: EventId, occ: &Occurrence, out: &mut NodeOutput) {
        if let NodeState::Periodic { st, cumulative, .. } = self {
            if *cumulative {
                for w in st
                    .windows
                    .iter()
                    .filter(|w| w.opener.interval.before(&occ.interval) && w.ticks > 0)
                {
                    let interval = w.opener.interval.hull(&occ.interval);
                    let mut o = Occurrence::composite(me, interval, &[&w.opener, occ]);
                    o.params.set("ticks", w.ticks as i64);
                    out.occurrences.push(o);
                }
            }
            st.windows
                .retain(|w| !w.opener.interval.before(&occ.interval));
        } else {
            unreachable!("on_periodic_end on non-periodic node")
        }
    }

    /// Handle a timer firing at `now`.
    pub fn on_timer(&mut self, me: EventId, now: Ts, req: &TimerReq, out: &mut NodeOutput) {
        match (self, req) {
            (NodeState::Plus { .. }, TimerReq::Plus { base, .. }) => {
                let interval = Interval::new(base.interval.start, now);
                let mut o = Occurrence::composite(me, interval, &[base]);
                o.params.set("fired_at", now);
                out.occurrences.push(o);
            }
            (
                NodeState::Periodic {
                    st,
                    period,
                    cumulative,
                },
                TimerReq::PeriodicTick { serial, .. },
            ) => {
                let Some(w) = st.windows.iter_mut().find(|w| w.serial == *serial) else {
                    return; // window already closed
                };
                w.ticks += 1;
                if !*cumulative {
                    let mut o = Occurrence::composite(me, Interval::at(now), &[&w.opener]);
                    o.params.set("tick", now);
                    o.params.set("tick_no", w.ticks as i64);
                    out.occurrences.push(o);
                }
                out.timers.push(TimerReq::PeriodicTick {
                    at: now + *period,
                    serial: *serial,
                });
            }
            (NodeState::Calendar { expr, .. }, TimerReq::Calendar { .. }) => {
                let mut o = Occurrence::primitive(me, now, Params::new());
                o.params.set("time", now);
                out.occurrences.push(o);
                if let Some(next) = expr.next_after(now) {
                    out.timers.push(TimerReq::Calendar { at: next });
                }
            }
            _ => unreachable!("timer/node kind mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(id: u32, t: u64) -> Occurrence {
        Occurrence::primitive(EventId(id), Ts::from_secs(t), Params::new())
    }

    fn seq_node() -> NodeState {
        NodeState::Seq(BinState::default())
    }

    fn run_seq(ctx: Context, events: &[(Slot, Occurrence)]) -> Vec<Occurrence> {
        let mut n = seq_node();
        let mut all = Vec::new();
        for (slot, o) in events {
            let mut out = NodeOutput::default();
            n.on_child(EventId(99), ctx, 1024, *slot, o, &mut out);
            all.extend(out.occurrences);
        }
        all
    }

    #[test]
    fn seq_requires_order() {
        // Right before left: no detection.
        let dets = run_seq(
            Context::Chronicle,
            &[(Slot::Right, occ(2, 1)), (Slot::Left, occ(1, 2))],
        );
        assert!(dets.is_empty());
        // Left then right: one detection spanning both.
        let dets = run_seq(
            Context::Chronicle,
            &[(Slot::Left, occ(1, 1)), (Slot::Right, occ(2, 3))],
        );
        assert_eq!(dets.len(), 1);
        assert_eq!(
            dets[0].interval,
            Interval::new(Ts::from_secs(1), Ts::from_secs(3))
        );
    }

    #[test]
    fn seq_simultaneous_does_not_pair() {
        let dets = run_seq(
            Context::Chronicle,
            &[(Slot::Left, occ(1, 5)), (Slot::Right, occ(2, 5))],
        );
        assert!(dets.is_empty(), "strictly-before required");
    }

    #[test]
    fn seq_contexts_differ() {
        // Two initiators then one terminator.
        let evs = [
            (Slot::Left, occ(1, 1)),
            (Slot::Left, occ(1, 2)),
            (Slot::Right, occ(2, 5)),
            (Slot::Right, occ(2, 6)),
        ];
        // Recent: latest initiator only, reused by both terminators.
        let d = run_seq(Context::Recent, &evs);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].interval.start, Ts::from_secs(2));
        assert_eq!(d[1].interval.start, Ts::from_secs(2));
        // Chronicle: oldest pairs first and is consumed; second terminator
        // gets the second initiator.
        let d = run_seq(Context::Chronicle, &evs);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].interval.start, Ts::from_secs(1));
        assert_eq!(d[1].interval.start, Ts::from_secs(2));
        // Continuous: first terminator consumes both initiators; second gets none.
        let d = run_seq(Context::Continuous, &evs);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].interval.start, Ts::from_secs(1));
        assert_eq!(d[1].interval.start, Ts::from_secs(2));
        assert_eq!(d[0].interval.end, Ts::from_secs(5));
        assert_eq!(d[1].interval.end, Ts::from_secs(5));
        // Cumulative: both initiators merged into one detection.
        let d = run_seq(Context::Cumulative, &evs);
        assert_eq!(d.len(), 1);
        assert_eq!(
            d[0].interval,
            Interval::new(Ts::from_secs(1), Ts::from_secs(5))
        );
        // Unrestricted: all pairings, nothing consumed: 2 + 2.
        let d = run_seq(Context::Unrestricted, &evs);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn and_pairs_either_order() {
        for order in [[Slot::Left, Slot::Right], [Slot::Right, Slot::Left]] {
            let mut n = NodeState::And(BinState::default());
            let mut out = NodeOutput::default();
            n.on_child(
                EventId(9),
                Context::Chronicle,
                16,
                order[0],
                &occ(1, 1),
                &mut out,
            );
            assert!(out.occurrences.is_empty());
            n.on_child(
                EventId(9),
                Context::Chronicle,
                16,
                order[1],
                &occ(2, 2),
                &mut out,
            );
            assert_eq!(out.occurrences.len(), 1);
        }
    }

    #[test]
    fn and_chronicle_consumes() {
        let mut n = NodeState::And(BinState::default());
        let mut out = NodeOutput::default();
        n.on_child(
            EventId(9),
            Context::Chronicle,
            16,
            Slot::Left,
            &occ(1, 1),
            &mut out,
        );
        n.on_child(
            EventId(9),
            Context::Chronicle,
            16,
            Slot::Right,
            &occ(2, 2),
            &mut out,
        );
        assert_eq!(out.occurrences.len(), 1);
        // Initiator consumed: another right alone does not detect.
        let mut out2 = NodeOutput::default();
        n.on_child(
            EventId(9),
            Context::Chronicle,
            16,
            Slot::Right,
            &occ(2, 3),
            &mut out2,
        );
        assert!(out2.occurrences.is_empty());
    }

    #[test]
    fn and_recent_initiator_survives() {
        let mut n = NodeState::And(BinState::default());
        let mut out = NodeOutput::default();
        n.on_child(
            EventId(9),
            Context::Recent,
            16,
            Slot::Left,
            &occ(1, 1),
            &mut out,
        );
        n.on_child(
            EventId(9),
            Context::Recent,
            16,
            Slot::Right,
            &occ(2, 2),
            &mut out,
        );
        n.on_child(
            EventId(9),
            Context::Recent,
            16,
            Slot::Right,
            &occ(2, 3),
            &mut out,
        );
        // Left initiator reused by both right occurrences.
        assert_eq!(out.occurrences.len(), 2);
    }

    #[test]
    fn not_detects_only_without_middle() {
        let me = EventId(9);
        // S at 1, E at 5, no M: detection.
        let mut n = NodeState::Not(WindowedState::default());
        let mut out = NodeOutput::default();
        n.on_child(me, Context::Chronicle, 16, Slot::Left, &occ(1, 1), &mut out);
        n.on_child(me, Context::Chronicle, 16, Slot::End, &occ(3, 5), &mut out);
        assert_eq!(out.occurrences.len(), 1);
        assert_eq!(
            out.occurrences[0].interval,
            Interval::new(Ts::from_secs(1), Ts::from_secs(5))
        );

        // S at 1, M at 3, E at 5: no detection.
        let mut n = NodeState::Not(WindowedState::default());
        let mut out = NodeOutput::default();
        n.on_child(me, Context::Chronicle, 16, Slot::Left, &occ(1, 1), &mut out);
        n.on_child(
            me,
            Context::Chronicle,
            16,
            Slot::Middle,
            &occ(2, 3),
            &mut out,
        );
        n.on_child(me, Context::Chronicle, 16, Slot::End, &occ(3, 5), &mut out);
        assert!(out.occurrences.is_empty());
    }

    #[test]
    fn aperiodic_detects_middle_in_window() {
        let me = EventId(9);
        let mut n = NodeState::Aperiodic {
            st: WindowedState::default(),
            cumulative: false,
        };
        let mut out = NodeOutput::default();
        // M before window opens: nothing.
        n.on_child(me, Context::Recent, 16, Slot::Middle, &occ(2, 1), &mut out);
        assert!(out.occurrences.is_empty());
        // Open window, then M inside: detection with M's interval.
        n.on_child(me, Context::Recent, 16, Slot::Left, &occ(1, 2), &mut out);
        n.on_child(me, Context::Recent, 16, Slot::Middle, &occ(2, 4), &mut out);
        assert_eq!(out.occurrences.len(), 1);
        assert_eq!(out.occurrences[0].interval, Interval::at(Ts::from_secs(4)));
        // Close window; M afterwards: nothing.
        n.on_child(me, Context::Recent, 16, Slot::End, &occ(3, 6), &mut out);
        let before = out.occurrences.len();
        n.on_child(me, Context::Recent, 16, Slot::Middle, &occ(2, 8), &mut out);
        assert_eq!(out.occurrences.len(), before);
    }

    #[test]
    fn aperiodic_star_accumulates() {
        let me = EventId(9);
        let mut n = NodeState::Aperiodic {
            st: WindowedState::default(),
            cumulative: true,
        };
        let mut out = NodeOutput::default();
        n.on_child(me, Context::Recent, 16, Slot::Left, &occ(1, 1), &mut out);
        n.on_child(me, Context::Recent, 16, Slot::Middle, &occ(2, 2), &mut out);
        n.on_child(me, Context::Recent, 16, Slot::Middle, &occ(2, 3), &mut out);
        assert!(out.occurrences.is_empty(), "A* defers to terminator");
        n.on_child(me, Context::Recent, 16, Slot::End, &occ(3, 5), &mut out);
        assert_eq!(out.occurrences.len(), 1);
        // Both middles contributed.
        assert_eq!(out.occurrences[0].sources.len(), 4);
    }

    #[test]
    fn plus_schedules_timer_then_fires() {
        let me = EventId(9);
        let mut n = NodeState::Plus {
            delta: Dur::from_secs(10),
        };
        let mut out = NodeOutput::default();
        n.on_child(me, Context::Recent, 16, Slot::Left, &occ(1, 5), &mut out);
        assert!(out.occurrences.is_empty());
        assert_eq!(out.timers.len(), 1);
        let req = out.timers.pop().unwrap();
        let TimerReq::Plus { at, .. } = &req else {
            panic!("wrong timer kind")
        };
        assert_eq!(*at, Ts::from_secs(15));
        let mut out2 = NodeOutput::default();
        n.on_timer(me, Ts::from_secs(15), &req, &mut out2);
        assert_eq!(out2.occurrences.len(), 1);
        assert_eq!(
            out2.occurrences[0].interval,
            Interval::new(Ts::from_secs(5), Ts::from_secs(15))
        );
    }

    #[test]
    fn periodic_ticks_until_closed() {
        let me = EventId(9);
        let mut n = NodeState::Periodic {
            st: WindowedState::default(),
            period: Dur::from_secs(10),
            cumulative: false,
        };
        let mut out = NodeOutput::default();
        n.on_child(me, Context::Recent, 16, Slot::Left, &occ(1, 0), &mut out);
        assert_eq!(out.timers.len(), 1);
        // Fire two ticks.
        let t1 = out.timers.remove(0);
        let mut o1 = NodeOutput::default();
        n.on_timer(me, Ts::from_secs(10), &t1, &mut o1);
        assert_eq!(o1.occurrences.len(), 1);
        assert_eq!(o1.timers.len(), 1);
        // Close the window; pending tick becomes a no-op.
        n.on_periodic_end(me, &occ(3, 15), &mut o1);
        let t2 = o1.timers.remove(0);
        let mut o2 = NodeOutput::default();
        n.on_timer(me, Ts::from_secs(20), &t2, &mut o2);
        assert!(o2.occurrences.is_empty());
        assert!(o2.timers.is_empty());
    }

    #[test]
    fn buffer_cap_evicts_oldest() {
        let mut buf = VecDeque::new();
        for t in 0..5 {
            push_buf(&mut buf, occ(1, t), Context::Chronicle, 3);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf[0].interval.start, Ts::from_secs(2));
    }
}
