//! Event consumption (parameter) contexts.
//!
//! Snoop defines four contexts that decide *which* constituent occurrences
//! pair up when a composite event can be detected in several ways, and which
//! are consumed afterwards. They exist because applications differ: a
//! monitoring rule may want the most recent sensor reading (Recent) while an
//! audit rule must account for every initiator exactly once (Chronicle).
//!
//! | Context      | Pairing on terminator            | Consumption             |
//! |--------------|----------------------------------|-------------------------|
//! | Unrestricted | every eligible initiator         | none (buffer capped)    |
//! | Recent       | the most recent initiator only   | initiator survives until a newer one arrives |
//! | Chronicle    | the oldest eligible initiator    | that initiator consumed |
//! | Continuous   | every eligible initiator         | all of them consumed    |
//! | Cumulative   | all eligible initiators merged into a single detection | all consumed |

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which initiator occurrences a composite operator pairs and consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Context {
    /// All combinations, nothing consumed (buffers are capped).
    Unrestricted,
    /// Most recent initiator wins; it is reused until replaced.
    #[default]
    Recent,
    /// Oldest initiator pairs first and is consumed (FIFO, one-to-one).
    Chronicle,
    /// Terminator pairs with *all* current initiators and consumes them.
    Continuous,
    /// All current initiators merge into one detection and are consumed.
    Cumulative,
}

impl Context {
    /// Every context, for sweeps and tests.
    pub const ALL: [Context; 5] = [
        Context::Unrestricted,
        Context::Recent,
        Context::Chronicle,
        Context::Continuous,
        Context::Cumulative,
    ];
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Context::Unrestricted => "unrestricted",
            Context::Recent => "recent",
            Context::Chronicle => "chronicle",
            Context::Continuous => "continuous",
            Context::Cumulative => "cumulative",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_recent() {
        assert_eq!(Context::default(), Context::Recent);
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Context::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            names,
            [
                "unrestricted",
                "recent",
                "chronicle",
                "continuous",
                "cumulative"
            ]
        );
    }
}
