//! Event expression AST and a fluent builder for composing events.
//!
//! `EventExpr` is the specification form; [`crate::detector::Detector::define`]
//! compiles it into shared graph nodes. Expressions mirror the paper's
//! operator set (§3): AND, OR, SEQUENCE, NOT, PLUS, APERIODIC (and A*),
//! PERIODIC (and P*), plus calendar (absolute/periodic temporal) events.

use crate::calendar::CalendarExpr;
use crate::context::Context;
use crate::time::Dur;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Specification of an event (primitive or composite).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventExpr {
    /// Reference to an already-defined event by name (error if missing).
    Named(String),
    /// A primitive event, defined on first use.
    Primitive(String),
    /// Conjunction: both occur, in any order.
    And(Box<EventExpr>, Box<EventExpr>),
    /// Disjunction: either occurs.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// `SEQ(E1, E2)`: E1 completes strictly before E2 starts.
    Seq(Box<EventExpr>, Box<EventExpr>),
    /// `NOT(middle)[start, end]`: start..end with no middle in between.
    Not {
        /// Window opener (E₁).
        start: Box<EventExpr>,
        /// The event that must NOT occur (E₂).
        middle: Box<EventExpr>,
        /// Window terminator (E₃).
        end: Box<EventExpr>,
    },
    /// `PLUS(E1, Δ)`: fires Δ after each E1.
    Plus(Box<EventExpr>, Dur),
    /// `A(start, middle, end)`; `cumulative` selects A*.
    Aperiodic {
        /// Window opener (E₁).
        start: Box<EventExpr>,
        /// The event detected inside the window (E₂).
        middle: Box<EventExpr>,
        /// Window terminator (E₃).
        end: Box<EventExpr>,
        /// A* accumulates E₂s and detects once at E₃.
        cumulative: bool,
    },
    /// `P(start, τ, end)`; `cumulative` selects P*.
    Periodic {
        /// Window opener (E₁).
        start: Box<EventExpr>,
        /// Tick interval τ.
        period: Dur,
        /// Window terminator (E₃).
        end: Box<EventExpr>,
        /// P* accumulates ticks and detects once at E₃.
        cumulative: bool,
    },
    /// Absolute/periodic temporal event from a calendar pattern.
    Calendar(CalendarExpr),
    /// Evaluate the inner expression in a specific consumption context.
    WithContext(Box<EventExpr>, Context),
}

impl EventExpr {
    /// A primitive event (defined on first use).
    pub fn prim(name: impl Into<String>) -> EventExpr {
        EventExpr::Primitive(name.into())
    }

    /// A reference to an already-defined event.
    pub fn named(name: impl Into<String>) -> EventExpr {
        EventExpr::Named(name.into())
    }

    /// `AND(a, b)`: both occur, any order.
    pub fn and(a: EventExpr, b: EventExpr) -> EventExpr {
        EventExpr::And(Box::new(a), Box::new(b))
    }

    /// `OR(a, b)`: either occurs.
    pub fn or(a: EventExpr, b: EventExpr) -> EventExpr {
        EventExpr::Or(Box::new(a), Box::new(b))
    }

    /// Fold a list of alternatives into a balanced OR tree.
    pub fn any(mut exprs: Vec<EventExpr>) -> Option<EventExpr> {
        match exprs.len() {
            0 => None,
            1 => exprs.pop(),
            _ => {
                let rest = exprs.split_off(exprs.len() / 2);
                Some(EventExpr::or(
                    EventExpr::any(exprs).expect("nonempty"),
                    EventExpr::any(rest).expect("nonempty"),
                ))
            }
        }
    }

    /// `SEQ(a, b)`: a completes strictly before b starts.
    pub fn seq(a: EventExpr, b: EventExpr) -> EventExpr {
        EventExpr::Seq(Box::new(a), Box::new(b))
    }

    /// `NOT(middle)[start, end]`: start..end with no middle between.
    pub fn not(middle: EventExpr, start: EventExpr, end: EventExpr) -> EventExpr {
        EventExpr::Not {
            start: Box::new(start),
            middle: Box::new(middle),
            end: Box::new(end),
        }
    }

    /// `PLUS(base, Δ)`: fires Δ after each base occurrence.
    pub fn plus(base: EventExpr, delta: Dur) -> EventExpr {
        EventExpr::Plus(Box::new(base), delta)
    }

    /// `A(start, middle, end)`: each middle inside the window detects.
    pub fn aperiodic(start: EventExpr, middle: EventExpr, end: EventExpr) -> EventExpr {
        EventExpr::Aperiodic {
            start: Box::new(start),
            middle: Box::new(middle),
            end: Box::new(end),
            cumulative: false,
        }
    }

    /// `A*(start, middle, end)`: middles accumulate; detected at end.
    pub fn aperiodic_star(start: EventExpr, middle: EventExpr, end: EventExpr) -> EventExpr {
        EventExpr::Aperiodic {
            start: Box::new(start),
            middle: Box::new(middle),
            end: Box::new(end),
            cumulative: true,
        }
    }

    /// `P(start, τ, end)`: fires every τ inside the window.
    pub fn periodic(start: EventExpr, period: Dur, end: EventExpr) -> EventExpr {
        EventExpr::Periodic {
            start: Box::new(start),
            period,
            end: Box::new(end),
            cumulative: false,
        }
    }

    /// `P*(start, τ, end)`: ticks accumulate; detected at end.
    pub fn periodic_star(start: EventExpr, period: Dur, end: EventExpr) -> EventExpr {
        EventExpr::Periodic {
            start: Box::new(start),
            period,
            end: Box::new(end),
            cumulative: true,
        }
    }

    /// A recurring temporal event from a calendar pattern.
    pub fn calendar(expr: CalendarExpr) -> EventExpr {
        EventExpr::Calendar(expr)
    }

    /// Attach a consumption context to this (sub)expression.
    pub fn context(self, ctx: Context) -> EventExpr {
        EventExpr::WithContext(Box::new(self), ctx)
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventExpr::Named(n) | EventExpr::Primitive(n) => write!(f, "{n}"),
            EventExpr::And(a, b) => write!(f, "AND({a}, {b})"),
            EventExpr::Or(a, b) => write!(f, "OR({a}, {b})"),
            EventExpr::Seq(a, b) => write!(f, "SEQ({a}, {b})"),
            EventExpr::Not { start, middle, end } => write!(f, "NOT({middle})[{start}, {end}]"),
            EventExpr::Plus(b, d) => write!(f, "PLUS({b}, {d})"),
            EventExpr::Aperiodic {
                start,
                middle,
                end,
                cumulative,
            } => write!(
                f,
                "A{}({start}, {middle}, {end})",
                if *cumulative { "*" } else { "" }
            ),
            EventExpr::Periodic {
                start,
                period,
                end,
                cumulative,
            } => write!(
                f,
                "P{}({start}, {period}, {end})",
                if *cumulative { "*" } else { "" }
            ),
            EventExpr::Calendar(c) => write!(f, "[{c}]"),
            EventExpr::WithContext(e, c) => write!(f, "{e} in {c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let e = EventExpr::aperiodic(
            EventExpr::calendar(CalendarExpr::daily(10, 0, 0)),
            EventExpr::or(EventExpr::prim("ET1"), EventExpr::prim("ET2")),
            EventExpr::calendar(CalendarExpr::daily(17, 0, 0)),
        );
        assert_eq!(
            e.to_string(),
            "A([10:0:0/*/*/*], OR(ET1, ET2), [17:0:0/*/*/*])"
        );
        let p = EventExpr::plus(EventExpr::prim("E1"), Dur::from_hours(2));
        assert_eq!(p.to_string(), "PLUS(E1, 7200s)");
    }

    #[test]
    fn any_builds_balanced_or() {
        assert_eq!(EventExpr::any(vec![]), None);
        let one = EventExpr::any(vec![EventExpr::prim("a")]).unwrap();
        assert_eq!(one.to_string(), "a");
        let four = EventExpr::any(
            ["a", "b", "c", "d"]
                .iter()
                .map(|n| EventExpr::prim(*n))
                .collect(),
        )
        .unwrap();
        assert_eq!(four.to_string(), "OR(OR(a, b), OR(c, d))");
    }
}
