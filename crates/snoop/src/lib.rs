//! # snoop — composite event specification and detection
//!
//! A from-scratch reimplementation of the Snoop/SnoopIB event substrate the
//! paper's Sentinel+ prototype is built on (Chakravarthy et al., VLDB '94;
//! Adaikkalavan & Chakravarthy, ADBIS '03). It provides:
//!
//! * **primitive events** — named occurrences of interest raised by the
//!   application (`U → F(PA₁…PAₙ)`), plus absolute/periodic **temporal
//!   events** from calendar expressions in the paper's
//!   `hh:mm:ss/mm/dd/yyyy` notation;
//! * **composite events** over the operator set the paper uses for access
//!   control: `AND`, `OR`, `SEQ`, `NOT`, `PLUS`, `APERIODIC`/`A*`,
//!   `PERIODIC`/`P*`, with interval-based (SnoopIB) occurrence semantics;
//! * the four Snoop **consumption contexts** (Recent, Chronicle, Continuous,
//!   Cumulative) plus Unrestricted;
//! * a **virtual clock** and timer queue, so all temporal behaviour is
//!   deterministic and testable without wall-clock time;
//! * an **event graph** with common-subexpression sharing, so the thousands
//!   of generated authorization rules in a large enterprise share detection
//!   work.
//!
//! ## Example: the paper's Rule 2
//!
//! "Close the file forcefully 2 hours after Bob opens it" is
//! `PLUS(E₁, 2 hours)`:
//!
//! ```
//! use snoop::{Detector, EventExpr, Params, Ts, Dur};
//!
//! let mut d = Detector::new(Ts::ZERO);
//! let e1 = EventExpr::prim("bob_opens_patient_dat");
//! let plus = d.define(&EventExpr::plus(e1, Dur::from_hours(2))).unwrap();
//! d.watch(plus);
//!
//! d.raise_named("bob_opens_patient_dat", Params::new().with("file", "patient.dat")).unwrap();
//! // ... two hours later the composite event fires:
//! let detections = d.advance(Dur::from_hours(2)).unwrap();
//! assert_eq!(detections.len(), 1);
//! assert_eq!(detections[0].occurrence.params.get_str("file"), Some("patient.dat"));
//! ```

#![warn(missing_docs)]
#![allow(clippy::result_large_err)]

pub mod builder;
pub mod calendar;
pub mod context;
pub mod detector;
pub mod event;
pub mod node;
pub mod time;

pub use builder::EventExpr;
pub use calendar::{CalendarExpr, Civil, Field};
pub use context::Context;
pub use detector::{Detector, DetectorError};
pub use event::{Detection, EventId, Occurrence, Params, Value};
pub use time::{Dur, Interval, Ts};
