//! Calendar (periodic) time expressions.
//!
//! The paper writes absolute/periodic temporal events in the form
//! `"24h:mi:ss/mm/dd/yyyy"` with `*` wildcards — e.g. `[10:00:00/*/*/*]` is
//! "10:00:00 every day". This module parses that notation and computes, for a
//! given logical timestamp, the next instant matching the pattern.
//!
//! The logical timeline origin ([`Ts::ZERO`]) is defined to be
//! **2000-01-01 00:00:00** (a Saturday), which keeps civil-time conversion
//! self-contained (no OS time dependency, fully deterministic).

use crate::time::{Dur, Ts, MICROS_PER_SEC};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Civil date-time on the logical timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    /// Calendar year (e.g. 2005).
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31.
    pub day: u32,
    /// Hour 0–23.
    pub hour: u32,
    /// Minute 0–59.
    pub min: u32,
    /// Second 0–59.
    pub sec: u32,
}

/// Gregorian leap-year test.
pub fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Days in a month of a given year.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month out of range"),
    }
}

/// Days from 2000-01-01 to y-m-d (Howard Hinnant's days-from-civil, shifted).
fn days_from_origin(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    // 730_425 = days from the civil algorithm epoch to 2000-01-01 (719468 + 10957).
    era * 146_097 + doe - 730_425
}

fn civil_from_days(mut z: i64) -> (i32, u32, u32) {
    z += 730_425;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    ((y + i64::from(m <= 2)) as i32, m, d)
}

impl Civil {
    /// A civil date-time from components (not range-checked).
    pub fn new(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Civil {
        Civil {
            year,
            month,
            day,
            hour,
            min,
            sec,
        }
    }

    /// Convert to a logical timestamp. Dates before the origin saturate to
    /// `Ts::ZERO`.
    pub fn to_ts(self) -> Ts {
        let days = days_from_origin(self.year, self.month, self.day);
        if days < 0 {
            return Ts::ZERO;
        }
        let secs = days as u64 * 86_400
            + u64::from(self.hour) * 3600
            + u64::from(self.min) * 60
            + u64::from(self.sec);
        Ts(secs * MICROS_PER_SEC)
    }

    /// Decompose a logical timestamp into civil time.
    pub fn from_ts(t: Ts) -> Civil {
        let total_secs = t.as_secs();
        let days = (total_secs / 86_400) as i64;
        let rem = total_secs % 86_400;
        let (year, month, day) = civil_from_days(days);
        Civil {
            year,
            month,
            day,
            hour: (rem / 3600) as u32,
            min: (rem % 3600 / 60) as u32,
            sec: (rem % 60) as u32,
        }
    }

    /// Day of week, 0 = Sunday. 2000-01-01 was a Saturday (6).
    pub fn weekday(self) -> u32 {
        let d = days_from_origin(self.year, self.month, self.day);
        ((d % 7 + 7 + 6) % 7) as u32
    }
}

impl fmt::Display for Civil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            self.year, self.month, self.day, self.hour, self.min, self.sec
        )
    }
}

/// A field of a calendar pattern: either a wildcard or a fixed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Field {
    /// Wildcard (`*`): matches every value.
    Any,
    /// Matches exactly this value.
    Is(u32),
}

impl Field {
    fn matches(self, v: u32) -> bool {
        match self {
            Field::Any => true,
            Field::Is(x) => x == v,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Any => write!(f, "*"),
            Field::Is(v) => write!(f, "{v}"),
        }
    }
}

/// Error parsing or evaluating a calendar expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalendarError {
    /// The text did not match `hh:mm:ss/mm/dd/yyyy`.
    Syntax(String),
    /// A field value was out of range (e.g. month 13).
    Range(&'static str, u32),
}

impl fmt::Display for CalendarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalendarError::Syntax(s) => write!(f, "malformed calendar expression {s:?}"),
            CalendarError::Range(field, v) => write!(f, "calendar field {field} out of range: {v}"),
        }
    }
}

impl std::error::Error for CalendarError {}

/// A periodic calendar expression in the paper's `hh:mm:ss/mm/dd/yyyy` form.
///
/// Every instant whose civil decomposition matches all six fields is an
/// occurrence of the expression. `CalendarExpr::parse("10:00:00/*/*/*")` is
/// 10 a.m. every day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CalendarExpr {
    /// Hour-of-day pattern.
    pub hour: Field,
    /// Minute pattern.
    pub min: Field,
    /// Second pattern.
    pub sec: Field,
    /// Month pattern.
    pub month: Field,
    /// Day-of-month pattern.
    pub day: Field,
    /// Year pattern.
    pub year: Field,
}

impl CalendarExpr {
    /// A fully wildcarded expression with only the time-of-day set: `hh:mm:ss/*/*/*`.
    pub fn daily(hour: u32, min: u32, sec: u32) -> CalendarExpr {
        CalendarExpr {
            hour: Field::Is(hour),
            min: Field::Is(min),
            sec: Field::Is(sec),
            month: Field::Any,
            day: Field::Any,
            year: Field::Any,
        }
    }

    /// A single absolute instant.
    pub fn absolute(c: Civil) -> CalendarExpr {
        CalendarExpr {
            hour: Field::Is(c.hour),
            min: Field::Is(c.min),
            sec: Field::Is(c.sec),
            month: Field::Is(c.month),
            day: Field::Is(c.day),
            year: Field::Is(c.year as u32),
        }
    }

    /// Parse `hh:mm:ss/mm/dd/yyyy`. A trailing `/mm/dd/yyyy` may be partially
    /// or fully omitted (missing fields default to `*`), so `"10:00:00"` is
    /// accepted as 10 a.m. daily.
    pub fn parse(s: &str) -> Result<CalendarExpr, CalendarError> {
        let s = s.trim();
        let mut slash = s.splitn(4, '/');
        let time = slash
            .next()
            .ok_or_else(|| CalendarError::Syntax(s.to_string()))?;
        let mut tparts = time.split(':');
        let hour = parse_field(tparts.next(), s)?;
        let min = parse_field(tparts.next(), s)?;
        let sec = parse_field(tparts.next(), s)?;
        if tparts.next().is_some() {
            return Err(CalendarError::Syntax(s.to_string()));
        }
        let month = match slash.next() {
            Some(p) => parse_field(Some(p), s)?,
            None => Field::Any,
        };
        let day = match slash.next() {
            Some(p) => parse_field(Some(p), s)?,
            None => Field::Any,
        };
        let year = match slash.next() {
            Some(p) => parse_field(Some(p), s)?,
            None => Field::Any,
        };
        let e = CalendarExpr {
            hour,
            min,
            sec,
            month,
            day,
            year,
        };
        e.validate()?;
        Ok(e)
    }

    fn validate(&self) -> Result<(), CalendarError> {
        if let Field::Is(h) = self.hour {
            if h > 23 {
                return Err(CalendarError::Range("hour", h));
            }
        }
        if let Field::Is(m) = self.min {
            if m > 59 {
                return Err(CalendarError::Range("minute", m));
            }
        }
        if let Field::Is(s) = self.sec {
            if s > 59 {
                return Err(CalendarError::Range("second", s));
            }
        }
        if let Field::Is(m) = self.month {
            if !(1..=12).contains(&m) {
                return Err(CalendarError::Range("month", m));
            }
        }
        if let Field::Is(d) = self.day {
            if !(1..=31).contains(&d) {
                return Err(CalendarError::Range("day", d));
            }
        }
        Ok(())
    }

    /// Does the civil time match this pattern?
    pub fn matches(&self, c: Civil) -> bool {
        self.hour.matches(c.hour)
            && self.min.matches(c.min)
            && self.sec.matches(c.sec)
            && self.month.matches(c.month)
            && self.day.matches(c.day)
            && self.year.matches(c.year as u32)
    }

    /// The next instant strictly after `t` matching the pattern, or `None`
    /// if there is none within the search horizon (~8 years — only possible
    /// for fixed-year patterns in the past).
    pub fn next_after(&self, t: Ts) -> Option<Ts> {
        let start = Civil::from_ts(t + Dur::from_secs(1));
        // Walk days from `start`'s day; within a matching day find the first
        // matching time-of-day.
        let mut days = days_from_origin(start.year, start.month, start.day);
        let horizon = days + 366 * 8;
        let mut first_day = true;
        while days <= horizon {
            let (y, m, d) = civil_from_days(days);
            let day_ok =
                self.year.matches(y as u32) && self.month.matches(m) && self.day.matches(d);
            if day_ok {
                let floor = if first_day {
                    Some((start.hour, start.min, start.sec))
                } else {
                    None
                };
                if let Some(tod) = self.first_time_of_day_at_or_after(floor) {
                    let civil = Civil::new(y, m, d, tod.0, tod.1, tod.2);
                    return Some(civil.to_ts());
                }
            }
            days += 1;
            first_day = false;
        }
        None
    }

    /// The latest instant at or before `t` matching the pattern, or `None`
    /// if there is none within the search horizon (~8 years back, clamped at
    /// the timeline origin).
    pub fn prev_at_or_before(&self, t: Ts) -> Option<Ts> {
        let start = Civil::from_ts(t);
        let mut days = days_from_origin(start.year, start.month, start.day);
        let horizon = (days - 366 * 8).max(0);
        let mut first_day = true;
        while days >= horizon {
            let (y, m, d) = civil_from_days(days);
            let day_ok =
                self.year.matches(y as u32) && self.month.matches(m) && self.day.matches(d);
            if day_ok {
                let ceil = if first_day {
                    Some((start.hour, start.min, start.sec))
                } else {
                    None
                };
                if let Some(tod) = self.last_time_of_day_at_or_before(ceil) {
                    let civil = Civil::new(y, m, d, tod.0, tod.1, tod.2);
                    return Some(civil.to_ts());
                }
            }
            if days == 0 {
                break;
            }
            days -= 1;
            first_day = false;
        }
        None
    }

    /// Last (h, m, s) matching the time fields that is <= `ceil`
    /// (or the largest matching time when `ceil` is None).
    fn last_time_of_day_at_or_before(
        &self,
        ceil: Option<(u32, u32, u32)>,
    ) -> Option<(u32, u32, u32)> {
        let (ch, cm, cs) = ceil.unwrap_or((23, 59, 59));
        let hours: Vec<u32> = match self.hour {
            Field::Is(h) => vec![h],
            Field::Any => (0..24).rev().collect(),
        };
        for h in hours {
            if h > ch {
                continue;
            }
            let (min_ceil, carry_min) = if h == ch { (cm, true) } else { (59, false) };
            let mins: Vec<u32> = match self.min {
                Field::Is(m) => vec![m],
                Field::Any => (0..60).rev().collect(),
            };
            for m in mins {
                if carry_min && m > min_ceil {
                    continue;
                }
                let sec_ceil = if carry_min && m == min_ceil { cs } else { 59 };
                match self.sec {
                    Field::Is(s) => {
                        if s <= sec_ceil {
                            return Some((h, m, s));
                        }
                    }
                    Field::Any => {
                        return Some((h, m, sec_ceil));
                    }
                }
            }
        }
        None
    }

    /// First (h, m, s) matching the time fields that is >= `floor`
    /// (or the smallest matching time when `floor` is None).
    fn first_time_of_day_at_or_after(
        &self,
        floor: Option<(u32, u32, u32)>,
    ) -> Option<(u32, u32, u32)> {
        let (fh, fm, fs) = floor.unwrap_or((0, 0, 0));
        let hours: Vec<u32> = match self.hour {
            Field::Is(h) => vec![h],
            Field::Any => (0..24).collect(),
        };
        for h in hours {
            if h < fh {
                continue;
            }
            let (min_floor, carry_min) = if h == fh { (fm, true) } else { (0, false) };
            let mins: Vec<u32> = match self.min {
                Field::Is(m) => vec![m],
                Field::Any => (0..60).collect(),
            };
            for m in mins {
                if carry_min && m < min_floor {
                    continue;
                }
                let sec_floor = if carry_min && m == min_floor { fs } else { 0 };
                match self.sec {
                    Field::Is(s) => {
                        if s >= sec_floor {
                            return Some((h, m, s));
                        }
                    }
                    Field::Any => {
                        if sec_floor <= 59 {
                            return Some((h, m, sec_floor));
                        }
                    }
                }
            }
        }
        None
    }
}

fn parse_field(p: Option<&str>, whole: &str) -> Result<Field, CalendarError> {
    let p = p
        .ok_or_else(|| CalendarError::Syntax(whole.to_string()))?
        .trim();
    if p == "*" {
        Ok(Field::Any)
    } else {
        p.parse::<u32>()
            .map(Field::Is)
            .map_err(|_| CalendarError::Syntax(whole.to_string()))
    }
}

impl FromStr for CalendarExpr {
    type Err = CalendarError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CalendarExpr::parse(s)
    }
}

impl fmt::Display for CalendarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}/{}/{}/{}",
            self.hour, self.min, self.sec, self.month, self.day, self.year
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_round_trip_origin() {
        let c = Civil::new(2000, 1, 1, 0, 0, 0);
        assert_eq!(c.to_ts(), Ts::ZERO);
        assert_eq!(Civil::from_ts(Ts::ZERO), c);
    }

    #[test]
    fn civil_round_trip_various() {
        for (y, m, d, h, mi, s) in [
            (2000, 2, 29, 12, 0, 0), // leap day
            (2001, 3, 1, 23, 59, 59),
            (2004, 12, 31, 0, 0, 1),
            (2010, 7, 15, 6, 30, 0),
            (2099, 1, 1, 1, 1, 1),
        ] {
            let c = Civil::new(y, m, d, h, mi, s);
            assert_eq!(Civil::from_ts(c.to_ts()), c, "{c}");
        }
    }

    #[test]
    fn weekday_of_known_dates() {
        // 2000-01-01 was a Saturday.
        assert_eq!(Civil::new(2000, 1, 1, 0, 0, 0).weekday(), 6);
        // 2000-01-02 Sunday.
        assert_eq!(Civil::new(2000, 1, 2, 0, 0, 0).weekday(), 0);
        // 2005-04-05 (ICDE 2005 week) was a Tuesday.
        assert_eq!(Civil::new(2005, 4, 5, 0, 0, 0).weekday(), 2);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2004));
        assert!(!is_leap(2001));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(2001, 2), 28);
    }

    #[test]
    fn parse_paper_notation() {
        let e = CalendarExpr::parse("10:00:00/*/*/*").unwrap();
        assert_eq!(e.hour, Field::Is(10));
        assert_eq!(e.month, Field::Any);
        assert_eq!(e.to_string(), "10:0:0/*/*/*");
        assert!(CalendarExpr::parse("25:00:00/*/*/*").is_err());
        assert!(CalendarExpr::parse("10:61:00").is_err());
        assert!(CalendarExpr::parse("nonsense").is_err());
        // Omitted date fields default to wildcard.
        let d = CalendarExpr::parse("17:00:00").unwrap();
        assert_eq!(d.day, Field::Any);
    }

    #[test]
    fn next_after_daily() {
        let e = CalendarExpr::daily(10, 0, 0);
        // From origin (midnight), next 10:00 is same day.
        let t = e.next_after(Ts::ZERO).unwrap();
        assert_eq!(Civil::from_ts(t), Civil::new(2000, 1, 1, 10, 0, 0));
        // From 10:00 exactly, next is tomorrow (strictly after).
        let t2 = e.next_after(t).unwrap();
        assert_eq!(Civil::from_ts(t2), Civil::new(2000, 1, 2, 10, 0, 0));
    }

    #[test]
    fn next_after_monthly_and_absolute() {
        // First of every month at midnight.
        let e = CalendarExpr::parse("00:00:00/*/1/*").unwrap();
        let t = e
            .next_after(Civil::new(2000, 1, 15, 0, 0, 0).to_ts())
            .unwrap();
        assert_eq!(Civil::from_ts(t), Civil::new(2000, 2, 1, 0, 0, 0));

        // Absolute instant fires once, then never again.
        let a = CalendarExpr::absolute(Civil::new(2000, 6, 1, 12, 0, 0));
        let t1 = a.next_after(Ts::ZERO).unwrap();
        assert_eq!(Civil::from_ts(t1), Civil::new(2000, 6, 1, 12, 0, 0));
        assert_eq!(a.next_after(t1), None);
    }

    #[test]
    fn next_after_every_second_within_hour() {
        // Every minute at second 30 (wildcard hour/min).
        let e = CalendarExpr::parse("*:*:30/*/*/*").unwrap();
        let t0 = Civil::new(2000, 1, 1, 5, 10, 31).to_ts();
        let t = e.next_after(t0).unwrap();
        assert_eq!(Civil::from_ts(t), Civil::new(2000, 1, 1, 5, 11, 30));
    }

    #[test]
    fn matches_pattern() {
        let e = CalendarExpr::parse("10:00:00/*/*/*").unwrap();
        assert!(e.matches(Civil::new(2003, 5, 6, 10, 0, 0)));
        assert!(!e.matches(Civil::new(2003, 5, 6, 11, 0, 0)));
    }
}

#[cfg(test)]
mod prev_tests {
    use super::*;

    #[test]
    fn prev_daily() {
        let e = CalendarExpr::daily(10, 0, 0);
        // At 12:00: the 10:00 of the same day.
        let t = Civil::new(2000, 1, 5, 12, 0, 0).to_ts();
        assert_eq!(
            Civil::from_ts(e.prev_at_or_before(t).unwrap()),
            Civil::new(2000, 1, 5, 10, 0, 0)
        );
        // At 09:00: yesterday's 10:00.
        let t = Civil::new(2000, 1, 5, 9, 0, 0).to_ts();
        assert_eq!(
            Civil::from_ts(e.prev_at_or_before(t).unwrap()),
            Civil::new(2000, 1, 4, 10, 0, 0)
        );
        // Exactly at 10:00: inclusive.
        let t = Civil::new(2000, 1, 5, 10, 0, 0).to_ts();
        assert_eq!(e.prev_at_or_before(t), Some(t));
    }

    #[test]
    fn prev_before_any_occurrence_is_none() {
        let e = CalendarExpr::daily(10, 0, 0);
        // 2000-01-01 05:00 — no 10:00 has happened yet on the timeline.
        let t = Civil::new(2000, 1, 1, 5, 0, 0).to_ts();
        assert_eq!(e.prev_at_or_before(t), None);
    }

    #[test]
    fn prev_next_round_trip() {
        let e = CalendarExpr::parse("*:30:00/*/*/*").unwrap();
        let t = Civil::new(2001, 6, 15, 14, 45, 10).to_ts();
        let p = e.prev_at_or_before(t).unwrap();
        assert_eq!(Civil::from_ts(p), Civil::new(2001, 6, 15, 14, 30, 0));
        let n = e.next_after(p).unwrap();
        assert_eq!(Civil::from_ts(n), Civil::new(2001, 6, 15, 15, 30, 0));
    }
}
