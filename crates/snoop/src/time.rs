//! Logical time for the event detector.
//!
//! All detector time is a [`Ts`] — microseconds on a logical timeline driven
//! by a virtual clock, so temporal operators (PLUS, PERIODIC, calendar
//! events) are deterministic under test. A `Ts` of zero is the timeline
//! origin; the calendar module maps `Ts` to civil time by treating the origin
//! as 2000-01-01 00:00:00.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point on the logical timeline (microseconds since origin).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ts(pub u64);

impl Ts {
    /// The timeline origin.
    pub const ZERO: Ts = Ts(0);

    /// A timestamp from microseconds since origin.
    pub const fn from_micros(us: u64) -> Ts {
        Ts(us)
    }

    /// A timestamp from seconds since origin.
    pub const fn from_secs(s: u64) -> Ts {
        Ts(s * MICROS_PER_SEC)
    }

    /// Microseconds since origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since origin.
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Saturating subtraction, returning a duration.
    pub fn since(self, earlier: Ts) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Dur> for Ts {
    type Output = Ts;
    fn add(self, d: Dur) -> Ts {
        Ts(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Ts {
    fn add_assign(&mut self, d: Dur) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<Dur> for Ts {
    type Output = Ts;
    fn sub(self, d: Dur) -> Ts {
        Ts(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 / MICROS_PER_SEC;
        let us = self.0 % MICROS_PER_SEC;
        if us == 0 {
            write!(f, "{s}s")
        } else {
            write!(f, "{s}.{us:06}s")
        }
    }
}

/// A span of logical time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Dur(pub u64);

impl Dur {
    /// The empty duration.
    pub const ZERO: Dur = Dur(0);

    /// A duration in microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us)
    }

    /// A duration in seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * MICROS_PER_SEC)
    }

    /// A duration in minutes.
    pub const fn from_mins(m: u64) -> Dur {
        Dur(m * 60 * MICROS_PER_SEC)
    }

    /// A duration in hours.
    pub const fn from_hours(h: u64) -> Dur {
        Dur(h * 3600 * MICROS_PER_SEC)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Is this the empty duration?
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, o: Dur) -> Dur {
        Dur(self.0.saturating_add(o.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 / MICROS_PER_SEC;
        let us = self.0 % MICROS_PER_SEC;
        if us == 0 {
            write!(f, "{s}s")
        } else {
            write!(f, "{s}.{us:06}s")
        }
    }
}

/// A closed occurrence interval `[start, end]` in interval-based (SnoopIB)
/// semantics: a composite event's interval runs from its initiator's start to
/// its terminator's end. Primitive occurrences are instantaneous
/// (`start == end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Start of the occurrence.
    pub start: Ts,
    /// End of the occurrence (inclusive).
    pub end: Ts,
}

impl Interval {
    /// An instantaneous interval at `t`.
    pub fn at(t: Ts) -> Interval {
        Interval { start: t, end: t }
    }

    /// An interval from `start` to `end` (must not be reversed).
    pub fn new(start: Ts, end: Ts) -> Interval {
        debug_assert!(start <= end, "interval start must not exceed end");
        Interval { start, end }
    }

    /// SnoopIB sequencing: `self` occurs strictly before `other` when
    /// `self.end < other.start`.
    pub fn before(&self, other: &Interval) -> bool {
        self.end < other.start
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Does the closed interval contain `t`?
    pub fn contains(&self, t: Ts) -> bool {
        self.start <= t && t <= self.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_arithmetic() {
        let t = Ts::from_secs(10);
        assert_eq!(t + Dur::from_secs(5), Ts::from_secs(15));
        assert_eq!(t - Dur::from_secs(3), Ts::from_secs(7));
        // Saturating below zero.
        assert_eq!(Ts::from_secs(1) - Dur::from_secs(10), Ts::ZERO);
        assert_eq!(Ts::from_secs(15).since(t), Dur::from_secs(5));
        assert_eq!(t.since(Ts::from_secs(15)), Dur::ZERO);
    }

    #[test]
    fn dur_constructors() {
        assert_eq!(Dur::from_hours(2), Dur::from_mins(120));
        assert_eq!(Dur::from_mins(1), Dur::from_secs(60));
        assert_eq!(Dur::from_secs(1).as_micros(), MICROS_PER_SEC);
        assert!(Dur::ZERO.is_zero());
    }

    #[test]
    fn interval_before_is_strict() {
        let a = Interval::at(Ts::from_secs(1));
        let b = Interval::at(Ts::from_secs(1));
        let c = Interval::at(Ts::from_secs(2));
        assert!(!a.before(&b), "equal timestamps do not sequence");
        assert!(a.before(&c));
        assert!(!c.before(&a));
    }

    #[test]
    fn interval_hull_and_contains() {
        let a = Interval::new(Ts::from_secs(1), Ts::from_secs(3));
        let b = Interval::new(Ts::from_secs(2), Ts::from_secs(5));
        let h = a.hull(&b);
        assert_eq!(h, Interval::new(Ts::from_secs(1), Ts::from_secs(5)));
        assert!(h.contains(Ts::from_secs(4)));
        assert!(!h.contains(Ts::from_secs(6)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ts::from_secs(3).to_string(), "3s");
        assert_eq!(Ts(1_500_000).to_string(), "1.500000s");
        assert_eq!(Dur::from_hours(1).to_string(), "3600s");
        assert_eq!(
            Interval::new(Ts::from_secs(1), Ts::from_secs(2)).to_string(),
            "[1s, 2s]"
        );
    }
}
