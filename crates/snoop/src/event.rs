//! Event occurrences and their parameters.
//!
//! A primitive event in the paper is `U → F(PA₁ … PAₙ)` — a subject invoking
//! a function with parameters. Occurrences carry those parameters so the
//! **W** (condition) and **T/E** (action) parts of OWTE rules can read them.

use crate::time::{Interval, Ts};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Index of an event node in a [`crate::detector::Detector`]'s graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// A parameter value. The small closed set covers everything RBAC
/// enforcement needs; `Str` is the escape hatch.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A signed integer (entity ids, counts).
    Int(i64),
    /// A boolean flag.
    Bool(bool),
    /// A string (names, messages).
    Str(String),
    /// A timestamp (used by temporal events).
    Time(Ts),
}

impl Value {
    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The timestamp value, if this is a `Time`.
    pub fn as_time(&self) -> Option<Ts> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(i64::from(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<Ts> for Value {
    fn from(v: Ts) -> Value {
        Value::Time(v)
    }
}

/// Named parameter list of an occurrence (`⟨PA₁ … PAₙ⟩`).
///
/// Composite occurrences merge their constituents' parameters; on a name
/// collision the *later* (terminator-side) value wins, matching Snoop's
/// left-to-right parameter concatenation with the most recent binding
/// visible.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Params(Vec<(String, Value)>);

impl Params {
    /// An empty parameter list.
    pub fn new() -> Params {
        Params(Vec::new())
    }

    /// Builder: add a parameter.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Params {
        self.set(name, value);
        self
    }

    /// Set (or overwrite) a parameter.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.0.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.0.push((name, value));
        }
    }

    /// Look up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.0.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Look up an integer parameter.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    /// Look up a string parameter.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Look up a boolean parameter.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(Value::as_bool)
    }

    /// Are there no parameters?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterate over (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Merge `other` into `self`; colliding names take `other`'s value.
    pub fn merge(&mut self, other: &Params) {
        for (n, v) in &other.0 {
            self.set(n.clone(), v.clone());
        }
    }

    /// A new params list merging `a` then `b` (b wins collisions).
    pub fn merged(a: &Params, b: &Params) -> Params {
        let mut p = a.clone();
        p.merge(b);
        p
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (n, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        write!(f, ")")
    }
}

/// One occurrence of an event (primitive or composite).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Occurrence {
    /// The event node this occurrence belongs to.
    pub event: EventId,
    /// Occurrence interval in SnoopIB semantics (primitives are instantaneous).
    pub interval: Interval,
    /// Merged parameters.
    pub params: Params,
    /// Primitive events that contributed, in detection order. Lets rule
    /// conditions ask *which* constituent fired (e.g. the TSOD₁ rule's
    /// "if roleDisableNurse == TRUE" branch).
    pub sources: Arc<Vec<EventId>>,
}

impl Occurrence {
    /// A new primitive occurrence at instant `t`.
    pub fn primitive(event: EventId, t: Ts, params: Params) -> Occurrence {
        Occurrence {
            event,
            interval: Interval::at(t),
            params,
            sources: Arc::new(vec![event]),
        }
    }

    /// A composite occurrence combining constituents (in order).
    pub fn composite(event: EventId, interval: Interval, parts: &[&Occurrence]) -> Occurrence {
        let mut params = Params::new();
        let mut sources = Vec::new();
        for p in parts {
            params.merge(&p.params);
            sources.extend_from_slice(&p.sources);
        }
        Occurrence {
            event,
            interval,
            params,
            sources: Arc::new(sources),
        }
    }

    /// Did primitive event `id` contribute to this occurrence?
    pub fn has_source(&self, id: EventId) -> bool {
        self.sources.contains(&id)
    }
}

impl fmt::Display for Occurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}{}", self.event, self.interval, self.params)
    }
}

/// A detected occurrence of a *watched* event, as returned by the detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The occurrence that was detected.
    pub occurrence: Occurrence,
}

impl Detection {
    /// The detected event.
    /// The detected event.
    pub fn event(&self) -> EventId {
        self.occurrence.event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_set_get_overwrite() {
        let mut p = Params::new().with("user", "bob").with("n", 5i64);
        assert_eq!(p.get_str("user"), Some("bob"));
        assert_eq!(p.get_int("n"), Some(5));
        assert_eq!(p.get("missing"), None);
        p.set("n", 7i64);
        assert_eq!(p.get_int("n"), Some(7));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn params_merge_later_wins() {
        let a = Params::new().with("x", 1i64).with("y", 2i64);
        let b = Params::new().with("y", 9i64).with("z", 3i64);
        let m = Params::merged(&a, &b);
        assert_eq!(m.get_int("x"), Some(1));
        assert_eq!(m.get_int("y"), Some(9));
        assert_eq!(m.get_int("z"), Some(3));
    }

    #[test]
    fn composite_merges_sources_and_params() {
        let e1 = EventId(1);
        let e2 = EventId(2);
        let o1 = Occurrence::primitive(e1, Ts::from_secs(1), Params::new().with("a", 1i64));
        let o2 = Occurrence::primitive(e2, Ts::from_secs(3), Params::new().with("b", 2i64));
        let c = Occurrence::composite(EventId(9), o1.interval.hull(&o2.interval), &[&o1, &o2]);
        assert!(c.has_source(e1));
        assert!(c.has_source(e2));
        assert!(!c.has_source(EventId(5)));
        assert_eq!(c.params.get_int("a"), Some(1));
        assert_eq!(c.params.get_int("b"), Some(2));
        assert_eq!(
            c.interval,
            Interval::new(Ts::from_secs(1), Ts::from_secs(3))
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::from(4i64).as_int(), Some(4));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(
            Value::from(Ts::from_secs(1)).as_time(),
            Some(Ts::from_secs(1))
        );
        assert_eq!(Value::from("hi").as_int(), None);
    }

    #[test]
    fn occurrence_display() {
        let o = Occurrence::primitive(EventId(3), Ts::from_secs(2), Params::new().with("u", "jo"));
        assert_eq!(o.to_string(), "E3@[2s, 2s](u=\"jo\")");
    }
}
