//! The event detector: owns the event graph, the virtual clock and the timer
//! queue, and propagates occurrences bottom-up.
//!
//! This plays the role of Sentinel's *event detector* ("responsible for
//! processing all the notifications from different objects and eventually
//! signaling to the rules that some event has occurred"). Rules are outside
//! this crate: callers mark the events they care about with [`Detector::watch`]
//! and receive [`Detection`]s back from [`Detector::raise`] / [`Detector::advance_to`].

use crate::builder::EventExpr;
use crate::calendar::CalendarExpr;
use crate::context::Context;
use crate::event::{Detection, EventId, Occurrence, Params};
use crate::node::{BinState, NodeOutput, NodeState, Slot, TimerReq, WindowedState};
use crate::time::{Dur, Ts};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

/// Errors from detector operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorError {
    /// Raising or referencing an event name that was never defined.
    UnknownEvent(String),
    /// Raising a non-primitive event directly.
    NotPrimitive(EventId),
    /// Attempted to move the clock backwards.
    ClockRegression {
        /// The clock's current position.
        now: Ts,
        /// The earlier time requested.
        requested: Ts,
    },
    /// A name was defined twice with different meanings.
    DuplicateName(String),
    /// An operation that only applies to composite events was attempted
    /// on a primitive (e.g. [`Detector::retire`]).
    NotComposite(EventId),
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorError::UnknownEvent(n) => write!(f, "unknown event {n:?}"),
            DetectorError::NotPrimitive(id) => {
                write!(f, "event {id} is composite and cannot be raised directly")
            }
            DetectorError::ClockRegression { now, requested } => {
                write!(f, "clock regression: now={now}, requested={requested}")
            }
            DetectorError::DuplicateName(n) => write!(f, "event name {n:?} already defined"),
            DetectorError::NotComposite(id) => {
                write!(f, "event {id} is primitive and cannot be retired")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

#[derive(Clone, Serialize, Deserialize)]
struct Node {
    state: NodeState,
    context: Context,
    /// Parent nodes subscribed to this node's occurrences, with the slot
    /// each subscription feeds.
    parents: Vec<(EventId, Slot)>,
    /// Deliver detections of this node to the caller.
    watched: bool,
    /// Human-readable label (primitive name or operator description).
    label: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Timer {
    node: EventId,
    req: TimerReq,
}

/// One generation-tagged slot in the timer slab.
///
/// Heap entries carry `(generation, index)` packed into a `u64`; freeing a
/// slot (timer fired or cancelled) bumps the generation, so stale heap
/// entries are detected and skipped lazily. Freed slots go on a free list
/// and are reused, keeping slab size bounded by the high-water mark of
/// *concurrent* timers rather than growing with schedule/cancel history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct TimerSlot {
    gen: u32,
    timer: Option<Timer>,
}

fn pack_timer_key(gen: u32, idx: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(idx)
}

fn unpack_timer_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Structural key for hash-consing composite nodes (common subexpression
/// sharing across generated rules — large rule pools share event graphs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum NodeKey {
    And(EventId, EventId, Context),
    Or(EventId, EventId, Context),
    Seq(EventId, EventId, Context),
    Not(EventId, EventId, EventId, Context),
    Aperiodic(EventId, EventId, EventId, Context, bool),
    Periodic(EventId, u64, EventId, Context, bool),
    Plus(EventId, u64, Context),
    Calendar(String),
}

/// The composite event detector.
///
/// Serializable: the durable engine's snapshots persist the full detector
/// state (graph, buffered partial detections, pending timers, clock), so a
/// deserialized detector resumes exactly where the serialized one stopped.
#[derive(Clone, Serialize, Deserialize)]
pub struct Detector {
    nodes: Vec<Node>,
    by_name: HashMap<String, EventId>,
    /// Hash-consing table. Its keys are structural (an enum), which JSON
    /// map keys cannot express, so it is serialized as a pair list.
    #[serde(with = "serde_interned")]
    interned: HashMap<NodeKey, EventId>,
    timers: Vec<TimerSlot>,
    /// Indices of free slab slots, reused before the slab grows.
    free_timers: Vec<u32>,
    /// Timers scheduled and not yet fired or cancelled.
    live_timers: usize,
    /// Serialized as a sorted `Vec<(Ts, u64)>`; rebuilt into a heap on load.
    /// The `u64` packs a slab `(generation, index)` pair.
    #[serde(with = "serde_timer_queue")]
    timer_queue: BinaryHeap<Reverse<(Ts, u64)>>,
    now: Ts,
    /// Per-node occurrence buffer cap.
    buffer_cap: usize,
    /// Counts of raised primitives / detected composites (for stats).
    raised: u64,
    detected: u64,
}

impl Detector {
    /// A detector whose clock starts at `start`.
    pub fn new(start: Ts) -> Detector {
        Detector {
            nodes: Vec::new(),
            by_name: HashMap::new(),
            interned: HashMap::new(),
            timers: Vec::new(),
            free_timers: Vec::new(),
            live_timers: 0,
            timer_queue: BinaryHeap::new(),
            now: start,
            buffer_cap: 4096,
            raised: 0,
            detected: 0,
        }
    }

    /// Change the per-node buffer cap (Unrestricted contexts are unbounded
    /// in theory; the cap keeps memory bounded, evicting oldest).
    pub fn set_buffer_cap(&mut self, cap: usize) {
        self.buffer_cap = cap.max(1);
    }

    /// Current logical time.
    pub fn now(&self) -> Ts {
        self.now
    }

    /// Number of event-graph nodes (primitive + composite).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Primitive occurrences raised so far.
    pub fn raised_count(&self) -> u64 {
        self.raised
    }

    /// Watched detections delivered so far.
    pub fn detected_count(&self) -> u64 {
        self.detected
    }

    /// Define (or look up) a named primitive event.
    pub fn primitive(&mut self, name: &str) -> EventId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.push(Node {
            state: NodeState::Primitive {
                name: name.to_string(),
            },
            context: Context::Recent,
            parents: Vec::new(),
            watched: false,
            label: name.to_string(),
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an event by name.
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.by_name.get(name).copied()
    }

    /// The label of an event (primitive name or operator sketch).
    pub fn label(&self, id: EventId) -> &str {
        &self.nodes[id.0 as usize].label
    }

    /// The registered name of an event, if it has one (primitives always
    /// do; composites only when [`Detector::name`]d). Unlike labels, names
    /// are stable across detectors built from the same policy, so they make
    /// good fingerprints.
    pub fn name_of(&self, id: EventId) -> Option<&str> {
        if let NodeState::Primitive { name } = &self.nodes.get(id.0 as usize)?.state {
            return Some(name);
        }
        self.by_name
            .iter()
            .find(|(_, &v)| v == id)
            .map(|(k, _)| k.as_str())
    }

    /// Give a composite event a name (so rules can refer to it).
    pub fn name(&mut self, id: EventId, name: &str) -> Result<(), DetectorError> {
        match self.by_name.get(name) {
            Some(&existing) if existing != id => {
                Err(DetectorError::DuplicateName(name.to_string()))
            }
            _ => {
                self.by_name.insert(name.to_string(), id);
                Ok(())
            }
        }
    }

    /// Remove a composite event's name binding, returning the id it was
    /// bound to. Primitive names are identity and cannot be removed.
    ///
    /// Policy regeneration uses this to retarget a deterministic name
    /// (e.g. `delta_<role>`) to a replacement node when the underlying
    /// expression changed.
    pub fn unname(&mut self, name: &str) -> Option<EventId> {
        let &id = self.by_name.get(name)?;
        if matches!(self.nodes[id.0 as usize].state, NodeState::Primitive { .. }) {
            return None;
        }
        self.by_name.remove(name)
    }

    /// Permanently detach a composite node from the event graph: its
    /// pending timers are cancelled, no child occurrence will feed it
    /// again, its name bindings are removed, and it leaves the
    /// hash-consing table so an identical later [`Detector::define`]
    /// builds a fresh live node. The node's slot remains (event ids are
    /// stable for the audit log) but it can never fire again.
    ///
    /// Returns the number of timers cancelled. Retiring a primitive is
    /// refused ([`DetectorError::NotComposite`]): rules raise primitives
    /// by name, so their bindings must stay.
    pub fn retire(&mut self, id: EventId) -> Result<usize, DetectorError> {
        let node = self
            .nodes
            .get(id.0 as usize)
            .ok_or_else(|| DetectorError::UnknownEvent(id.to_string()))?;
        if matches!(node.state, NodeState::Primitive { .. }) {
            return Err(DetectorError::NotComposite(id));
        }
        let cancelled = self.cancel_timers(id);
        for n in &mut self.nodes {
            n.parents.retain(|&(p, _)| p != id);
        }
        self.interned.retain(|_, v| *v != id);
        self.by_name.retain(|_, v| *v != id);
        self.nodes[id.0 as usize].watched = false;
        Ok(cancelled)
    }

    /// Build the node graph for `expr`, sharing structurally identical
    /// subgraphs, and return the root id.
    pub fn define(&mut self, expr: &EventExpr) -> Result<EventId, DetectorError> {
        let ctx = Context::default();
        self.define_in(expr, ctx)
    }

    fn define_in(&mut self, expr: &EventExpr, ctx: Context) -> Result<EventId, DetectorError> {
        match expr {
            EventExpr::Named(name) => self
                .by_name
                .get(name.as_str())
                .copied()
                .ok_or_else(|| DetectorError::UnknownEvent(name.clone())),
            EventExpr::Primitive(name) => Ok(self.primitive(name)),
            EventExpr::WithContext(inner, c) => self.define_in(inner, *c),
            EventExpr::And(a, b) => {
                let (a, b) = (self.define_in(a, ctx)?, self.define_in(b, ctx)?);
                Ok(self.intern(
                    NodeKey::And(a, b, ctx),
                    ctx,
                    format!("AND({a}, {b})"),
                    NodeState::And(BinState::default()),
                    &[(a, Slot::Left), (b, Slot::Right)],
                ))
            }
            EventExpr::Or(a, b) => {
                let (a, b) = (self.define_in(a, ctx)?, self.define_in(b, ctx)?);
                Ok(self.intern(
                    NodeKey::Or(a, b, ctx),
                    ctx,
                    format!("OR({a}, {b})"),
                    NodeState::Or,
                    &[(a, Slot::Left), (b, Slot::Right)],
                ))
            }
            EventExpr::Seq(a, b) => {
                let (a, b) = (self.define_in(a, ctx)?, self.define_in(b, ctx)?);
                Ok(self.intern(
                    NodeKey::Seq(a, b, ctx),
                    ctx,
                    format!("SEQ({a}, {b})"),
                    NodeState::Seq(BinState::default()),
                    &[(a, Slot::Left), (b, Slot::Right)],
                ))
            }
            EventExpr::Not { start, middle, end } => {
                let s = self.define_in(start, ctx)?;
                let m = self.define_in(middle, ctx)?;
                let e = self.define_in(end, ctx)?;
                Ok(self.intern(
                    NodeKey::Not(s, m, e, ctx),
                    ctx,
                    format!("NOT({m})[{s}, {e}]"),
                    NodeState::Not(WindowedState::default()),
                    &[(s, Slot::Left), (m, Slot::Middle), (e, Slot::End)],
                ))
            }
            EventExpr::Aperiodic {
                start,
                middle,
                end,
                cumulative,
            } => {
                let s = self.define_in(start, ctx)?;
                let m = self.define_in(middle, ctx)?;
                let e = self.define_in(end, ctx)?;
                let star = if *cumulative { "*" } else { "" };
                Ok(self.intern(
                    NodeKey::Aperiodic(s, m, e, ctx, *cumulative),
                    ctx,
                    format!("A{star}({s}, {m}, {e})"),
                    NodeState::Aperiodic {
                        st: WindowedState::default(),
                        cumulative: *cumulative,
                    },
                    &[(s, Slot::Left), (m, Slot::Middle), (e, Slot::End)],
                ))
            }
            EventExpr::Periodic {
                start,
                period,
                end,
                cumulative,
            } => {
                let s = self.define_in(start, ctx)?;
                let e = self.define_in(end, ctx)?;
                let star = if *cumulative { "*" } else { "" };
                Ok(self.intern(
                    NodeKey::Periodic(s, period.as_micros(), e, ctx, *cumulative),
                    ctx,
                    format!("P{star}({s}, {period}, {e})"),
                    NodeState::Periodic {
                        st: WindowedState::default(),
                        period: *period,
                        cumulative: *cumulative,
                    },
                    &[(s, Slot::Left), (e, Slot::End)],
                ))
            }
            EventExpr::Plus(base, delta) => {
                let b = self.define_in(base, ctx)?;
                Ok(self.intern(
                    NodeKey::Plus(b, delta.as_micros(), ctx),
                    ctx,
                    format!("PLUS({b}, {delta})"),
                    NodeState::Plus { delta: *delta },
                    &[(b, Slot::Left)],
                ))
            }
            EventExpr::Calendar(expr) => Ok(self.calendar(*expr)),
        }
    }

    /// Define a recurring calendar (temporal) event; its first firing is
    /// scheduled immediately.
    pub fn calendar(&mut self, expr: CalendarExpr) -> EventId {
        let key = NodeKey::Calendar(expr.to_string());
        if let Some(&id) = self.interned.get(&key) {
            return id;
        }
        let id = self.push(Node {
            state: NodeState::Calendar {
                expr,
                scheduled: false,
            },
            context: Context::Recent,
            parents: Vec::new(),
            watched: false,
            label: format!("[{}]", key_label(&key)),
        });
        self.interned.insert(key, id);
        self.schedule_calendar(id);
        id
    }

    fn schedule_calendar(&mut self, id: EventId) {
        let NodeState::Calendar { expr, scheduled } = &mut self.nodes[id.0 as usize].state else {
            return;
        };
        if *scheduled {
            return;
        }
        if let Some(at) = expr.next_after(self.now) {
            *scheduled = true;
            self.push_timer(id, TimerReq::Calendar { at });
        }
    }

    fn intern(
        &mut self,
        key: NodeKey,
        ctx: Context,
        label: String,
        state: NodeState,
        children: &[(EventId, Slot)],
    ) -> EventId {
        if let Some(&id) = self.interned.get(&key) {
            return id;
        }
        let id = self.push(Node {
            state,
            context: ctx,
            parents: Vec::new(),
            watched: false,
            label,
        });
        for &(child, slot) in children {
            self.nodes[child.0 as usize].parents.push((id, slot));
        }
        self.interned.insert(key, id);
        id
    }

    fn push(&mut self, node: Node) -> EventId {
        let id = EventId(u32::try_from(self.nodes.len()).expect("node count fits u32"));
        self.nodes.push(node);
        id
    }

    /// Deliver this node's occurrences to the caller as [`Detection`]s.
    pub fn watch(&mut self, id: EventId) {
        self.nodes[id.0 as usize].watched = true;
    }

    /// Stop delivering this node's occurrences.
    pub fn unwatch(&mut self, id: EventId) {
        self.nodes[id.0 as usize].watched = false;
    }

    /// Raise a primitive event at the current time.
    pub fn raise(&mut self, id: EventId, params: Params) -> Result<Vec<Detection>, DetectorError> {
        let node = self
            .nodes
            .get(id.0 as usize)
            .ok_or(DetectorError::UnknownEvent(id.to_string()))?;
        if !matches!(node.state, NodeState::Primitive { .. }) {
            return Err(DetectorError::NotPrimitive(id));
        }
        self.raised += 1;
        let occ = Occurrence::primitive(id, self.now, params);
        Ok(self.propagate(occ))
    }

    /// Raise a primitive event by name.
    pub fn raise_named(
        &mut self,
        name: &str,
        params: Params,
    ) -> Result<Vec<Detection>, DetectorError> {
        let id = self
            .lookup(name)
            .ok_or_else(|| DetectorError::UnknownEvent(name.to_string()))?;
        self.raise(id, params)
    }

    /// Advance the clock to `ts`, firing all timers due on the way (in
    /// timestamp order). Returns the detections those firings produced.
    pub fn advance_to(&mut self, ts: Ts) -> Result<Vec<Detection>, DetectorError> {
        if ts < self.now {
            return Err(DetectorError::ClockRegression {
                now: self.now,
                requested: ts,
            });
        }
        let mut detections = Vec::new();
        while let Some(&Reverse((at, key))) = self.timer_queue.peek() {
            if at > ts {
                break;
            }
            self.timer_queue.pop();
            let (gen, idx) = unpack_timer_key(key);
            let live = self
                .timers
                .get(idx as usize)
                .is_some_and(|s| s.gen == gen && s.timer.is_some());
            if !live {
                continue; // stale entry: the timer was cancelled
            }
            let Timer { node: node_id, req } = self.free_timer_slot(idx);
            self.now = at;
            // Calendar nodes may reschedule; clear their flag first.
            if let NodeState::Calendar { scheduled, .. } = &mut self.nodes[node_id.0 as usize].state
            {
                *scheduled = false;
            }
            let mut out = NodeOutput::default();
            self.nodes[node_id.0 as usize]
                .state
                .on_timer(node_id, at, &req, &mut out);
            if let NodeState::Calendar { scheduled, .. } = &mut self.nodes[node_id.0 as usize].state
            {
                if out
                    .timers
                    .iter()
                    .any(|t| matches!(t, TimerReq::Calendar { .. }))
                {
                    *scheduled = true;
                }
            }
            for t in out.timers.drain(..) {
                self.push_timer(node_id, t);
            }
            for occ in out.occurrences.drain(..) {
                detections.extend(self.propagate(occ));
            }
        }
        self.now = ts;
        Ok(detections)
    }

    /// Advance the clock by `d`.
    pub fn advance(&mut self, d: Dur) -> Result<Vec<Detection>, DetectorError> {
        self.advance_to(self.now + d)
    }

    /// When the earliest pending timer fires, if any. Lets callers advance
    /// in steps and run rules *at* each firing instant rather than after a
    /// long advance.
    pub fn next_timer_at(&self) -> Option<Ts> {
        self.timer_queue
            .iter()
            .filter(|Reverse((_, key))| self.timer_key_live(*key))
            .map(|Reverse((at, _))| *at)
            .min()
    }

    /// Does `key` still refer to a live (scheduled, uncancelled) timer?
    fn timer_key_live(&self, key: u64) -> bool {
        let (gen, idx) = unpack_timer_key(key);
        self.timers
            .get(idx as usize)
            .is_some_and(|s| s.gen == gen && s.timer.is_some())
    }

    /// Free a slab slot holding a live timer: take the timer out, bump the
    /// slot's generation (invalidating any heap entry still pointing at
    /// it), and put the slot on the free list.
    fn free_timer_slot(&mut self, idx: u32) -> Timer {
        let slot = &mut self.timers[idx as usize];
        let timer = slot.timer.take().expect("freeing a live timer slot");
        slot.gen = slot.gen.wrapping_add(1);
        self.free_timers.push(idx);
        self.live_timers -= 1;
        timer
    }

    /// Drop stale heap entries once they outnumber live ones: cancellation
    /// is O(1) per timer (generation bump), and this amortized sweep keeps
    /// the heap itself bounded by the live count, not by history.
    fn maybe_compact_queue(&mut self) {
        if self.timer_queue.len() <= 2 * self.live_timers + 64 {
            return;
        }
        let queue = std::mem::take(&mut self.timer_queue);
        self.timer_queue = queue
            .into_iter()
            .filter(|Reverse((_, key))| self.timer_key_live(*key))
            .collect();
    }

    /// Cancel every pending timer belonging to `node` for which `pred`
    /// returns true on the timer's stored base occurrence (PLUS timers carry
    /// their base; other timer kinds match on `None`).
    ///
    /// Used to retract scheduled relative-temporal events, e.g. cancelling a
    /// Δ-deactivation when the role was already dropped.
    pub fn cancel_timers_where(
        &mut self,
        node: EventId,
        mut pred: impl FnMut(Option<&Occurrence>) -> bool,
    ) -> usize {
        let mut n = 0;
        for idx in 0..self.timers.len() {
            let hit = {
                let Some(t) = &self.timers[idx].timer else {
                    continue;
                };
                t.node == node
                    && pred(match &t.req {
                        TimerReq::Plus { base, .. } => Some(base),
                        _ => None,
                    })
            };
            if hit {
                self.free_timer_slot(idx as u32);
                n += 1;
            }
        }
        if n > 0 {
            self.maybe_compact_queue();
        }
        n
    }

    /// Cancel all pending timers of `node`.
    pub fn cancel_timers(&mut self, node: EventId) -> usize {
        self.cancel_timers_where(node, |_| true)
    }

    /// Number of timers scheduled and not yet fired or cancelled (the live
    /// count; O(1)).
    pub fn pending_timers(&self) -> usize {
        self.live_timers
    }

    /// Deadlines of every live timer, sorted and deduplicated. A virtual-
    /// time scheduler uses this to enumerate the distinct instants at
    /// which "fire the next timer batch" is a schedulable choice.
    pub fn pending_timer_deadlines(&self) -> Vec<Ts> {
        let mut out: Vec<Ts> = self
            .timer_queue
            .iter()
            .filter(|Reverse((_, key))| self.timer_key_live(*key))
            .map(|Reverse((at, _))| *at)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Current capacity of the timer slab (live + reusable free slots).
    ///
    /// Bounded by the high-water mark of *concurrent* timers — not by how
    /// many timers were ever scheduled — so long-running detectors with
    /// periodic or Δ events stay in bounded memory.
    pub fn timer_slab_len(&self) -> usize {
        self.timers.len()
    }

    fn push_timer(&mut self, node: EventId, req: TimerReq) {
        let at = match &req {
            TimerReq::Plus { at, .. } => *at,
            TimerReq::PeriodicTick { at, .. } => *at,
            TimerReq::Calendar { at } => *at,
        };
        let idx = match self.free_timers.pop() {
            Some(i) => i,
            None => {
                let i = u32::try_from(self.timers.len()).expect("timer slab fits u32");
                self.timers.push(TimerSlot::default());
                i
            }
        };
        let slot = &mut self.timers[idx as usize];
        debug_assert!(slot.timer.is_none(), "free-list slot must be empty");
        slot.timer = Some(Timer { node, req });
        self.live_timers += 1;
        self.timer_queue
            .push(Reverse((at, pack_timer_key(slot.gen, idx))));
    }

    /// Breadth-first propagation of an occurrence up the event graph.
    fn propagate(&mut self, root: Occurrence) -> Vec<Detection> {
        let mut detections = Vec::new();
        let mut queue: VecDeque<Occurrence> = VecDeque::new();
        queue.push_back(root);
        while let Some(occ) = queue.pop_front() {
            let node = &self.nodes[occ.event.0 as usize];
            if node.watched {
                self.detected += 1;
                detections.push(Detection {
                    occurrence: occ.clone(),
                });
            }
            let parents = node.parents.clone();
            for (parent, slot) in parents {
                let mut out = NodeOutput::default();
                let pnode = &mut self.nodes[parent.0 as usize];
                let ctx = pnode.context;
                let is_periodic_end =
                    matches!(pnode.state, NodeState::Periodic { .. }) && slot == Slot::End;
                if is_periodic_end {
                    pnode.state.on_periodic_end(parent, &occ, &mut out);
                } else {
                    pnode
                        .state
                        .on_child(parent, ctx, self.buffer_cap, slot, &occ, &mut out);
                }
                for t in out.timers.drain(..) {
                    self.push_timer(parent, t);
                }
                for o in out.occurrences.drain(..) {
                    queue.push_back(o);
                }
            }
        }
        detections
    }
}

impl Detector {
    /// All event ids in the graph, in definition order.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.nodes.len()).map(|i| EventId(i as u32))
    }

    /// Whether `id` is a primitive (externally raisable) event.
    pub fn is_primitive(&self, id: EventId) -> bool {
        self.nodes
            .get(id.0 as usize)
            .is_some_and(|n| matches!(n.state, NodeState::Primitive { .. }))
    }

    /// Parent operator edges of `id`: each `(parent, delayed)` pair is an
    /// operator node subscribed to `id`'s occurrences. `delayed` is true
    /// when the parent can only emit through a **timer** in response to
    /// this input (PLUS; PERIODIC window opens), so the composite never
    /// fires within the same propagation pass as the child. Edges into
    /// AND / OR / SEQ / NOT / APERIODIC — and a PERIODIC terminator, which
    /// flushes P* synchronously — are classified synchronous. The
    /// classification over-approximates: a "synchronous" edge may still
    /// need more constituents before the parent actually emits.
    pub fn parent_edges(&self, id: EventId) -> Vec<(EventId, bool)> {
        let Some(node) = self.nodes.get(id.0 as usize) else {
            return Vec::new();
        };
        node.parents
            .iter()
            .map(|&(parent, slot)| {
                let delayed = match self.nodes[parent.0 as usize].state {
                    NodeState::Plus { .. } => true,
                    NodeState::Periodic { .. } => slot != Slot::End,
                    _ => false,
                };
                (parent, delayed)
            })
            .collect()
    }

    /// Transitive closure of parent edges from `id`, **including `id`
    /// itself**: every event whose detection can be caused by an
    /// occurrence of `id`. With `sync_only`, delayed edges (see
    /// [`Detector::parent_edges`]) are not followed, restricting the
    /// closure to events that can fire within the same propagation pass.
    pub fn ancestor_closure(&self, id: EventId, sync_only: bool) -> Vec<EventId> {
        if self.nodes.get(id.0 as usize).is_none() {
            return Vec::new();
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        let mut out = Vec::new();
        while let Some(cur) = stack.pop() {
            if std::mem::replace(&mut seen[cur.0 as usize], true) {
                continue;
            }
            out.push(cur);
            for (parent, delayed) in self.parent_edges(cur) {
                if !(sync_only && delayed) {
                    stack.push(parent);
                }
            }
        }
        out
    }

    /// The primitive events underneath `id` — the possible `sources` of an
    /// occurrence of `id` ([`crate::Occurrence::has_source`] can only hold
    /// for these). A primitive is its own sole constituent; calendar
    /// events have none.
    pub fn constituent_primitives(&self, id: EventId) -> Vec<EventId> {
        if self.nodes.get(id.0 as usize).is_none() {
            return Vec::new();
        }
        // Children are not stored on nodes; invert the parent adjacency.
        let mut children: Vec<Vec<EventId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &(parent, _) in &node.parents {
                children[parent.0 as usize].push(EventId(i as u32));
            }
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        let mut out = Vec::new();
        while let Some(cur) = stack.pop() {
            if std::mem::replace(&mut seen[cur.0 as usize], true) {
                continue;
            }
            if matches!(
                self.nodes[cur.0 as usize].state,
                NodeState::Primitive { .. }
            ) {
                out.push(cur);
            }
            stack.extend(children[cur.0 as usize].iter().copied());
        }
        out.sort();
        out
    }
}

impl Detector {
    /// Render the event graph in Graphviz DOT form: one box per node
    /// (primitives as ellipses, composites as boxes, watched nodes bold),
    /// edges from constituents to the operators they feed, labelled with
    /// the input slot.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph events {\n  rankdir=BT;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = if matches!(node.state, NodeState::Primitive { .. }) {
                "ellipse"
            } else {
                "box"
            };
            let style = if node.watched { ",penwidth=2" } else { "" };
            writeln!(
                out,
                "  n{i} [label=\"{}\",shape={shape}{style}];",
                node.label.replace('\"', "'")
            )
            .expect("string write");
            for (parent, slot) in &node.parents {
                writeln!(out, "  n{i} -> n{} [label=\"{slot:?}\"];", parent.0)
                    .expect("string write");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// `interned` has structural (enum) keys, which JSON cannot use as map
/// keys; persist it as a list of pairs, sorted by node id so serialized
/// detectors are byte-deterministic.
mod serde_interned {
    use super::{EventId, NodeKey};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    pub fn serialize<S: Serializer>(
        map: &HashMap<NodeKey, EventId>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        let mut pairs: Vec<(&NodeKey, &EventId)> = map.iter().collect();
        pairs.sort_by_key(|(_, id)| **id);
        pairs.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<HashMap<NodeKey, EventId>, D::Error> {
        Ok(Vec::<(NodeKey, EventId)>::deserialize(d)?
            .into_iter()
            .collect())
    }
}

/// The timer queue is persisted as a sorted `Vec<(Ts, u64)>` and rebuilt
/// into a heap on load (heaps have no canonical serialized form).
mod serde_timer_queue {
    use super::{Reverse, Ts};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BinaryHeap;

    pub fn serialize<S: Serializer>(
        q: &BinaryHeap<Reverse<(Ts, u64)>>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        let mut v: Vec<(Ts, u64)> = q.iter().map(|Reverse(x)| *x).collect();
        v.sort_unstable();
        v.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<BinaryHeap<Reverse<(Ts, u64)>>, D::Error> {
        Ok(Vec::<(Ts, u64)>::deserialize(d)?
            .into_iter()
            .map(Reverse)
            .collect())
    }
}

fn key_label(key: &NodeKey) -> String {
    match key {
        NodeKey::Calendar(s) => s.clone(),
        _ => String::new(),
    }
}

impl fmt::Debug for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Detector")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("pending_timers", &self.pending_timers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EventExpr as E;
    use crate::calendar::Civil;

    fn det() -> Detector {
        Detector::new(Ts::ZERO)
    }

    #[test]
    fn primitive_raise_and_watch() {
        let mut d = det();
        let e = d.primitive("open_file");
        // Unwatched: no detections returned.
        assert!(d.raise(e, Params::new()).unwrap().is_empty());
        d.watch(e);
        let dets = d.raise(e, Params::new().with("user", "bob")).unwrap();
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].occurrence.params.get_str("user"), Some("bob"));
    }

    #[test]
    fn raise_composite_rejected() {
        let mut d = det();
        let a = E::prim("a");
        let b = E::prim("b");
        let seq = d.define(&E::seq(a, b)).unwrap();
        assert!(matches!(
            d.raise(seq, Params::new()),
            Err(DetectorError::NotPrimitive(_))
        ));
    }

    #[test]
    fn timer_slab_stays_bounded_over_many_cycles() {
        // Regression: the slab used to grow by one slot per scheduled timer
        // and never reclaim cancelled entries. 100k schedule/cancel cycles
        // must reuse a handful of slots and keep the heap compacted.
        let mut d = det();
        let root = d
            .define(&E::plus(E::prim("open"), Dur::from_secs(100)))
            .unwrap();
        d.watch(root);
        let open = d.lookup("open").unwrap();
        for i in 0..100_000i64 {
            d.raise(open, Params::new().with("n", i)).unwrap();
            assert_eq!(d.pending_timers(), 1);
            assert_eq!(d.cancel_timers(root), 1);
            assert_eq!(d.pending_timers(), 0);
        }
        assert!(
            d.timer_slab_len() <= 8,
            "slab grew to {} slots over 100k cycles",
            d.timer_slab_len()
        );
        // The lazy heap must have been compacted along the way, not kept
        // one stale entry per cycle.
        assert!(d.timer_queue.len() <= 2 * d.live_timers + 64);
        // Slots are safely reusable: a fresh timer still fires.
        d.raise(open, Params::new().with("n", -1i64)).unwrap();
        let dets = d.advance(Dur::from_secs(100)).unwrap();
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].occurrence.params.get_int("n"), Some(-1));
    }

    #[test]
    fn stale_generation_never_fires_recycled_slot() {
        // Cancel a timer, reuse its slot for a later deadline, then advance
        // past the *original* deadline: the stale heap entry must be skipped.
        let mut d = det();
        let short = d
            .define(&E::plus(E::prim("a"), Dur::from_secs(10)))
            .unwrap();
        let long = d
            .define(&E::plus(E::prim("b"), Dur::from_secs(50)))
            .unwrap();
        d.watch(short);
        d.watch(long);
        d.raise_named("a", Params::new()).unwrap();
        assert_eq!(d.cancel_timers(short), 1);
        // Reuses the freed slot with a bumped generation.
        d.raise_named("b", Params::new()).unwrap();
        assert!(d.advance(Dur::from_secs(20)).unwrap().is_empty());
        let dets = d.advance(Dur::from_secs(40)).unwrap();
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].event(), long);
    }

    #[test]
    fn retire_unbinds_name_and_cancels_timers() {
        let mut d = det();
        let plus = d
            .define(&E::plus(E::prim("open"), Dur::from_secs(5)))
            .unwrap();
        d.name(plus, "deadline").unwrap();
        d.watch(plus);
        d.raise_named("open", Params::new()).unwrap();
        assert_eq!(d.pending_timers(), 1);

        let cancelled = d.retire(plus).unwrap();
        assert_eq!(cancelled, 1);
        assert!(d.lookup("deadline").is_none());
        // The retired node no longer observes its base event, and the same
        // structure can be re-defined under a fresh node and renamed.
        assert!(d.advance(Dur::from_secs(10)).unwrap().is_empty());
        let plus2 = d
            .define(&E::plus(E::named("open"), Dur::from_secs(5)))
            .unwrap();
        assert_ne!(plus, plus2, "retired node must not be re-interned");
        d.name(plus2, "deadline").unwrap();
        d.watch(plus2);
        d.raise_named("open", Params::new()).unwrap();
        let dets = d.advance(Dur::from_secs(5)).unwrap();
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].event(), plus2);
    }

    #[test]
    fn retire_rejects_primitives() {
        let mut d = det();
        let a = d.primitive("a");
        assert!(matches!(d.retire(a), Err(DetectorError::NotComposite(_))));
        assert_eq!(d.unname("a"), None, "unname refuses primitives");
    }

    #[test]
    fn seq_detection_through_graph() {
        let mut d = det();
        let root = d.define(&E::seq(E::prim("a"), E::prim("b"))).unwrap();
        d.watch(root);
        let a = d.lookup("a").unwrap();
        let b = d.lookup("b").unwrap();
        d.raise(a, Params::new()).unwrap();
        d.advance(Dur::from_secs(1)).unwrap();
        let dets = d.raise(b, Params::new()).unwrap();
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].event(), root);
    }

    #[test]
    fn sharing_identical_subexpressions() {
        let mut d = det();
        let r1 = d.define(&E::seq(E::prim("a"), E::prim("b"))).unwrap();
        let r2 = d.define(&E::seq(E::prim("a"), E::prim("b"))).unwrap();
        assert_eq!(r1, r2, "structurally identical events share a node");
        let r3 = d
            .define(&E::seq(E::prim("a"), E::prim("b")).context(Context::Chronicle))
            .unwrap();
        assert_ne!(r1, r3, "different context, different node");
    }

    #[test]
    fn topology_edges_closures_and_constituents() {
        let mut d = det();
        let seq = d.define(&E::seq(E::prim("a"), E::prim("b"))).unwrap();
        let plus = d
            .define(&E::plus(E::named("a"), Dur::from_secs(5)))
            .unwrap();
        let a = d.lookup("a").unwrap();
        let b = d.lookup("b").unwrap();

        assert!(d.is_primitive(a));
        assert!(!d.is_primitive(seq));
        assert_eq!(d.event_ids().count(), d.node_count());

        // `a` feeds SEQ synchronously and PLUS through a timer.
        let edges = d.parent_edges(a);
        assert!(edges.contains(&(seq, false)));
        assert!(edges.contains(&(plus, true)));

        let full = d.ancestor_closure(a, false);
        assert!(full.contains(&a) && full.contains(&seq) && full.contains(&plus));
        let sync = d.ancestor_closure(a, true);
        assert!(sync.contains(&seq) && !sync.contains(&plus));

        assert_eq!(d.constituent_primitives(seq), vec![a, b]);
        assert_eq!(d.constituent_primitives(a), vec![a]);
    }

    #[test]
    fn plus_fires_via_clock() {
        let mut d = det();
        let root = d
            .define(&E::plus(E::prim("open"), Dur::from_hours(2)))
            .unwrap();
        d.watch(root);
        let open = d.lookup("open").unwrap();
        d.raise(open, Params::new().with("file", "patient.dat"))
            .unwrap();
        // Nothing before the deadline.
        assert!(d.advance(Dur::from_hours(1)).unwrap().is_empty());
        let dets = d.advance(Dur::from_hours(1)).unwrap();
        assert_eq!(dets.len(), 1);
        assert_eq!(
            dets[0].occurrence.params.get_str("file"),
            Some("patient.dat")
        );
        assert_eq!(dets[0].occurrence.interval.end, Ts::from_secs(2 * 3600));
    }

    #[test]
    fn plus_cancellation() {
        let mut d = det();
        let root = d
            .define(&E::plus(E::prim("open"), Dur::from_secs(100)))
            .unwrap();
        d.watch(root);
        let open = d.lookup("open").unwrap();
        d.raise(open, Params::new().with("session", 1i64)).unwrap();
        d.raise(open, Params::new().with("session", 2i64)).unwrap();
        let n = d.cancel_timers_where(root, |base| {
            base.is_some_and(|b| b.params.get_int("session") == Some(1))
        });
        assert_eq!(n, 1);
        let dets = d.advance(Dur::from_secs(200)).unwrap();
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].occurrence.params.get_int("session"), Some(2));
    }

    #[test]
    fn periodic_between_events() {
        let mut d = det();
        let root = d
            .define(&E::periodic(
                E::prim("start"),
                Dur::from_secs(10),
                E::prim("stop"),
            ))
            .unwrap();
        d.watch(root);
        d.raise_named("start", Params::new()).unwrap();
        let dets = d.advance(Dur::from_secs(35)).unwrap();
        assert_eq!(dets.len(), 3, "ticks at 10, 20, 30");
        d.raise_named("stop", Params::new()).unwrap();
        let dets = d.advance(Dur::from_secs(100)).unwrap();
        assert!(dets.is_empty(), "terminated by stop");
    }

    #[test]
    fn aperiodic_between_events() {
        let mut d = det();
        let root = d
            .define(&E::aperiodic(
                E::prim("txn_begin"),
                E::prim("enable_role"),
                E::prim("txn_end"),
            ))
            .unwrap();
        d.watch(root);
        // Before the window: no detection.
        d.raise_named("enable_role", Params::new()).unwrap();
        d.advance(Dur::from_secs(1)).unwrap();
        d.raise_named("txn_begin", Params::new()).unwrap();
        d.advance(Dur::from_secs(1)).unwrap();
        let dets = d.raise_named("enable_role", Params::new()).unwrap();
        assert_eq!(dets.len(), 1);
        d.advance(Dur::from_secs(1)).unwrap();
        d.raise_named("txn_end", Params::new()).unwrap();
        d.advance(Dur::from_secs(1)).unwrap();
        let dets = d.raise_named("enable_role", Params::new()).unwrap();
        assert!(dets.is_empty());
    }

    #[test]
    fn calendar_event_fires_daily() {
        let mut d = det();
        let id = d.calendar(CalendarExpr::daily(10, 0, 0));
        d.watch(id);
        let two_days = Civil::new(2000, 1, 3, 0, 0, 0).to_ts();
        let dets = d.advance_to(two_days).unwrap();
        assert_eq!(dets.len(), 2, "Jan 1 10:00 and Jan 2 10:00");
        assert_eq!(
            Civil::from_ts(dets[0].occurrence.interval.start),
            Civil::new(2000, 1, 1, 10, 0, 0)
        );
    }

    #[test]
    fn clock_regression_rejected() {
        let mut d = det();
        d.advance(Dur::from_secs(10)).unwrap();
        assert!(matches!(
            d.advance_to(Ts::from_secs(5)),
            Err(DetectorError::ClockRegression { .. })
        ));
    }

    #[test]
    fn or_propagates_sources() {
        let mut d = det();
        let root = d
            .define(&E::or(E::prim("nurse_off"), E::prim("doctor_off")))
            .unwrap();
        d.watch(root);
        let nurse = d.lookup("nurse_off").unwrap();
        let dets = d.raise(nurse, Params::new()).unwrap();
        assert_eq!(dets.len(), 1);
        assert!(dets[0].occurrence.has_source(nurse));
        assert!(!dets[0]
            .occurrence
            .has_source(d.lookup("doctor_off").unwrap()));
    }

    #[test]
    fn named_composite() {
        let mut d = det();
        let root = d.define(&E::seq(E::prim("a"), E::prim("b"))).unwrap();
        d.name(root, "ab").unwrap();
        assert_eq!(d.lookup("ab"), Some(root));
        // Redefining the same name for the same node is fine.
        d.name(root, "ab").unwrap();
        // A different node may not steal the name.
        let other = d.define(&E::or(E::prim("a"), E::prim("b"))).unwrap();
        assert!(d.name(other, "ab").is_err());
    }

    #[test]
    fn nested_composition_rule6_shape() {
        // The TSOD₁ event tree from the paper:
        //   ET3 = OR(nurse_disable, doctor_disable)
        //   ET5 = A([10:00 daily], ET3, [17:00 daily])
        let mut d = det();
        let expr = E::aperiodic(
            E::calendar(CalendarExpr::daily(10, 0, 0)),
            E::or(E::prim("nurse_disable"), E::prim("doctor_disable")),
            E::calendar(CalendarExpr::daily(17, 0, 0)),
        );
        let root = d.define(&expr).unwrap();
        d.watch(root);
        // 09:00 on Jan 1: outside window — no detection.
        d.advance_to(Civil::new(2000, 1, 1, 9, 0, 0).to_ts())
            .unwrap();
        assert!(d
            .raise_named("nurse_disable", Params::new())
            .unwrap()
            .is_empty());
        // 11:00: inside window — detection.
        d.advance_to(Civil::new(2000, 1, 1, 11, 0, 0).to_ts())
            .unwrap();
        let dets = d.raise_named("nurse_disable", Params::new()).unwrap();
        assert_eq!(dets.len(), 1);
        // 18:00: after close — no detection.
        d.advance_to(Civil::new(2000, 1, 1, 18, 0, 0).to_ts())
            .unwrap();
        assert!(d
            .raise_named("doctor_disable", Params::new())
            .unwrap()
            .is_empty());
        // Next day 12:00: window reopened — detection again.
        d.advance_to(Civil::new(2000, 1, 2, 12, 0, 0).to_ts())
            .unwrap();
        let dets = d.raise_named("doctor_disable", Params::new()).unwrap();
        assert_eq!(dets.len(), 1);
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::builder::EventExpr as E;

    #[test]
    fn event_graph_dot_rendering() {
        let mut d = Detector::new(Ts::ZERO);
        let root = d.define(&E::seq(E::prim("a"), E::prim("b"))).unwrap();
        d.watch(root);
        let dot = d.to_dot();
        assert!(dot.starts_with("digraph events {"));
        assert!(dot.contains("shape=ellipse"), "primitives are ellipses");
        assert!(dot.contains("SEQ(E0, E1)"));
        assert!(dot.contains("penwidth=2"), "watched node is bold");
        assert!(dot.contains("n0 -> n2 [label=\"Left\"];"));
        assert!(dot.ends_with("}\n"));
    }
}

#[cfg(test)]
mod star_tests {
    use super::*;
    use crate::builder::EventExpr as E;

    #[test]
    fn periodic_star_accumulates_ticks_until_end() {
        let mut d = Detector::new(Ts::ZERO);
        let root = d
            .define(&E::periodic_star(
                E::prim("start"),
                Dur::from_secs(10),
                E::prim("stop"),
            ))
            .unwrap();
        d.watch(root);
        d.raise_named("start", Params::new().with("who", "p*"))
            .unwrap();
        // Ticks at 10, 20, 30 accumulate silently.
        assert!(d.advance(Dur::from_secs(35)).unwrap().is_empty());
        let dets = d.raise_named("stop", Params::new()).unwrap();
        assert_eq!(dets.len(), 1, "P* emits once, at the terminator");
        let occ = &dets[0].occurrence;
        assert_eq!(occ.params.get_int("ticks"), Some(3));
        assert_eq!(occ.params.get_str("who"), Some("p*"));
        // After termination: no more ticks, no more detections.
        assert!(d.advance(Dur::from_secs(100)).unwrap().is_empty());
    }

    #[test]
    fn periodic_star_without_ticks_detects_nothing() {
        let mut d = Detector::new(Ts::ZERO);
        let root = d
            .define(&E::periodic_star(
                E::prim("start"),
                Dur::from_secs(100),
                E::prim("stop"),
            ))
            .unwrap();
        d.watch(root);
        d.raise_named("start", Params::new()).unwrap();
        d.advance(Dur::from_secs(5)).unwrap();
        let dets = d.raise_named("stop", Params::new()).unwrap();
        assert!(dets.is_empty(), "no ticks happened inside the window");
    }

    #[test]
    fn aperiodic_multiple_windows_chronicle_vs_continuous() {
        // Two overlapping windows; Chronicle pairs the middle with the
        // oldest window only, Continuous with all of them.
        for (ctx, expected) in [(Context::Chronicle, 1usize), (Context::Continuous, 2)] {
            let mut d = Detector::new(Ts::ZERO);
            let root = d
                .define(&E::aperiodic(E::prim("s"), E::prim("m"), E::prim("e")).context(ctx))
                .unwrap();
            d.watch(root);
            d.raise_named("s", Params::new()).unwrap();
            d.advance(Dur::from_secs(1)).unwrap();
            d.raise_named("s", Params::new()).unwrap();
            d.advance(Dur::from_secs(1)).unwrap();
            let dets = d.raise_named("m", Params::new()).unwrap();
            assert_eq!(dets.len(), expected, "context {ctx}");
        }
    }

    #[test]
    fn detector_round_trips_mid_detection() {
        // Serialize a detector with a buffered SEQ initiator and a pending
        // PLUS timer; the deserialized copy must finish both detections
        // exactly like the original (the durable engine's snapshots rely
        // on this).
        let mut d = Detector::new(Ts::ZERO);
        let seq = d
            .define(&E::seq(E::prim("a"), E::prim("b")).context(Context::Chronicle))
            .unwrap();
        let plus = d
            .define(&E::plus(E::prim("a"), Dur::from_secs(30)))
            .unwrap();
        d.watch(seq);
        d.watch(plus);
        d.raise_named("a", Params::new()).unwrap();
        d.advance(Dur::from_secs(1)).unwrap();

        let json = serde_json::to_string(&d).unwrap();
        let mut back: Detector = serde_json::from_str(&json).unwrap();
        assert_eq!(back.now(), d.now());
        assert_eq!(back.pending_timers(), d.pending_timers());

        for r in [&mut d, &mut back] {
            let dets = r.raise_named("b", Params::new()).unwrap();
            assert_eq!(dets.len(), 1, "buffered SEQ initiator survived");
            let dets = r.advance(Dur::from_secs(60)).unwrap();
            assert_eq!(dets.len(), 1, "pending PLUS timer survived");
        }
        assert_eq!(
            serde_json::to_value(&d).unwrap(),
            serde_json::to_value(&back).unwrap(),
            "states stay identical after further events"
        );
    }

    #[test]
    fn not_operator_recent_window_replacement() {
        // Under Recent, a second opener replaces the first, so a middle
        // that killed the old window does not affect the new one.
        let mut d = Detector::new(Ts::ZERO);
        let root = d
            .define(&E::not(E::prim("m"), E::prim("s"), E::prim("e")).context(Context::Recent))
            .unwrap();
        d.watch(root);
        d.raise_named("s", Params::new()).unwrap();
        d.advance(Dur::from_secs(1)).unwrap();
        d.raise_named("m", Params::new()).unwrap(); // kills window 1
        d.advance(Dur::from_secs(1)).unwrap();
        d.raise_named("s", Params::new()).unwrap(); // fresh window 2
        d.advance(Dur::from_secs(1)).unwrap();
        let dets = d.raise_named("e", Params::new()).unwrap();
        assert_eq!(dets.len(), 1, "the fresh window is clean");
    }
}
