//! A WAL-shipping replication group with term-fenced failover.
//!
//! One leader accepts client operations through its [`DurableEngine`]
//! (journal-before-apply, exactly as standalone); every journal record it
//! acknowledges is shipped to the followers as a CRC-framed
//! [`Payload::Append`] batch over a [`Transport`]. Followers journal each
//! record to their *own* durable WAL before applying it
//! ([`DurableEngine::apply_replicated`]), so a promoted follower recovers
//! replicated history from its own disk, then acknowledge with their new
//! journal length. The leader's *commit index* is the longest prefix
//! durably journaled everywhere — `min(leader length, min follower acked
//! index)` — and only that prefix counts as cluster-acknowledged.
//!
//! ## Failover & fencing
//!
//! Promotion models an operator/failover controller with fencing power:
//! [`Cluster::promote`] bumps the monotonic cluster term, durably writes
//! it (via the [`Storage`] trait, in a `term` file the WAL scanners
//! ignore) on every reachable node before the new leader serves anything,
//! and wipes any surviving node whose log ran past the new leader's (its
//! unacknowledged suffix is gone by definition of commit). In-flight
//! messages from the deposed epoch carry the old term and are rejected on
//! receipt; a crashed old leader is fenced on [`Cluster::restart`] before
//! it rejoins. The new leader probes followers with an empty `Append` and
//! re-ships from each follower's acknowledged index.
//!
//! ## Follower reads
//!
//! Followers publish an [`AuthSnapshot`] after every applied batch and
//! answer `check_access` from it without any engine lock — but only
//! inside the snapshot's temporal validity horizon. A query timestamped
//! past the horizon (a GTRBAC boundary or detector timer the follower may
//! not have replayed yet) returns [`ReadOutcome::Stale`] and must be
//! re-asked at the leader, as must any non-provable denial.
//!
//! Replica logs are kept compaction-free (`snapshot_every` is forced off)
//! so the leader can always re-ship from any acknowledged index; log
//! compaction coordinated with follower progress is future work.

use crate::msg::{Envelope, NodeId, Payload};
use crate::transport::{NetFaultPlan, SimTransport, Transport};
use owte_core::{
    checked_index, AuthSnapshot, DurableConfig, DurableEngine, DurableError, FaultPlan,
    FaultyStorage, JournalOp, MemStorage, RecoveryStats, SplitMix64, Storage,
};
use policy::PolicyGraph;
use rbac::{ObjId, OpId, SessionId};
use snoop::Ts;
use std::fmt;

/// The storage stack cluster nodes run on: deterministic fault injection
/// over a crashable in-memory disk (the same stack the single-node model
/// checker uses).
pub type ReplStore = FaultyStorage<MemStorage>;

/// Name of the durable term file (ignored by the WAL's segment/snapshot
/// name parsers).
pub const TERM_FILE: &str = "term";

/// Durably record `term` through the storage trait (create + append +
/// sync, so it survives a crash).
pub fn write_term<S: Storage>(
    storage: &mut S,
    term: u64,
) -> std::result::Result<(), owte_core::StorageError> {
    if storage.list()?.iter().any(|n| n == TERM_FILE) {
        storage.delete(TERM_FILE)?;
    }
    storage.create(TERM_FILE)?;
    storage.append(TERM_FILE, &term.to_le_bytes())?;
    storage.sync(TERM_FILE)
}

/// Read back the durable term; 0 if absent or unreadable (a pre-fencing
/// store).
pub fn read_term<S: Storage>(storage: &S) -> u64 {
    match storage.read(TERM_FILE) {
        Ok(b) if b.len() >= 8 => u64::from_le_bytes(b[..8].try_into().unwrap()),
        _ => 0,
    }
}

/// Tunables for a replication group.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Durable-engine tunables for every node. `snapshot_every` is forced
    /// to `None` (see the module docs on compaction).
    pub durable: DurableConfig,
    /// Transport fault plan (seeded, replayable).
    pub net: NetFaultPlan,
    /// Seed for the transport's fault PRNG and the leader's jitter.
    pub net_seed: u64,
    /// Base retransmission timeout (virtual milliseconds).
    pub retransmit_after: u64,
    /// Cap for the exponential backoff (virtual milliseconds).
    pub backoff_max: u64,
    /// Add seeded jitter to each backoff so retransmissions desynchronize.
    pub jitter: bool,
    /// Maximum records per `Append` batch.
    pub max_batch: usize,
    /// Seeded bug: count a client op as committed the moment the *leader*
    /// journals it, before any follower acknowledges — the lost-ack bug
    /// the model checker must find and shrink.
    pub premature_ack: bool,
}

impl Default for ReplConfig {
    fn default() -> ReplConfig {
        ReplConfig {
            durable: DurableConfig::default(),
            net: NetFaultPlan::default(),
            net_seed: 0,
            retransmit_after: 10,
            backoff_max: 160,
            jitter: true,
            max_batch: 64,
            premature_ack: false,
        }
    }
}

/// An error from the replication layer.
#[derive(Debug)]
pub enum ReplError {
    /// No live leader to route the operation to.
    NoLeader,
    /// The addressed node is down (or the operation needs it up).
    NodeDown(usize),
    /// The addressed node is not down (restart needs a crashed node).
    NodeUp(usize),
    /// No node with this index exists.
    BadNode(usize),
    /// The durable layer failed.
    Durable(DurableError),
    /// A raw storage operation (term fencing) failed.
    Storage(owte_core::StorageError),
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::NoLeader => write!(f, "repl: no live leader"),
            ReplError::NodeDown(n) => write!(f, "repl: node n{n} is down"),
            ReplError::NodeUp(n) => write!(f, "repl: node n{n} is not down"),
            ReplError::BadNode(n) => write!(f, "repl: no node n{n}"),
            ReplError::Durable(e) => write!(f, "repl: {e}"),
            ReplError::Storage(e) => write!(f, "repl: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ReplError>;

/// What a follower read produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Provably allowed from the follower's snapshot — authoritative.
    Granted,
    /// Not provable from the snapshot. Not authoritative: the caller must
    /// re-ask the leader, whose locked path audits the denial.
    NotGranted,
    /// The query's timestamp is outside the snapshot's validity horizon
    /// (a temporal transition the follower may not have replayed yet).
    /// The read degrades to the leader.
    Stale,
}

/// The process half of a node: a live durable engine, or a crashed disk.
#[derive(Clone)]
enum NodeState {
    Up(Box<DurableEngine<ReplStore>>),
    Down(MemStorage),
}

/// One replica.
#[derive(Clone)]
struct Node {
    state: NodeState,
    /// Cached copy of the node's durable term file.
    term: u64,
    /// Published read snapshot (refreshed after every applied batch).
    snap: Option<AuthSnapshot>,
}

/// Leader-side shipping state for one follower.
#[derive(Debug, Clone, Copy)]
struct Peer {
    /// Next record index to ship.
    next_index: u64,
    /// Longest prefix the follower has durably acknowledged.
    acked_index: u64,
    /// Unacknowledged (re)transmissions since the last ack.
    attempts: u32,
    /// Virtual instant the next (re)transmission is allowed.
    due: u64,
}

impl Peer {
    fn fresh(next_index: u64, acked_index: u64) -> Peer {
        Peer {
            next_index,
            acked_index,
            attempts: 0,
            due: 0,
        }
    }
}

/// A replication group: N durable nodes, one leader, a simulated lossy
/// transport, and the client-visible history/commit ledger.
#[derive(Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    peers: Vec<Peer>,
    transport: SimTransport,
    leader: Option<usize>,
    /// Monotonic cluster epoch; bumped by every promotion.
    term: u64,
    /// Longest prefix of `history` durably journaled cluster-wide (or
    /// leader-journaled, under the `premature_ack` bug).
    commit: u64,
    /// Every operation journaled by successive leaders, in global index
    /// order; truncated to the new leader's log on promotion.
    history: Vec<JournalOp>,
    graph: PolicyGraph,
    start: Ts,
    config: ReplConfig,
    /// Virtual transport clock (milliseconds) driving retransmission.
    clock_ms: u64,
    rng: SplitMix64,
    stale_reads: u64,
}

impl Cluster {
    /// Boot a group of `n` nodes from `graph`; node 0 leads at term 1.
    pub fn new(graph: &PolicyGraph, n: usize, config: ReplConfig) -> Result<Cluster> {
        assert!(n >= 1, "a cluster needs at least one node");
        let durable = DurableConfig {
            snapshot_every: None,
            ..config.durable.clone()
        };
        let start = Ts::ZERO;
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let storage = FaultyStorage::new(MemStorage::new(), i as u64, FaultPlan::default());
            let mut d = DurableEngine::create(storage, graph, start, durable.clone())
                .map_err(ReplError::Durable)?;
            write_term(d.storage_mut(), 1).map_err(ReplError::Storage)?;
            let snap = d.engine().snapshot();
            nodes.push(Node {
                state: NodeState::Up(Box::new(d)),
                term: 1,
                snap: Some(snap),
            });
        }
        Ok(Cluster {
            nodes,
            peers: vec![Peer::fresh(0, 0); n],
            transport: SimTransport::new(config.net_seed, config.net.clone()),
            leader: Some(0),
            term: 1,
            commit: 0,
            history: Vec::new(),
            graph: graph.clone(),
            start,
            rng: SplitMix64(config.net_seed ^ 0xD1B5_4A32_D192_ED03),
            config,
            clock_ms: 0,
            stale_reads: 0,
        })
    }

    fn durable_config(&self) -> DurableConfig {
        DurableConfig {
            snapshot_every: None,
            ..self.config.durable.clone()
        }
    }

    /// Number of nodes in the group.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a degenerate zero-node group (never constructed).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current leader, if one is designated and up.
    pub fn leader(&self) -> Option<usize> {
        let li = self.leader?;
        matches!(self.nodes[li].state, NodeState::Up(_)).then_some(li)
    }

    /// The current cluster term (epoch).
    pub fn term(&self) -> u64 {
        self.term
    }

    /// A node's cached durable term.
    pub fn node_term(&self, n: usize) -> u64 {
        self.nodes[n].term
    }

    /// Is node `n` up?
    pub fn is_up(&self, n: usize) -> bool {
        matches!(self.nodes[n].state, NodeState::Up(_))
    }

    /// The cluster commit index: length of the acknowledged prefix.
    pub fn commit(&self) -> u64 {
        self.commit
    }

    /// Every operation journaled by successive leaders.
    pub fn history(&self) -> &[JournalOp] {
        &self.history
    }

    /// The cluster-acknowledged prefix of [`Cluster::history`].
    pub fn acked_ops(&self) -> &[JournalOp] {
        let n = checked_index(self.commit).min(self.history.len());
        &self.history[..n]
    }

    /// Borrow a node's live engine, if up.
    pub fn node_engine(&self, n: usize) -> Option<&DurableEngine<ReplStore>> {
        match self.nodes.get(n)?.state {
            NodeState::Up(ref d) => Some(d),
            NodeState::Down(_) => None,
        }
    }

    /// A node's journal length (its durable log), if up.
    pub fn node_op_count(&self, n: usize) -> Option<u64> {
        self.node_engine(n).map(|d| d.op_count())
    }

    /// A node's published read snapshot, if up.
    pub fn node_snapshot(&self, n: usize) -> Option<&AuthSnapshot> {
        match self.nodes.get(n)?.state {
            NodeState::Up(_) => self.nodes[n].snap.as_ref(),
            NodeState::Down(_) => None,
        }
    }

    /// The leader-side acked index for follower `n`.
    pub fn acked_index(&self, n: usize) -> u64 {
        self.peers[n].acked_index
    }

    /// The leader-side next shipping index for follower `n`.
    pub fn next_index(&self, n: usize) -> u64 {
        self.peers[n].next_index
    }

    /// Unacknowledged (re)transmissions to follower `n` since its last
    /// ack (drives the exponential backoff).
    pub fn attempts(&self, n: usize) -> u32 {
        self.peers[n].attempts
    }

    /// Virtual milliseconds until follower `n`'s next allowed
    /// (re)transmission; 0 when it may be shipped to immediately.
    pub fn due_in(&self, n: usize) -> u64 {
        self.peers[n].due.saturating_sub(self.clock_ms)
    }

    /// Digest of node `n`'s durable bytes — for a live node, what its
    /// disk would hold after a power loss; for a crashed node, what the
    /// disk holds now. Model-checker fingerprint material.
    pub fn node_disk_digest(&self, n: usize) -> u64 {
        match &self.nodes[n].state {
            NodeState::Up(d) => {
                let mut mem = d.storage().inner().clone();
                mem.crash();
                mem.state_digest()
            }
            NodeState::Down(mem) => mem.state_digest(),
        }
    }

    /// The simulated transport (inspection).
    pub fn transport(&self) -> &SimTransport {
        &self.transport
    }

    /// The simulated transport, mutable (partitions, scripted faults).
    pub fn transport_mut(&mut self) -> &mut SimTransport {
        &mut self.transport
    }

    /// The virtual transport clock (milliseconds).
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Follower reads answered `Stale` so far.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }

    /// The leader engine's logical clock (client-perceived time).
    pub fn leader_now(&self) -> Result<Ts> {
        let li = self.leader().ok_or(ReplError::NoLeader)?;
        Ok(self
            .node_engine(li)
            .expect("leader() checked liveness")
            .engine()
            .now())
    }

    /// Run a client operation on the leader's durable engine, extend the
    /// cluster history with whatever it journaled, and ship the new
    /// records to the followers.
    pub fn with_leader<R>(
        &mut self,
        f: impl FnOnce(&mut DurableEngine<ReplStore>) -> R,
    ) -> Result<R> {
        let li = self.leader.ok_or(ReplError::NoLeader)?;
        let NodeState::Up(d) = &mut self.nodes[li].state else {
            return Err(ReplError::NodeDown(li));
        };
        let before = d.op_count();
        let r = f(d);
        let appended = d.ops_from(before).map_err(ReplError::Durable)?;
        let after = d.op_count();
        for (idx, op) in appended {
            let i = checked_index(idx);
            debug_assert_eq!(i, self.history.len(), "history tracks the leader log");
            if i == self.history.len() {
                self.history.push(op);
            }
        }
        // The leader's own writes invalidate its published snapshot too.
        let NodeState::Up(d) = &mut self.nodes[li].state else {
            unreachable!("checked above");
        };
        if after > before {
            self.nodes[li].snap = Some(d.engine().snapshot());
        }
        if self.config.premature_ack {
            // Seeded bug: "committed" the moment the leader journals it.
            self.commit = self.commit.max(after);
        }
        self.ship();
        Ok(r)
    }

    /// Ship pending records to every lagging, non-backing-off follower.
    pub fn ship(&mut self) {
        let Some(li) = self.leader() else {
            return;
        };
        let leader_len = self.node_op_count(li).unwrap_or(0);
        for i in 0..self.nodes.len() {
            if i == li || !self.is_up(i) {
                continue;
            }
            if self.peers[i].next_index >= leader_len {
                continue;
            }
            if self.clock_ms < self.peers[i].due {
                continue;
            }
            self.send_append(li, i);
        }
    }

    /// Build and send one `Append` (records from the peer's `next_index`,
    /// or an empty probe), arming the retransmission backoff.
    fn send_append(&mut self, li: usize, i: usize) {
        let Some(d) = self.node_engine(li) else {
            return;
        };
        let records: Vec<(u64, Vec<u8>)> = d
            .records_from(self.peers[i].next_index)
            .unwrap_or_default()
            .into_iter()
            .take(self.config.max_batch)
            .collect();
        let env = Envelope::new(
            NodeId(li),
            NodeId(i),
            &Payload::Append {
                term: self.term,
                records,
                commit: self.commit,
            },
        );
        self.transport.send(env);
        let exp = self.peers[i].attempts.min(10);
        let backoff = (self.config.retransmit_after << exp).min(self.config.backoff_max);
        let jitter = if self.config.jitter {
            self.rng.next() % (backoff / 4 + 1)
        } else {
            0
        };
        self.peers[i].due = self.clock_ms + backoff + jitter;
        self.peers[i].attempts = self.peers[i].attempts.saturating_add(1);
    }

    /// Advance the virtual transport clock and retransmit to every lagging
    /// follower whose backoff deadline has passed.
    pub fn tick(&mut self, ms: u64) {
        self.clock_ms += ms;
        self.ship();
    }

    /// The earliest instant a retransmission is due, if the leader is up
    /// and some live follower still lags. Drives [`Cluster::settle`] and
    /// the model checker's tick choice.
    pub fn next_retransmit_due(&self) -> Option<u64> {
        let li = self.leader()?;
        let leader_len = self.node_op_count(li)?;
        (0..self.nodes.len())
            .filter(|&i| i != li && self.is_up(i) && self.peers[i].next_index < leader_len)
            .map(|i| self.peers[i].due)
            .min()
    }

    /// Deliver the in-flight message at `slot` to its destination,
    /// running the protocol handler. `false` if the slot is out of range.
    pub fn deliver_slot(&mut self, slot: usize) -> bool {
        match self.transport.take_slot(slot) {
            Some(env) => {
                self.handle(env);
                true
            }
            None => false,
        }
    }

    /// Drive delivery and retransmission until the network is quiet and
    /// nothing more is due — the "eventually connected network runs to
    /// convergence" loop. Returns the number of deliveries + ticks.
    pub fn settle(&mut self) -> usize {
        let mut steps = 0usize;
        loop {
            if self.transport.in_flight() > 0 {
                self.deliver_slot(0);
            } else if let Some(due) = self.next_retransmit_due() {
                let wait = due.saturating_sub(self.clock_ms).max(1);
                self.tick(wait);
            } else {
                break;
            }
            steps += 1;
            if steps > 100_000 {
                break; // livelock guard; settled clusters never get here
            }
        }
        steps
    }

    fn handle(&mut self, env: Envelope) {
        // A frame the checksum rejects is indistinguishable from a loss.
        let Ok(payload) = env.payload() else {
            return;
        };
        match payload {
            Payload::Append {
                term,
                records,
                commit,
            } => self.on_append(env.from, env.to, term, records, commit),
            Payload::Ack { term, next_index } => self.on_ack(env.from, env.to, term, next_index),
        }
    }

    /// Follower path: fence stale terms, journal-before-apply each
    /// contiguous record, refresh the read snapshot, acknowledge.
    fn on_append(
        &mut self,
        from: NodeId,
        to: NodeId,
        term: u64,
        records: Vec<(u64, Vec<u8>)>,
        _commit: u64,
    ) {
        let i = to.0;
        if i >= self.nodes.len() {
            return;
        }
        let node_term = self.nodes[i].term;
        let NodeState::Up(d) = &mut self.nodes[i].state else {
            return; // down nodes lose their mail
        };
        if term < node_term {
            // Fencing: the sender's epoch is over; tell it so.
            let reply = Envelope::new(
                to,
                from,
                &Payload::Ack {
                    term: node_term,
                    next_index: d.op_count(),
                },
            );
            self.transport.send(reply);
            return;
        }
        if term > node_term {
            self.nodes[i].term = term;
            let NodeState::Up(d) = &mut self.nodes[i].state else {
                unreachable!("checked above");
            };
            let _ = write_term(d.storage_mut(), term);
        }
        let NodeState::Up(d) = &mut self.nodes[i].state else {
            unreachable!("checked above");
        };
        let mut applied = false;
        for (idx, bytes) in &records {
            if *idx < d.op_count() {
                continue; // duplicate of something already journaled
            }
            if *idx > d.op_count() {
                break; // gap: ack our length so the leader rewinds
            }
            let Ok(op) = serde_json::from_slice::<JournalOp>(bytes) else {
                break;
            };
            let before = d.op_count();
            // Engine-level rejections are part of history (denials change
            // audit state), exactly as on the leader; only a failed
            // journal append stops the batch unacknowledged.
            let _ = d.apply_replicated(&op);
            if d.op_count() == before {
                break;
            }
            applied = true;
        }
        if applied {
            self.nodes[i].snap = Some(match &self.nodes[i].state {
                NodeState::Up(d) => d.engine().snapshot(),
                NodeState::Down(_) => unreachable!("checked above"),
            });
        }
        let NodeState::Up(d) = &self.nodes[i].state else {
            unreachable!("checked above");
        };
        let reply = Envelope::new(
            to,
            from,
            &Payload::Ack {
                term: self.nodes[i].term,
                next_index: d.op_count(),
            },
        );
        self.transport.send(reply);
    }

    /// Leader path: fold a follower acknowledgement into the shipping
    /// state and advance the commit index.
    fn on_ack(&mut self, from: NodeId, to: NodeId, term: u64, next_index: u64) {
        let li = to.0;
        if self.leader != Some(li) || !self.is_up(li) {
            return; // addressed to a deposed or dead leader
        }
        if term != self.term {
            return; // an ack from another epoch carries stale indices
        }
        let i = from.0;
        if i >= self.peers.len() || i == li {
            return;
        }
        let p = &mut self.peers[i];
        p.acked_index = p.acked_index.max(next_index);
        p.next_index = next_index;
        p.attempts = 0;
        p.due = self.clock_ms;
        self.advance_commit();
        self.ship();
    }

    /// Recompute the commit index: the longest prefix durably journaled
    /// on the leader *and* acknowledged by every follower. Monotone.
    fn advance_commit(&mut self) {
        let Some(li) = self.leader() else {
            return;
        };
        let mut c = self.node_op_count(li).unwrap_or(0);
        for i in 0..self.nodes.len() {
            if i != li {
                c = c.min(self.peers[i].acked_index);
            }
        }
        self.commit = self.commit.max(c);
    }

    /// Power-fail node `n`: unsynced bytes are dropped, in-memory state is
    /// gone, the disk survives. A crashed leader leaves the cluster
    /// leaderless until a promotion.
    pub fn crash(&mut self, n: usize) -> Result<()> {
        if n >= self.nodes.len() {
            return Err(ReplError::BadNode(n));
        }
        let state = std::mem::replace(&mut self.nodes[n].state, NodeState::Down(MemStorage::new()));
        match state {
            NodeState::Up(d) => {
                let mut mem = d.into_storage().into_inner();
                mem.crash();
                self.nodes[n].state = NodeState::Down(mem);
                self.nodes[n].snap = None;
                if self.leader == Some(n) {
                    self.leader = None;
                }
                Ok(())
            }
            down => {
                self.nodes[n].state = down;
                Err(ReplError::NodeDown(n))
            }
        }
    }

    /// Restart a crashed node: recover the engine from its own durable
    /// WAL, fence it to the current epoch, and (as a follower) resume
    /// shipping from its last acknowledged index. A node whose log ran
    /// past the current leader's belongs to a deposed epoch and is wiped
    /// for a full resync.
    pub fn restart(&mut self, n: usize) -> Result<RecoveryStats> {
        if n >= self.nodes.len() {
            return Err(ReplError::BadNode(n));
        }
        let NodeState::Down(_) = &self.nodes[n].state else {
            return Err(ReplError::NodeUp(n));
        };
        let NodeState::Down(mem) =
            std::mem::replace(&mut self.nodes[n].state, NodeState::Down(MemStorage::new()))
        else {
            unreachable!("matched Down above");
        };
        let storage = FaultyStorage::new(mem, n as u64, FaultPlan::default());
        let mut d = match DurableEngine::open(storage, self.durable_config()) {
            Ok(d) => d,
            Err(e) => return Err(ReplError::Durable(e)),
        };
        let stats = d.recovery_stats();
        write_term(d.storage_mut(), self.term).map_err(ReplError::Storage)?;
        self.nodes[n].term = self.term;
        if let Some(li) = self.leader() {
            if li != n {
                let leader_len = self.node_op_count(li).unwrap_or(0);
                if d.op_count() > leader_len {
                    // A longer log than the current epoch's leader is a
                    // relic of a deposed term: wipe and resync.
                    self.reset_node(n)?;
                    self.ship();
                    return Ok(stats);
                }
            }
        }
        self.nodes[n].snap = Some(d.engine().snapshot());
        self.nodes[n].state = NodeState::Up(Box::new(d));
        if self.leader().is_some_and(|li| li != n) {
            // Re-ship from the follower's last acknowledged index.
            self.peers[n] = Peer::fresh(self.peers[n].acked_index, self.peers[n].acked_index);
            self.ship();
        }
        Ok(stats)
    }

    /// Wipe node `n` to a fresh genesis state fenced at the current term,
    /// to be fully resynced by shipping from index 0.
    fn reset_node(&mut self, n: usize) -> Result<()> {
        let storage = FaultyStorage::new(MemStorage::new(), n as u64, FaultPlan::default());
        let mut d = DurableEngine::create(storage, &self.graph, self.start, self.durable_config())
            .map_err(ReplError::Durable)?;
        write_term(d.storage_mut(), self.term).map_err(ReplError::Storage)?;
        self.nodes[n].term = self.term;
        self.nodes[n].snap = Some(d.engine().snapshot());
        self.nodes[n].state = NodeState::Up(Box::new(d));
        self.peers[n] = Peer::fresh(0, 0);
        Ok(())
    }

    /// Fail over to node `n`: bump the monotonic term, fence every up
    /// node, truncate the client-visible history to the new leader's
    /// durable log (its journal is now the cluster truth), wipe any
    /// surviving longer log, and probe the followers so shipping resumes
    /// from their acknowledged indices.
    pub fn promote(&mut self, n: usize) -> Result<()> {
        if n >= self.nodes.len() {
            return Err(ReplError::BadNode(n));
        }
        if !self.is_up(n) {
            return Err(ReplError::NodeDown(n));
        }
        if self.leader == Some(n) {
            return Ok(());
        }
        self.term += 1;
        let new_len = self.node_op_count(n).expect("liveness checked");
        self.history.truncate(checked_index(new_len));
        self.leader = Some(n);
        let term = self.term;
        for node in &mut self.nodes {
            if let NodeState::Up(d) = &mut node.state {
                node.term = term;
                write_term(d.storage_mut(), term).map_err(ReplError::Storage)?;
            }
        }
        // Wipe survivors whose logs ran past the new leader's: their
        // suffix was never cluster-acknowledged and contradicts the new
        // epoch.
        for i in 0..self.nodes.len() {
            if i != n && self.is_up(i) && self.node_op_count(i).unwrap_or(0) > new_len {
                self.reset_node(i)?;
            }
        }
        // Probe every follower (empty Append): its Ack reports the
        // journal length, rewinding `next_index` to exactly where
        // re-shipping must start.
        for i in 0..self.nodes.len() {
            if i == n {
                continue;
            }
            self.peers[i] = Peer {
                next_index: new_len,
                acked_index: self.peers[i].acked_index.min(new_len),
                attempts: 0,
                due: 0,
            };
            if self.is_up(i) {
                self.send_append(n, i);
            }
        }
        Ok(())
    }

    /// A follower read at logical time `at`, answered lock-free from the
    /// node's published snapshot — or [`ReadOutcome::Stale`] when `at`
    /// lies outside the snapshot's validity horizon.
    pub fn read_at(
        &mut self,
        n: usize,
        session: SessionId,
        op: OpId,
        obj: ObjId,
        at: Ts,
    ) -> Result<ReadOutcome> {
        if n >= self.nodes.len() {
            return Err(ReplError::BadNode(n));
        }
        if !self.is_up(n) {
            return Err(ReplError::NodeDown(n));
        }
        let Some(snap) = self.nodes[n].snap.as_ref() else {
            self.stale_reads += 1;
            return Ok(ReadOutcome::Stale);
        };
        if !snap.answers_at(at) {
            self.stale_reads += 1;
            return Ok(ReadOutcome::Stale);
        }
        Ok(if snap.grants(session, op, obj, None) {
            ReadOutcome::Granted
        } else {
            ReadOutcome::NotGranted
        })
    }

    /// Client-facing `check_access` routed through replica `n`: answered
    /// from the follower snapshot when provable and fresh, degraded to
    /// the leader (who audits) on `NotGranted` or `Stale`.
    pub fn check_access_via(
        &mut self,
        n: usize,
        session: SessionId,
        op: OpId,
        obj: ObjId,
    ) -> Result<bool> {
        let at = self.leader_now()?;
        if self.leader() != Some(n) {
            if let ReadOutcome::Granted = self.read_at(n, session, op, obj, at)? {
                return Ok(true);
            }
        }
        self.with_leader(|d| d.check_access(session, op, obj))?
            .map_err(ReplError::Durable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owte_core::apply_op;
    use owte_core::Engine;

    fn policy() -> PolicyGraph {
        let mut g = PolicyGraph::new("repl-test");
        g.role("clerk");
        g.user("ann");
        g.assign("ann", "clerk");
        g.permission("p", "read", "ledger");
        g.grant("p", "clerk");
        g
    }

    fn lockstep() -> ReplConfig {
        ReplConfig {
            jitter: false,
            ..ReplConfig::default()
        }
    }

    fn run_ops(c: &mut Cluster) -> SessionId {
        let s = c
            .with_leader(|d| {
                let ann = d.user_id("ann").unwrap();
                let clerk = d.role_id("clerk").unwrap();
                d.create_session(ann, &[clerk]).unwrap()
            })
            .unwrap();
        c.with_leader(|d| {
            let read = d.engine().system().op_by_name("read").unwrap();
            let ledger = d.engine().system().obj_by_name("ledger").unwrap();
            assert!(d.check_access(s, read, ledger).unwrap());
        })
        .unwrap();
        s
    }

    fn replay_state(c: &Cluster, upto: u64) -> Engine {
        let mut e = Engine::from_policy(&policy(), Ts::ZERO).unwrap();
        for op in &c.history()[..checked_index(upto)] {
            let _ = apply_op(&mut e, op);
        }
        e
    }

    #[test]
    fn followers_converge_to_leader_history() {
        let mut c = Cluster::new(&policy(), 3, lockstep()).unwrap();
        run_ops(&mut c);
        c.settle();
        assert_eq!(c.commit(), c.history().len() as u64);
        for n in 0..3 {
            let d = c.node_engine(n).expect("all up");
            assert_eq!(d.op_count(), c.commit());
            let expected = replay_state(&c, c.commit());
            assert!(
                crate::state_matches(d.engine(), &expected),
                "node n{n} diverged from the acked-prefix replay"
            );
        }
    }

    #[test]
    fn failover_recovers_from_own_wal_and_reships() {
        let mut c = Cluster::new(&policy(), 3, lockstep()).unwrap();
        run_ops(&mut c);
        c.settle();
        let committed = c.commit();
        assert!(committed > 0);
        c.crash(0).unwrap();
        assert!(c.leader().is_none());
        c.promote(1).unwrap();
        assert_eq!(c.leader(), Some(1));
        assert_eq!(c.term(), 2);
        // The promoted follower's own WAL already holds the acked prefix.
        assert!(c.node_op_count(1).unwrap() >= committed);
        assert_eq!(c.commit(), committed, "promotion must not lose acks");
        // New client ops flow through the new leader and reach node 2.
        c.with_leader(|d| {
            let ann = d.user_id("ann").unwrap();
            let clerk = d.role_id("clerk").unwrap();
            d.create_session(ann, &[clerk]).unwrap()
        })
        .unwrap();
        c.settle();
        assert_eq!(c.node_op_count(2).unwrap(), c.history().len() as u64);
        // The deposed leader restarts, is fenced, and resyncs as follower.
        c.restart(0).unwrap();
        assert_eq!(c.node_term(0), 2);
        c.settle();
        assert_eq!(c.node_op_count(0).unwrap(), c.history().len() as u64);
        assert_eq!(c.commit(), c.history().len() as u64);
    }

    #[test]
    fn stale_epoch_appends_are_fenced() {
        let mut c = Cluster::new(&policy(), 3, lockstep()).unwrap();
        run_ops(&mut c);
        // Leave the leader's Appends in flight, fail over, then deliver
        // the stale messages: every node must reject them.
        c.crash(0).unwrap();
        c.promote(1).unwrap();
        let before = c.node_op_count(2).unwrap();
        let stale: Vec<usize> = (0..c.transport().pending().len()).collect();
        for _ in stale {
            c.deliver_slot(0);
        }
        c.settle();
        // Node 2 only holds what the *new* leader shipped (nothing new),
        // never a record accepted under the deposed term after fencing…
        assert_eq!(c.node_term(2), 2);
        // …and the history it does hold matches the promoted leader's.
        assert_eq!(
            c.node_op_count(2).unwrap().max(before),
            c.node_op_count(2).unwrap()
        );
    }

    #[test]
    fn premature_ack_loses_acked_ops_on_failover() {
        let cfg = ReplConfig {
            premature_ack: true,
            jitter: false,
            ..ReplConfig::default()
        };
        let mut c = Cluster::new(&policy(), 3, cfg).unwrap();
        // Journal on the leader but drop every Append before delivery.
        run_ops(&mut c);
        while c.transport().in_flight() > 0 {
            c.transport_mut().drop_slot(0);
        }
        assert!(c.commit() > 0, "the bug acks without follower journaling");
        c.crash(0).unwrap();
        c.promote(1).unwrap();
        // The promoted follower's log is shorter than the claimed commit:
        // acknowledged operations are gone.
        assert!(c.node_op_count(1).unwrap() < c.commit());
    }

    #[test]
    fn lossy_transport_still_converges_via_retransmission() {
        let cfg = ReplConfig {
            net: NetFaultPlan {
                p_drop: 0.4,
                p_duplicate: 0.2,
                p_reorder: 0.3,
                ..NetFaultPlan::default()
            },
            net_seed: 7,
            jitter: true,
            ..ReplConfig::default()
        };
        let mut c = Cluster::new(&policy(), 3, cfg).unwrap();
        run_ops(&mut c);
        c.settle();
        assert_eq!(c.commit(), c.history().len() as u64);
        for n in 0..3 {
            assert_eq!(c.node_op_count(n).unwrap(), c.commit());
        }
        assert!(
            c.transport().stats().dropped > 0,
            "a 40% drop rate must actually drop something"
        );
    }
}
