//! WAL-shipping replication with term-fenced failover for the durable
//! OWTE stack.
//!
//! The paper's active authorization rules assume one authorization engine
//! between every access decision and the protected objects; this crate
//! makes that engine a replicated service without weakening the paper's
//! guarantees. The leader runs the ordinary durable engine
//! (journal-before-apply); the journal records it writes are the
//! replication stream, shipped as CRC-framed batches ([`msg`]) over a
//! lossy simulated transport ([`transport`]) to followers that journal
//! each record to their own WAL before applying it ([`cluster`]).
//! Followers answer `check_access` lock-free from a published
//! [`owte_core::AuthSnapshot`], but only inside its temporal validity
//! horizon — a query past the next GTRBAC boundary or enforcement timer
//! degrades to the leader instead of being answered from a snapshot that
//! may already be rewritten. Failover promotes a follower whose own
//! durable WAL holds the acknowledged prefix, fences the deposed epoch
//! with a monotonic term, and re-ships from each follower's acknowledged
//! index.
//!
//! Everything is deterministic: the transport's faults are seeded and
//! scriptable in the same replay format as the storage fault injector,
//! and the cluster exposes slot-level delivery so the model checker in
//! `crates/sim` can treat every message delivery, loss, duplication and
//! crash as an explicit scheduler choice.

#![warn(missing_docs)]

pub mod cluster;
pub mod msg;
pub mod transport;

pub use cluster::{
    read_term, write_term, Cluster, ReadOutcome, ReplConfig, ReplError, ReplStore, TERM_FILE,
};
pub use msg::{frame, unframe, Envelope, FrameError, NodeId, Payload};
pub use transport::{
    NetFaultKind, NetFaultPlan, NetStats, ScriptedNetFault, SimTransport, Transport,
};

use owte_core::Engine;

/// Do two engines agree on every externally observable authorization
/// fact — session sets, active roles, role enablement, audit log and
/// clock? This is the equality the replication invariants assert between
/// a follower and the acked-prefix replay (`sim::state_diff` reports the
/// first difference verbosely; this is the boolean form for callers that
/// cannot depend on `sim`).
pub fn state_matches(a: &Engine, b: &Engine) -> bool {
    let (sa, sb) = (a.system(), b.system());
    let (la, lb): (Vec<_>, Vec<_>) = (sa.all_sessions().collect(), sb.all_sessions().collect());
    if la != lb {
        return false;
    }
    for s in la {
        match (sa.session_roles(s), sb.session_roles(s)) {
            (Ok(x), Ok(y)) if x == y => {}
            _ => return false,
        }
    }
    for r in sa.all_roles().collect::<Vec<_>>() {
        if sa.is_enabled(r).ok() != sb.is_enabled(r).ok() {
            return false;
        }
    }
    a.log().entries() == b.log().entries() && a.now() == b.now()
}
