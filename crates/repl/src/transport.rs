//! The transport abstraction and its simulated, fault-injected
//! implementation.
//!
//! [`SimTransport`] mirrors the storage fault injector
//! ([`owte_core::FaultyStorage`]) exactly: a seeded [`SplitMix64`] drives
//! probabilistic drop/duplicate/reorder knobs, and a script of
//! [`Scripted`] faults pins exact misbehaviour to exact 1-based *send*
//! indices — the same `{at, kind}` replay format the storage layer uses
//! for operation indices. A `(seed, plan)` pair reproduces the identical
//! fault sequence on every run.

use crate::msg::{Envelope, NodeId};
use owte_core::{Scripted, SplitMix64};
use std::collections::BTreeSet;

/// What a scripted network fault does to the message being sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The message vanishes.
    Drop,
    /// The message is enqueued twice.
    Duplicate,
}

/// A network fault pinned to an exact send index (1-based, counting
/// [`Transport::send`] calls) — the transport instantiation of the shared
/// [`Scripted`] script format.
pub type ScriptedNetFault = Scripted<NetFaultKind>;

/// What [`SimTransport`] is allowed to break, and how often.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    /// Probability that a sent message is silently dropped.
    pub p_drop: f64,
    /// Probability that a sent message is enqueued twice.
    pub p_duplicate: f64,
    /// Probability that a sent message is swapped with a random earlier
    /// in-flight message (reordering).
    pub p_reorder: f64,
    /// Deterministic faults at exact send indices, checked before the
    /// probabilistic knobs. Empty by default.
    pub scripted: Vec<ScriptedNetFault>,
}

impl Default for NetFaultPlan {
    fn default() -> NetFaultPlan {
        NetFaultPlan {
            p_drop: 0.0,
            p_duplicate: 0.0,
            p_reorder: 0.0,
            scripted: Vec::new(),
        }
    }
}

impl NetFaultPlan {
    /// A plan with a single scripted fault and nothing probabilistic.
    pub fn scripted_one(at_send: u64, kind: NetFaultKind) -> NetFaultPlan {
        NetFaultPlan {
            scripted: vec![ScriptedNetFault { at: at_send, kind }],
            ..NetFaultPlan::default()
        }
    }
}

/// Message delivery between nodes. Implementations may lose, duplicate
/// and reorder messages arbitrarily; they never invent or mutate bytes
/// (corruption is the frame checksum's problem, and a corrupt frame is
/// equivalent to a loss at the receiver).
pub trait Transport {
    /// Queue `env` for delivery (subject to the transport's faults).
    fn send(&mut self, env: Envelope);
    /// Take the oldest in-flight message addressed to `to`, if any.
    fn recv(&mut self, to: NodeId) -> Option<Envelope>;
    /// Number of messages currently in flight.
    fn in_flight(&self) -> usize;
}

/// Delivery/loss counters, for experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total [`Transport::send`] calls observed.
    pub sends: u64,
    /// Messages lost (fault knobs or partitions).
    pub dropped: u64,
    /// Extra copies enqueued by duplication faults.
    pub duplicated: u64,
    /// Payload bytes accepted into the in-flight queue.
    pub bytes_sent: u64,
}

/// The in-memory simulated transport: a single in-flight queue with
/// seeded faults and explicit partitions.
///
/// Beyond the [`Transport`] trait, the model checker steers individual
/// messages by *slot* (index into the in-flight queue): deliver, drop or
/// duplicate exactly one chosen message, making every network decision a
/// scheduler choice instead of a probabilistic event.
#[derive(Debug, Clone)]
pub struct SimTransport {
    queue: Vec<Envelope>,
    rng: SplitMix64,
    plan: NetFaultPlan,
    stats: NetStats,
    /// Unordered node pairs that cannot currently exchange messages.
    cut: BTreeSet<(usize, usize)>,
}

impl SimTransport {
    /// A transport with all faults driven by `seed` and `plan`.
    pub fn new(seed: u64, plan: NetFaultPlan) -> SimTransport {
        SimTransport {
            queue: Vec::new(),
            rng: SplitMix64(seed),
            plan,
            stats: NetStats::default(),
            cut: BTreeSet::new(),
        }
    }

    fn pair(a: NodeId, b: NodeId) -> (usize, usize) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    /// Sever the link between `a` and `b` (both directions). Messages
    /// already in flight are unaffected; new sends are dropped.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.cut.insert(Self::pair(a, b));
    }

    /// Restore every severed link.
    pub fn heal(&mut self) {
        self.cut.clear();
    }

    /// Is the link between `a` and `b` currently severed?
    pub fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.cut.contains(&Self::pair(a, b))
    }

    /// The in-flight queue, oldest first (model-checker slot addressing).
    pub fn pending(&self) -> &[Envelope] {
        &self.queue
    }

    /// Remove and return the message at `slot` (a scheduler-chosen
    /// delivery). `None` if the slot is out of range.
    pub fn take_slot(&mut self, slot: usize) -> Option<Envelope> {
        if slot < self.queue.len() {
            Some(self.queue.remove(slot))
        } else {
            None
        }
    }

    /// Drop the message at `slot` (a scheduler-chosen loss).
    pub fn drop_slot(&mut self, slot: usize) -> bool {
        if slot < self.queue.len() {
            self.queue.remove(slot);
            self.stats.dropped += 1;
            true
        } else {
            false
        }
    }

    /// Duplicate the message at `slot` (a scheduler-chosen duplication);
    /// the copy is appended at the queue tail.
    pub fn dup_slot(&mut self, slot: usize) -> bool {
        if slot < self.queue.len() {
            let copy = self.queue[slot].clone();
            self.queue.push(copy);
            self.stats.duplicated += 1;
            true
        } else {
            false
        }
    }

    /// Delivery/loss counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Borrow the fault plan mutably (installing scripted faults on a
    /// live transport, mirroring [`owte_core::FaultyStorage::plan_mut`]).
    pub fn plan_mut(&mut self) -> &mut NetFaultPlan {
        &mut self.plan
    }

    /// The scripted fault (if any) pinned to send index `at`.
    fn scripted_at(&self, at: u64) -> Option<NetFaultKind> {
        self.plan
            .scripted
            .iter()
            .find(|f| f.at == at)
            .map(|f| f.kind.clone())
    }
}

impl Transport for SimTransport {
    fn send(&mut self, env: Envelope) {
        self.stats.sends += 1;
        if self.partitioned(env.from, env.to) {
            self.stats.dropped += 1;
            return;
        }
        match self.scripted_at(self.stats.sends) {
            Some(NetFaultKind::Drop) => {
                self.stats.dropped += 1;
                return;
            }
            Some(NetFaultKind::Duplicate) => {
                self.stats.bytes_sent += env.frame.len() as u64;
                self.stats.duplicated += 1;
                self.queue.push(env.clone());
                self.queue.push(env);
                return;
            }
            None => {}
        }
        if self.plan.p_drop > 0.0 && self.rng.unit() < self.plan.p_drop {
            self.stats.dropped += 1;
            return;
        }
        self.stats.bytes_sent += env.frame.len() as u64;
        if self.plan.p_duplicate > 0.0 && self.rng.unit() < self.plan.p_duplicate {
            self.stats.duplicated += 1;
            self.queue.push(env.clone());
        }
        self.queue.push(env);
        if self.plan.p_reorder > 0.0
            && self.queue.len() >= 2
            && self.rng.unit() < self.plan.p_reorder
        {
            let last = self.queue.len() - 1;
            let other = self.rng.below(last);
            self.queue.swap(other, last);
        }
    }

    fn recv(&mut self, to: NodeId) -> Option<Envelope> {
        let slot = self.queue.iter().position(|e| e.to == to)?;
        Some(self.queue.remove(slot))
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Payload;

    fn env(from: usize, to: usize, term: u64) -> Envelope {
        Envelope::new(
            NodeId(from),
            NodeId(to),
            &Payload::Ack {
                term,
                next_index: 0,
            },
        )
    }

    #[test]
    fn faultless_transport_is_fifo_per_destination() {
        let mut t = SimTransport::new(1, NetFaultPlan::default());
        t.send(env(0, 1, 1));
        t.send(env(0, 2, 2));
        t.send(env(0, 1, 3));
        let first = t.recv(NodeId(1)).unwrap().payload().unwrap();
        assert!(matches!(first, Payload::Ack { term: 1, .. }));
        let second = t.recv(NodeId(1)).unwrap().payload().unwrap();
        assert!(matches!(second, Payload::Ack { term: 3, .. }));
        assert!(t.recv(NodeId(1)).is_none());
        assert_eq!(t.in_flight(), 1);
    }

    #[test]
    fn scripted_faults_replay_by_send_index() {
        let plan = NetFaultPlan {
            scripted: vec![
                ScriptedNetFault {
                    at: 1,
                    kind: NetFaultKind::Drop,
                },
                ScriptedNetFault {
                    at: 3,
                    kind: NetFaultKind::Duplicate,
                },
            ],
            ..NetFaultPlan::default()
        };
        let mut t = SimTransport::new(9, plan);
        t.send(env(0, 1, 1)); // dropped
        t.send(env(0, 1, 2)); // normal
        t.send(env(0, 1, 3)); // duplicated
        assert_eq!(t.in_flight(), 3);
        assert_eq!(t.stats().dropped, 1);
        assert_eq!(t.stats().duplicated, 1);
    }

    #[test]
    fn seeded_faults_are_reproducible() {
        let plan = NetFaultPlan {
            p_drop: 0.5,
            p_duplicate: 0.3,
            p_reorder: 0.3,
            ..NetFaultPlan::default()
        };
        let run = |seed: u64| {
            let mut t = SimTransport::new(seed, plan.clone());
            for i in 0..50 {
                t.send(env(0, 1 + (i % 2), i as u64));
            }
            let order: Vec<Vec<u8>> = t.pending().iter().map(|e| e.frame.clone()).collect();
            (t.stats(), order)
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
        assert_ne!(
            run(42).0,
            run(43).0,
            "different seeds should diverge on a 50-send run"
        );
    }

    #[test]
    fn partitions_drop_new_sends_both_ways() {
        let mut t = SimTransport::new(1, NetFaultPlan::default());
        t.partition(NodeId(0), NodeId(1));
        t.send(env(0, 1, 1));
        t.send(env(1, 0, 2));
        t.send(env(0, 2, 3));
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.stats().dropped, 2);
        t.heal();
        t.send(env(0, 1, 4));
        assert_eq!(t.in_flight(), 2);
    }
}
