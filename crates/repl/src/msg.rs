//! Wire format: CRC-framed replication messages.
//!
//! Every message travels as a single frame `[len: u32][crc: u32][payload]`
//! — the same checksum discipline the WAL applies to journal records
//! ([`owte_core::wal::crc32`]), so a transport that flips bits is detected
//! at the receiver instead of being applied. The payload is the
//! serde-encoded [`Payload`].

use owte_core::wal::crc32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node's identity within one replication group (dense indices,
/// assigned at cluster construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The replication protocol, leader → follower and back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// Leader → follower: journal records to append. Doubles as the
    /// heartbeat/probe when `records` is empty.
    Append {
        /// The shipping leader's term; followers reject stale terms.
        term: u64,
        /// Raw WAL records `(global index, encoded JournalOp)`, contiguous
        /// and ascending, starting at the follower's expected next index.
        records: Vec<(u64, Vec<u8>)>,
        /// The leader's commit index (acked-prefix length), so followers
        /// can bound their staleness accounting.
        commit: u64,
    },
    /// Follower → leader: everything up to `next_index` is durably
    /// journaled locally. Carries the follower's term so a fenced leader
    /// learns it has been superseded.
    Ack {
        /// The follower's current term (≥ the Append's term on success).
        term: u64,
        /// The follower's journal length — the next record index it needs.
        next_index: u64,
    },
}

/// A framed message in flight between two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// The CRC-framed payload bytes (see [`frame`]).
    pub frame: Vec<u8>,
}

impl Envelope {
    /// Frame `payload` for the wire.
    pub fn new(from: NodeId, to: NodeId, payload: &Payload) -> Envelope {
        Envelope {
            from,
            to,
            frame: frame(payload),
        }
    }

    /// Decode and checksum-verify the payload.
    pub fn payload(&self) -> Result<Payload, FrameError> {
        unframe(&self.frame)
    }
}

/// Why a received frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header, or `len` exceeds the buffer.
    Truncated,
    /// The checksum over the payload does not match the header.
    Corrupt,
    /// The checksummed payload is not a valid encoded [`Payload`].
    Codec(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Corrupt => write!(f, "frame checksum mismatch"),
            FrameError::Codec(m) => write!(f, "frame payload undecodable: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode `payload` as `[len: u32][crc: u32][bytes]` (little-endian
/// header, CRC over the payload bytes).
pub fn frame(payload: &Payload) -> Vec<u8> {
    let body = serde_json::to_vec(payload).expect("payload serializes");
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&[&body]).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a frame produced by [`frame`], verifying length and checksum.
pub fn unframe(bytes: &[u8]) -> Result<Payload, FrameError> {
    if bytes.len() < 8 {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let Some(body) = bytes.get(8..8 + len) else {
        return Err(FrameError::Truncated);
    };
    if crc32(&[body]) != crc {
        return Err(FrameError::Corrupt);
    }
    serde_json::from_slice(body).map_err(|e| FrameError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Payload {
        Payload::Append {
            term: 3,
            records: vec![(7, b"rec".to_vec())],
            commit: 7,
        }
    }

    #[test]
    fn frame_roundtrips() {
        let p = sample();
        assert_eq!(unframe(&frame(&p)).unwrap(), p);
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut f = frame(&sample());
        for i in 0..f.len() {
            f[i] ^= 0x01;
            assert!(
                unframe(&f).is_err(),
                "flipping byte {i} must not decode cleanly"
            );
            f[i] ^= 0x01;
        }
        // Pristine again after undoing every flip.
        assert_eq!(unframe(&f).unwrap(), sample());
    }

    #[test]
    fn truncation_is_detected() {
        let f = frame(&sample());
        for cut in 0..f.len() {
            assert_eq!(unframe(&f[..cut]).ok(), None, "cut at {cut}");
        }
    }
}
