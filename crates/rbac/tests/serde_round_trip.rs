//! The monitor state must survive JSON serialization byte-faithfully —
//! the durable engine's snapshots depend on it.

use rbac::{RoleId, System};

#[test]
fn newtype_map_keys_round_trip_via_json() {
    // serde_json stringifies integer-newtype map keys; make sure the
    // round trip is lossless for the id types the monitor uses as keys.
    let mut m = std::collections::HashMap::new();
    m.insert(RoleId(3), "doctor".to_string());
    m.insert(RoleId(7), "nurse".to_string());
    let json = serde_json::to_string(&m).unwrap();
    let back: std::collections::HashMap<RoleId, String> = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}

#[test]
fn system_round_trips_via_json() {
    let mut s = System::new();
    let r = s.add_role("doctor").unwrap();
    let u = s.add_user("ann").unwrap();
    s.assign_user(u, r).unwrap();
    let op = s.add_operation("read").unwrap();
    let ob = s.add_object("chart").unwrap();
    s.grant_permission(r, op, ob).unwrap();
    let sess = s.create_session(u, &[r]).unwrap();

    let json = serde_json::to_string(&s).unwrap();
    let back: System = serde_json::from_str(&json).unwrap();
    assert_eq!(
        back.session_roles(sess).unwrap(),
        s.session_roles(sess).unwrap()
    );
    assert!(back.check_access(sess, op, ob).unwrap());
}
