//! Review functions (ANSI 359-2004 §6.1.2 / §6.2.2): the query side of the
//! functional specification. All are read-only.

use crate::error::Result;
use crate::ids::{ObjId, OpId, PermId, RoleId, SessionId, UserId};
use crate::system::{Permission, System};
use std::collections::BTreeSet;

impl System {
    /// `AssignedUsers(r)`: users directly assigned to `r`.
    pub fn assigned_users(&self, r: RoleId) -> Result<BTreeSet<UserId>> {
        Ok(self.role(r)?.users.clone())
    }

    /// `AssignedRoles(u)`: roles directly assigned to `u`.
    pub fn assigned_roles(&self, u: UserId) -> Result<BTreeSet<RoleId>> {
        Ok(self.user(u)?.roles.clone())
    }

    /// `RolePermissions(r)`: permissions granted to `r`, including those
    /// inherited from juniors.
    pub fn role_permissions(&self, r: RoleId) -> Result<BTreeSet<PermId>> {
        self.role_perms_closure(r)
    }

    /// Permissions granted *directly* to `r` (no inheritance).
    pub fn role_direct_permissions(&self, r: RoleId) -> Result<BTreeSet<PermId>> {
        Ok(self.role(r)?.perms.clone())
    }

    /// `UserPermissions(u)`: permissions of every role the user is
    /// authorized for.
    pub fn user_permissions(&self, u: UserId) -> Result<BTreeSet<PermId>> {
        let mut out = BTreeSet::new();
        for r in self.authorized_roles(u)? {
            out.extend(self.role(r)?.perms.iter().copied());
        }
        Ok(out)
    }

    /// `SessionRoles(s)`: the session's active role set.
    pub fn session_roles(&self, s: SessionId) -> Result<BTreeSet<RoleId>> {
        Ok(self.session(s)?.active.clone())
    }

    /// The user who owns session `s`.
    pub fn session_user(&self, s: SessionId) -> Result<UserId> {
        Ok(self.session(s)?.user)
    }

    /// Sessions currently owned by `u`.
    pub fn user_sessions(&self, u: UserId) -> Result<BTreeSet<SessionId>> {
        Ok(self.user(u)?.sessions.clone())
    }

    /// `SessionPermissions(s)`: permissions available through the session's
    /// active roles (with inheritance).
    pub fn session_permissions(&self, s: SessionId) -> Result<BTreeSet<PermId>> {
        let mut out = BTreeSet::new();
        for &r in &self.session(s)?.active {
            out.extend(self.role_perms_closure(r)?);
        }
        Ok(out)
    }

    /// `RoleOperationsOnObject(r, obj)`: operations `r` may perform on `obj`
    /// (with inheritance).
    pub fn role_operations_on_object(&self, r: RoleId, obj: ObjId) -> Result<BTreeSet<OpId>> {
        self.obj_name(obj)?;
        let mut out = BTreeSet::new();
        for p in self.role_perms_closure(r)? {
            if let Some(Permission { op, obj: o }) = self.perm(p) {
                if o == obj {
                    out.insert(op);
                }
            }
        }
        Ok(out)
    }

    /// `UserOperationsOnObject(u, obj)`: operations `u` could obtain on
    /// `obj` through any authorized role.
    pub fn user_operations_on_object(&self, u: UserId, obj: ObjId) -> Result<BTreeSet<OpId>> {
        self.obj_name(obj)?;
        let mut out = BTreeSet::new();
        for r in self.authorized_roles(u)? {
            out.extend(self.role_operations_on_object(r, obj)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn review_functions_cover_inheritance() {
        let mut s = System::new();
        let alice = s.add_user("alice").unwrap();
        let pm = s.add_role("PM").unwrap();
        let pc = s.add_descendant("PC", pm).unwrap();
        let read = s.add_operation("read").unwrap();
        let approve = s.add_operation("approve").unwrap();
        let po = s.add_object("purchase-order").unwrap();
        let p_read = s.grant_permission(pc, read, po).unwrap();
        let p_approve = s.grant_permission(pm, approve, po).unwrap();
        s.assign_user(alice, pm).unwrap();

        assert_eq!(s.assigned_roles(alice).unwrap(), [pm].into());
        assert_eq!(s.assigned_users(pm).unwrap(), [alice].into());
        assert_eq!(s.assigned_users(pc).unwrap(), BTreeSet::new());
        assert_eq!(s.authorized_users(pc).unwrap(), [alice].into());

        // PM inherits PC's read.
        assert_eq!(s.role_permissions(pm).unwrap(), [p_read, p_approve].into());
        assert_eq!(s.role_direct_permissions(pm).unwrap(), [p_approve].into());
        assert_eq!(s.role_permissions(pc).unwrap(), [p_read].into());

        // User permissions span all authorized roles.
        assert_eq!(
            s.user_permissions(alice).unwrap(),
            [p_read, p_approve].into()
        );

        let sess = s.create_session(alice, &[pm]).unwrap();
        assert_eq!(s.session_roles(sess).unwrap(), [pm].into());
        assert_eq!(s.session_user(sess).unwrap(), alice);
        assert_eq!(s.user_sessions(alice).unwrap(), [sess].into());
        assert_eq!(
            s.session_permissions(sess).unwrap(),
            [p_read, p_approve].into()
        );

        assert_eq!(
            s.role_operations_on_object(pm, po).unwrap(),
            [read, approve].into()
        );
        assert_eq!(s.role_operations_on_object(pc, po).unwrap(), [read].into());
        assert_eq!(
            s.user_operations_on_object(alice, po).unwrap(),
            [read, approve].into()
        );
    }
}
