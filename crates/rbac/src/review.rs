//! Review functions (ANSI 359-2004 §6.1.2 / §6.2.2): the query side of the
//! functional specification. All are read-only.

use crate::error::Result;
use crate::ids::{ObjId, OpId, PermId, RoleId, SessionId, UserId};
use crate::system::{Permission, System};
use std::collections::{BTreeSet, HashMap};

impl System {
    /// `AssignedUsers(r)`: users directly assigned to `r`.
    pub fn assigned_users(&self, r: RoleId) -> Result<BTreeSet<UserId>> {
        Ok(self.role(r)?.users.clone())
    }

    /// `AssignedRoles(u)`: roles directly assigned to `u`.
    pub fn assigned_roles(&self, u: UserId) -> Result<BTreeSet<RoleId>> {
        Ok(self.user(u)?.roles.clone())
    }

    /// `RolePermissions(r)`: permissions granted to `r`, including those
    /// inherited from juniors.
    pub fn role_permissions(&self, r: RoleId) -> Result<BTreeSet<PermId>> {
        self.role_perms_closure(r)
    }

    /// Permissions granted *directly* to `r` (no inheritance).
    pub fn role_direct_permissions(&self, r: RoleId) -> Result<BTreeSet<PermId>> {
        Ok(self.role(r)?.perms.clone())
    }

    /// Permission closures of every live role in one pass (role → direct
    /// permissions plus everything inherited from juniors). A single
    /// memoized walk over the junior DAG, so shared juniors are expanded
    /// once rather than once per senior — this is what a read-path
    /// snapshot captures instead of issuing per-role
    /// [`role_permissions`](Self::role_permissions) calls under the lock.
    pub fn all_role_perm_closures(&self) -> HashMap<RoleId, BTreeSet<PermId>> {
        let mut done: HashMap<RoleId, BTreeSet<PermId>> = HashMap::new();
        for start in self.all_roles() {
            if done.contains_key(&start) {
                continue;
            }
            // Iterative post-order: expand juniors first, then fold their
            // finished closures into the parent.
            let mut stack = vec![(start, false)];
            let mut on_stack: BTreeSet<RoleId> = BTreeSet::new();
            while let Some((r, expanded)) = stack.pop() {
                let Ok(rec) = self.role(r) else { continue };
                if expanded {
                    on_stack.remove(&r);
                    let mut acc = rec.perms.clone();
                    for j in &rec.juniors {
                        if let Some(c) = done.get(j) {
                            acc.extend(c.iter().copied());
                        }
                    }
                    done.insert(r, acc);
                } else if !done.contains_key(&r) && on_stack.insert(r) {
                    stack.push((r, true));
                    for &j in &rec.juniors {
                        if !done.contains_key(&j) && !on_stack.contains(&j) {
                            stack.push((j, false));
                        }
                    }
                }
            }
        }
        done
    }

    /// `UserPermissions(u)`: permissions of every role the user is
    /// authorized for.
    pub fn user_permissions(&self, u: UserId) -> Result<BTreeSet<PermId>> {
        let mut out = BTreeSet::new();
        for r in self.authorized_roles(u)? {
            out.extend(self.role(r)?.perms.iter().copied());
        }
        Ok(out)
    }

    /// `SessionRoles(s)`: the session's active role set.
    pub fn session_roles(&self, s: SessionId) -> Result<BTreeSet<RoleId>> {
        Ok(self.session(s)?.active.clone())
    }

    /// Borrow `u`'s direct assignment set without cloning (hot-path
    /// form of [`assigned_roles`](Self::assigned_roles)).
    pub fn assigned_roles_ref(&self, u: UserId) -> Result<&BTreeSet<RoleId>> {
        Ok(&self.user(u)?.roles)
    }

    /// Is `u` directly assigned to `r`? Allocation-free form of
    /// [`assigned_roles`](Self::assigned_roles)` + contains` for the
    /// enforcement hot path.
    pub fn is_assigned(&self, u: UserId, r: RoleId) -> Result<bool> {
        Ok(self.user(u)?.roles.contains(&r))
    }

    /// Is `r` active in session `s`? Allocation-free form of
    /// [`session_roles`](Self::session_roles)` + contains` for the
    /// enforcement hot path.
    pub fn is_active_in_session(&self, s: SessionId, r: RoleId) -> Result<bool> {
        Ok(self.session(s)?.active.contains(&r))
    }

    /// The user who owns session `s`.
    pub fn session_user(&self, s: SessionId) -> Result<UserId> {
        Ok(self.session(s)?.user)
    }

    /// Sessions currently owned by `u`.
    pub fn user_sessions(&self, u: UserId) -> Result<BTreeSet<SessionId>> {
        Ok(self.user(u)?.sessions.clone())
    }

    /// `SessionPermissions(s)`: permissions available through the session's
    /// active roles (with inheritance).
    pub fn session_permissions(&self, s: SessionId) -> Result<BTreeSet<PermId>> {
        let mut out = BTreeSet::new();
        for &r in &self.session(s)?.active {
            out.extend(self.role_perms_closure(r)?);
        }
        Ok(out)
    }

    /// `RoleOperationsOnObject(r, obj)`: operations `r` may perform on `obj`
    /// (with inheritance).
    pub fn role_operations_on_object(&self, r: RoleId, obj: ObjId) -> Result<BTreeSet<OpId>> {
        self.obj_name(obj)?;
        let mut out = BTreeSet::new();
        for p in self.role_perms_closure(r)? {
            if let Some(Permission { op, obj: o }) = self.perm(p) {
                if o == obj {
                    out.insert(op);
                }
            }
        }
        Ok(out)
    }

    /// `UserOperationsOnObject(u, obj)`: operations `u` could obtain on
    /// `obj` through any authorized role.
    pub fn user_operations_on_object(&self, u: UserId, obj: ObjId) -> Result<BTreeSet<OpId>> {
        self.obj_name(obj)?;
        let mut out = BTreeSet::new();
        for r in self.authorized_roles(u)? {
            out.extend(self.role_operations_on_object(r, obj)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn review_functions_cover_inheritance() {
        let mut s = System::new();
        let alice = s.add_user("alice").unwrap();
        let pm = s.add_role("PM").unwrap();
        let pc = s.add_descendant("PC", pm).unwrap();
        let read = s.add_operation("read").unwrap();
        let approve = s.add_operation("approve").unwrap();
        let po = s.add_object("purchase-order").unwrap();
        let p_read = s.grant_permission(pc, read, po).unwrap();
        let p_approve = s.grant_permission(pm, approve, po).unwrap();
        s.assign_user(alice, pm).unwrap();

        assert_eq!(s.assigned_roles(alice).unwrap(), [pm].into());
        assert_eq!(s.assigned_users(pm).unwrap(), [alice].into());
        assert_eq!(s.assigned_users(pc).unwrap(), BTreeSet::new());
        assert_eq!(s.authorized_users(pc).unwrap(), [alice].into());

        // PM inherits PC's read.
        assert_eq!(s.role_permissions(pm).unwrap(), [p_read, p_approve].into());
        assert_eq!(s.role_direct_permissions(pm).unwrap(), [p_approve].into());
        assert_eq!(s.role_permissions(pc).unwrap(), [p_read].into());

        // User permissions span all authorized roles.
        assert_eq!(
            s.user_permissions(alice).unwrap(),
            [p_read, p_approve].into()
        );

        assert!(s.is_assigned(alice, pm).unwrap());
        assert!(!s.is_assigned(alice, pc).unwrap());

        let sess = s.create_session(alice, &[pm]).unwrap();
        assert_eq!(s.session_roles(sess).unwrap(), [pm].into());
        assert!(s.is_active_in_session(sess, pm).unwrap());
        assert!(!s.is_active_in_session(sess, pc).unwrap());
        assert_eq!(s.session_user(sess).unwrap(), alice);
        assert_eq!(s.user_sessions(alice).unwrap(), [sess].into());
        assert_eq!(
            s.session_permissions(sess).unwrap(),
            [p_read, p_approve].into()
        );

        assert_eq!(
            s.role_operations_on_object(pm, po).unwrap(),
            [read, approve].into()
        );
        assert_eq!(s.role_operations_on_object(pc, po).unwrap(), [read].into());
        assert_eq!(
            s.user_operations_on_object(alice, po).unwrap(),
            [read, approve].into()
        );
    }

    #[test]
    fn bulk_closures_match_per_role_queries() {
        // Diamond: top inherits via two middles from one shared bottom.
        let mut s = System::new();
        let top = s.add_role("top").unwrap();
        let m1 = s.add_descendant("m1", top).unwrap();
        let m2 = s.add_descendant("m2", top).unwrap();
        let bottom = s.add_descendant("bottom", m1).unwrap();
        s.add_inheritance(m2, bottom).unwrap();
        let read = s.add_operation("read").unwrap();
        let doc = s.add_object("doc").unwrap();
        s.grant_permission(bottom, read, doc).unwrap();
        let memo = s.add_object("memo").unwrap();
        s.grant_permission(m1, read, memo).unwrap();

        let all = s.all_role_perm_closures();
        assert_eq!(all.len(), s.role_count());
        for r in s.all_roles() {
            assert_eq!(all[&r], s.role_permissions(r).unwrap(), "role {r:?}");
        }
    }
}
