//! Error type covering every failure mode of the RBAC functional
//! specification.

use crate::ids::{DsdId, ObjId, OpId, RoleId, SessionId, SsdId, UserId};
use std::fmt;

/// Result alias for RBAC operations.
pub type Result<T> = std::result::Result<T, RbacError>;

/// Why an administrative command, system function or review function was
/// rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RbacError {
    /// A name was registered twice (users, roles, operations, objects and
    /// constraint-set names are unique).
    DuplicateName(String),
    /// Unknown user id.
    NoSuchUser(UserId),
    /// Unknown role id.
    NoSuchRole(RoleId),
    /// Unknown session id.
    NoSuchSession(SessionId),
    /// Unknown operation id.
    NoSuchOp(OpId),
    /// Unknown object id.
    NoSuchObject(ObjId),
    /// Unknown SSD set.
    NoSuchSsdSet(SsdId),
    /// Unknown DSD set.
    NoSuchDsdSet(DsdId),
    /// Unknown name in a lookup.
    UnknownName(String),
    /// AssignUser on an existing assignment.
    AlreadyAssigned(UserId, RoleId),
    /// DeassignUser without an assignment.
    NotAssigned(UserId, RoleId),
    /// GrantPermission duplicate.
    AlreadyGranted(RoleId),
    /// RevokePermission without a grant.
    NotGranted(RoleId),
    /// Session operations by a user who does not own the session.
    NotSessionOwner(SessionId, UserId),
    /// AddActiveRole on an already-active role.
    RoleAlreadyActive(SessionId, RoleId),
    /// DropActiveRole on an inactive role.
    RoleNotActive(SessionId, RoleId),
    /// AddActiveRole by a user not authorized for the role.
    NotAuthorized(UserId, RoleId),
    /// Activation of a role that is currently disabled (temporal RBAC).
    RoleDisabled(RoleId),
    /// Assignment would violate a static separation-of-duty constraint.
    SsdViolation {
        /// The violated set.
        set: SsdId,
        /// The user being assigned.
        user: UserId,
        /// The role whose assignment failed.
        role: RoleId,
    },
    /// Activation would violate a dynamic separation-of-duty constraint.
    DsdViolation {
        /// The violated set.
        set: DsdId,
        /// The session in which activation failed.
        session: SessionId,
        /// The role whose activation failed.
        role: RoleId,
    },
    /// AddInheritance would create a cycle in the role hierarchy.
    HierarchyCycle(RoleId, RoleId),
    /// The edge already exists.
    InheritanceExists(RoleId, RoleId),
    /// DeleteInheritance on a missing edge.
    NoSuchInheritance(RoleId, RoleId),
    /// In a limited hierarchy a role may have at most one immediate senior.
    LimitedHierarchy(RoleId),
    /// AddInheritance would make some user's authorized roles violate SSD.
    SsdInheritanceConflict {
        /// The violated set.
        set: SsdId,
        /// A user whose authorized roles would violate it.
        user: UserId,
    },
    /// An SSD/DSD set needs 2 ≤ cardinality ≤ |roles|.
    BadCardinality {
        /// Requested cardinality.
        n: usize,
        /// Size of the role set.
        set_size: usize,
    },
    /// Creating an SSD set (or shrinking its cardinality) that existing
    /// assignments already violate.
    SsdUnsatisfied {
        /// The set being created/changed.
        set: SsdId,
        /// A violating user.
        user: UserId,
    },
    /// CheckAccess denial (not an error of the machinery — the reference
    /// monitor's "no" answer, reported by enforcement layers).
    AccessDenied {
        /// The requesting session.
        session: SessionId,
        /// The requested operation.
        op: OpId,
        /// The requested object.
        obj: ObjId,
    },
    /// Role activation cardinality exceeded (paper's Rule 4).
    CardinalityExceeded {
        /// The saturated role.
        role: RoleId,
        /// The configured bound.
        max: usize,
    },
}

impl fmt::Display for RbacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use RbacError::*;
        match self {
            DuplicateName(n) => write!(f, "name {n:?} already in use"),
            NoSuchUser(u) => write!(f, "no such user {u}"),
            NoSuchRole(r) => write!(f, "no such role {r}"),
            NoSuchSession(s) => write!(f, "no such session {s}"),
            NoSuchOp(o) => write!(f, "no such operation {o}"),
            NoSuchObject(o) => write!(f, "no such object {o}"),
            NoSuchSsdSet(s) => write!(f, "no such SSD set {s}"),
            NoSuchDsdSet(s) => write!(f, "no such DSD set {s}"),
            UnknownName(n) => write!(f, "unknown name {n:?}"),
            AlreadyAssigned(u, r) => write!(f, "user {u} already assigned to role {r}"),
            NotAssigned(u, r) => write!(f, "user {u} is not assigned to role {r}"),
            AlreadyGranted(r) => write!(f, "permission already granted to role {r}"),
            NotGranted(r) => write!(f, "permission not granted to role {r}"),
            NotSessionOwner(s, u) => write!(f, "session {s} is not owned by user {u}"),
            RoleAlreadyActive(s, r) => write!(f, "role {r} already active in session {s}"),
            RoleNotActive(s, r) => write!(f, "role {r} not active in session {s}"),
            NotAuthorized(u, r) => write!(f, "user {u} is not authorized for role {r}"),
            RoleDisabled(r) => write!(f, "role {r} is disabled"),
            SsdViolation { set, user, role } => {
                write!(f, "assigning {user} to {role} violates SSD set {set}")
            }
            DsdViolation { set, session, role } => {
                write!(f, "activating {role} in {session} violates DSD set {set}")
            }
            HierarchyCycle(a, b) => write!(f, "inheritance {a} ⪰ {b} would create a cycle"),
            InheritanceExists(a, b) => write!(f, "inheritance {a} ⪰ {b} already exists"),
            NoSuchInheritance(a, b) => write!(f, "no inheritance {a} ⪰ {b}"),
            LimitedHierarchy(r) => {
                write!(
                    f,
                    "role {r} already has an immediate senior (limited hierarchy)"
                )
            }
            SsdInheritanceConflict { set, user } => {
                write!(f, "inheritance would violate SSD set {set} for user {user}")
            }
            BadCardinality { n, set_size } => {
                write!(
                    f,
                    "cardinality {n} invalid for a role set of size {set_size}"
                )
            }
            SsdUnsatisfied { set, user } => {
                write!(
                    f,
                    "existing assignments of user {user} violate SSD set {set}"
                )
            }
            AccessDenied { session, op, obj } => {
                write!(f, "session {session} denied {op} on {obj}")
            }
            CardinalityExceeded { role, max } => {
                write!(f, "role {role} activation cardinality {max} exceeded")
            }
        }
    }
}

impl std::error::Error for RbacError {}
