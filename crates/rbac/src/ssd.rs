//! Static Separation of Duty (ANSI 359-2004 §6.3).
//!
//! An SSD constraint is a pair (role set RS, cardinality n): no user may be
//! *authorized* for n or more roles from RS. With role hierarchies the
//! authorized set (assignments plus inherited memberships) is constrained,
//! so a user assigned to PM inherits PC's conflicts — exactly the paper's
//! enterprise-XYZ scenario.

use crate::error::{RbacError, Result};
use crate::ids::{RoleId, SsdId, UserId};
use crate::system::{SodSet, System};
use std::collections::BTreeSet;

impl System {
    /// `CreateSsdSet`: create a named SSD constraint over `roles` with
    /// cardinality `n` (a user may hold at most `n - 1` of them).
    ///
    /// Rejected when existing assignments already violate it.
    pub fn create_ssd_set(&mut self, name: &str, roles: &[RoleId], n: usize) -> Result<SsdId> {
        if self.ssd_names.contains_key(name) {
            return Err(RbacError::DuplicateName(name.to_string()));
        }
        let roles: BTreeSet<RoleId> = roles.iter().copied().collect();
        for &r in &roles {
            self.role(r)?;
        }
        if n < 2 || n > roles.len() {
            return Err(RbacError::BadCardinality {
                n,
                set_size: roles.len(),
            });
        }
        let id = SsdId(u32::try_from(self.ssd.len()).expect("ssd count fits u32"));
        // Pre-check existing users.
        for u in self.all_users().collect::<Vec<_>>() {
            let authorized = self.authorized_roles(u)?;
            if authorized.intersection(&roles).count() >= n {
                return Err(RbacError::SsdUnsatisfied { set: id, user: u });
            }
        }
        self.ssd.push(Some(SodSet {
            name: name.to_string(),
            roles,
            n,
        }));
        self.ssd_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// `DeleteSsdSet`.
    pub fn delete_ssd_set(&mut self, id: SsdId) -> Result<()> {
        let set = self
            .ssd
            .get_mut(id.index())
            .and_then(Option::take)
            .ok_or(RbacError::NoSuchSsdSet(id))?;
        self.ssd_names.remove(&set.name);
        Ok(())
    }

    /// `AddSsdRoleMember`: grow the role set of an SSD constraint.
    pub fn add_ssd_role_member(&mut self, id: SsdId, r: RoleId) -> Result<()> {
        self.role(r)?;
        let set = self.ssd_set(id)?.clone();
        let mut roles = set.roles.clone();
        roles.insert(r);
        // Re-validate with the grown set.
        for u in self.all_users().collect::<Vec<_>>() {
            let authorized = self.authorized_roles(u)?;
            if authorized.intersection(&roles).count() >= set.n {
                return Err(RbacError::SsdUnsatisfied { set: id, user: u });
            }
        }
        self.ssd_mut(id)?.roles = roles;
        Ok(())
    }

    /// `DeleteSsdRoleMember`: shrink the role set (must stay ≥ cardinality).
    pub fn delete_ssd_role_member(&mut self, id: SsdId, r: RoleId) -> Result<()> {
        let set = self.ssd_set(id)?;
        if !set.roles.contains(&r) {
            return Err(RbacError::NoSuchRole(r));
        }
        if set.roles.len() - 1 < set.n {
            return Err(RbacError::BadCardinality {
                n: set.n,
                set_size: set.roles.len() - 1,
            });
        }
        self.ssd_mut(id)?.roles.remove(&r);
        Ok(())
    }

    /// `SetSsdSetCardinality`.
    pub fn set_ssd_cardinality(&mut self, id: SsdId, n: usize) -> Result<()> {
        let set = self.ssd_set(id)?.clone();
        if n < 2 || n > set.roles.len() {
            return Err(RbacError::BadCardinality {
                n,
                set_size: set.roles.len(),
            });
        }
        for u in self.all_users().collect::<Vec<_>>() {
            let authorized = self.authorized_roles(u)?;
            if authorized.intersection(&set.roles).count() >= n {
                return Err(RbacError::SsdUnsatisfied { set: id, user: u });
            }
        }
        self.ssd_mut(id)?.n = n;
        Ok(())
    }

    /// `SsdRoleSets` review: name, roles and cardinality of a set.
    pub fn ssd_set_info(&self, id: SsdId) -> Result<(String, BTreeSet<RoleId>, usize)> {
        let s = self.ssd_set(id)?;
        Ok((s.name.clone(), s.roles.clone(), s.n))
    }

    /// Resolve an SSD set by name.
    pub fn ssd_by_name(&self, name: &str) -> Result<SsdId> {
        self.ssd_names
            .get(name)
            .copied()
            .ok_or_else(|| RbacError::UnknownName(name.to_string()))
    }

    /// Would assigning `u` to `r` violate any SSD set? (Takes hierarchies
    /// into account: the user also gains `r`'s juniors.)
    pub fn check_ssd_assign(&self, u: UserId, r: RoleId) -> Result<()> {
        let mut prospective = self.authorized_roles(u)?;
        prospective.insert(r);
        prospective.extend(self.juniors_closure(r)?);
        for id in self.all_ssd_sets() {
            let set = self.ssd_set(id)?;
            if prospective.intersection(&set.roles).count() >= set.n {
                return Err(RbacError::SsdViolation {
                    set: id,
                    user: u,
                    role: r,
                });
            }
        }
        Ok(())
    }

    /// Verify every user satisfies every SSD set (used when hierarchy edges
    /// change). Returns the first violation.
    pub(crate) fn check_all_users_ssd(&self) -> Result<()> {
        for u in self.all_users() {
            let authorized = self.authorized_roles(u)?;
            for id in self.all_ssd_sets() {
                let set = self.ssd_set(id)?;
                if authorized.intersection(&set.roles).count() >= set.n {
                    return Err(RbacError::SsdInheritanceConflict { set: id, user: u });
                }
            }
        }
        Ok(())
    }

    /// Does the role participate in any SSD set? (Rule-variant selection.)
    pub fn in_ssd(&self, r: RoleId) -> Result<bool> {
        self.role(r)?;
        Ok(self.ssd.iter().flatten().any(|s| s.roles.contains(&r)))
    }

    pub(crate) fn ssd_set(&self, id: SsdId) -> Result<&SodSet> {
        self.ssd
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(RbacError::NoSuchSsdSet(id))
    }

    fn ssd_mut(&mut self, id: SsdId) -> Result<&mut SodSet> {
        self.ssd
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(RbacError::NoSuchSsdSet(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (System, UserId, RoleId, RoleId) {
        let mut s = System::new();
        let u = s.add_user("u").unwrap();
        let pc = s.add_role("PC").unwrap();
        let ac = s.add_role("AC").unwrap();
        s.create_ssd_set("purchase-approve", &[pc, ac], 2).unwrap();
        (s, u, pc, ac)
    }

    #[test]
    fn ssd_blocks_conflicting_assignment() {
        let (mut s, u, pc, ac) = base();
        s.assign_user(u, pc).unwrap();
        assert!(matches!(
            s.assign_user(u, ac),
            Err(RbacError::SsdViolation { .. })
        ));
        // Deassign lifts the conflict.
        s.deassign_user(u, pc).unwrap();
        s.assign_user(u, ac).unwrap();
    }

    #[test]
    fn ssd_with_hierarchy_inherits_conflicts() {
        let (mut s, u, pc, ac) = base();
        // PM ⪰ PC: a user assigned to PM is authorized for PC, so PM also
        // conflicts with AC (the paper's XYZ scenario).
        let pm = s.add_ascendant("PM", pc).unwrap();
        s.assign_user(u, pm).unwrap();
        assert!(matches!(
            s.assign_user(u, ac),
            Err(RbacError::SsdViolation { .. })
        ));
        // And the reverse order: assigned AC first, then PM (which brings PC).
        let v = s.add_user("v").unwrap();
        s.assign_user(v, ac).unwrap();
        assert!(matches!(
            s.assign_user(v, pm),
            Err(RbacError::SsdViolation { .. })
        ));
    }

    #[test]
    fn inheritance_that_breaks_ssd_rejected() {
        let (mut s, u, pc, ac) = base();
        let pm = s.add_role("PM").unwrap();
        s.assign_user(u, pm).unwrap();
        s.assign_user(u, ac).unwrap();
        // PM ⪰ PC would authorize u for both PC and AC.
        assert!(matches!(
            s.add_inheritance(pm, pc),
            Err(RbacError::SsdInheritanceConflict { .. })
        ));
        // The failed attempt must not leave the edge behind.
        assert!(!s.dominates(pm, pc).unwrap());
    }

    #[test]
    fn create_rejects_existing_violation() {
        let mut s = System::new();
        let u = s.add_user("u").unwrap();
        let a = s.add_role("a").unwrap();
        let b = s.add_role("b").unwrap();
        s.assign_user(u, a).unwrap();
        s.assign_user(u, b).unwrap();
        assert!(matches!(
            s.create_ssd_set("ab", &[a, b], 2),
            Err(RbacError::SsdUnsatisfied { .. })
        ));
    }

    #[test]
    fn cardinality_bounds() {
        let mut s = System::new();
        let a = s.add_role("a").unwrap();
        let b = s.add_role("b").unwrap();
        let c = s.add_role("c").unwrap();
        assert!(matches!(
            s.create_ssd_set("x", &[a, b], 1),
            Err(RbacError::BadCardinality { .. })
        ));
        assert!(matches!(
            s.create_ssd_set("x", &[a, b], 3),
            Err(RbacError::BadCardinality { .. })
        ));
        // n = 2 of 3: any two conflict.
        let id = s.create_ssd_set("x", &[a, b, c], 2).unwrap();
        let u = s.add_user("u").unwrap();
        s.assign_user(u, a).unwrap();
        assert!(s.assign_user(u, b).is_err());
        assert!(s.assign_user(u, c).is_err());
        // Raising cardinality to 3 allows two-of-three.
        s.set_ssd_cardinality(id, 3).unwrap();
        s.assign_user(u, b).unwrap();
        assert!(s.assign_user(u, c).is_err());
    }

    #[test]
    fn membership_changes() {
        let (mut s, u, pc, ac) = base();
        let id = s.ssd_by_name("purchase-approve").unwrap();
        let extra = s.add_role("extra").unwrap();
        s.add_ssd_role_member(id, extra).unwrap();
        s.assign_user(u, pc).unwrap();
        assert!(s.assign_user(u, extra).is_err());
        // Removing would leave 2 roles with n=2: allowed (2 ≥ n).
        s.delete_ssd_role_member(id, extra).unwrap();
        // Removing another would leave 1 < n: rejected.
        assert!(matches!(
            s.delete_ssd_role_member(id, ac),
            Err(RbacError::BadCardinality { .. })
        ));
        s.assign_user(u, extra).unwrap();
    }

    #[test]
    fn delete_set_lifts_constraint() {
        let (mut s, u, pc, ac) = base();
        let id = s.ssd_by_name("purchase-approve").unwrap();
        s.assign_user(u, pc).unwrap();
        s.delete_ssd_set(id).unwrap();
        s.assign_user(u, ac).unwrap();
        assert!(s.ssd_by_name("purchase-approve").is_err());
    }

    #[test]
    fn in_ssd_flag() {
        let (s, _, pc, _) = base();
        assert!(s.in_ssd(pc).unwrap());
        let mut s2 = System::new();
        let lone = s2.add_role("lone").unwrap();
        assert!(!s2.in_ssd(lone).unwrap());
    }
}
