//! # rbac — a reference implementation of the ANSI INCITS 359-2004 standard
//!
//! This crate is the *substrate* the paper's OWTE rules enforce: the NIST
//! RBAC standard's four components (§2 of the paper), exposed as the
//! standard's functional specification.
//!
//! * **Core RBAC** — USERS/ROLES/OPS/OBS/PRMS/SESSIONS, UA and PA,
//!   administrative commands (`add_user`, `assign_user`, `grant_permission`,
//!   …), supporting system functions (`create_session`, `add_active_role`,
//!   `check_access`, …).
//! * **Hierarchical RBAC** — general and limited hierarchies; seniors
//!   acquire junior permissions, juniors acquire senior user membership.
//! * **Static SoD** — named (role-set, cardinality) constraints on user
//!   assignment, hierarchy-aware.
//! * **Dynamic SoD** — named (role-set, cardinality) constraints on the
//!   per-session active role set (the N-of-M rule in the paper's §2).
//!
//! The monitor is passive and purely in-memory: perfect both as the state
//! machine behind the rule-driven engine (`owte-core`) and as the
//! conventional, hard-coded baseline the paper argues against.
//!
//! ```
//! use rbac::System;
//!
//! let mut s = System::new();
//! let bob = s.add_user("bob").unwrap();
//! let clerk = s.add_role("clerk").unwrap();
//! let read = s.add_operation("read").unwrap();
//! let ledger = s.add_object("ledger").unwrap();
//! s.assign_user(bob, clerk).unwrap();
//! s.grant_permission(clerk, read, ledger).unwrap();
//!
//! let session = s.create_session(bob, &[clerk]).unwrap();
//! assert!(s.check_access(session, read, ledger).unwrap());
//! ```

#![warn(missing_docs)]

pub mod core;
pub mod dsd;
pub mod error;
pub mod hierarchy;
pub mod ids;
pub mod review;
pub mod ssd;
pub mod system;

pub use error::{RbacError, Result};
pub use ids::{DsdId, ObjId, OpId, PermId, RoleId, SessionId, SsdId, UserId};
pub use system::{HierarchyKind, Permission, System};
