//! Core RBAC: administrative commands and supporting system functions
//! (ANSI 359-2004 §6.1), plus role enabling/disabling and activation caps
//! used by the temporal extension and the paper's cardinality rules.

use crate::error::{RbacError, Result};
use crate::ids::{ObjId, OpId, PermId, RoleId, SessionId, UserId};
use crate::system::{RoleRec, SessionRec, System, UserRec};
use std::collections::BTreeSet;

impl System {
    // ---- administrative commands: users --------------------------------------

    /// `AddUser`: create a user.
    pub fn add_user(&mut self, name: &str) -> Result<UserId> {
        if self.user_names.contains_key(name) {
            return Err(RbacError::DuplicateName(name.to_string()));
        }
        let id = UserId(u32::try_from(self.users.len()).expect("user count fits u32"));
        self.users.push(Some(UserRec {
            name: name.to_string(),
            roles: BTreeSet::new(),
            sessions: BTreeSet::new(),
            max_active_roles: None,
        }));
        self.user_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// `DeleteUser`: remove a user, closing their sessions and deassigning
    /// their roles.
    pub fn delete_user(&mut self, u: UserId) -> Result<()> {
        let rec = self.user(u)?.clone();
        for s in rec.sessions {
            self.delete_session_internal(s);
        }
        for r in rec.roles {
            if let Ok(role) = self.role_mut(r) {
                role.users.remove(&u);
            }
        }
        self.user_names.remove(&rec.name);
        self.users[u.index()] = None;
        Ok(())
    }

    // ---- administrative commands: roles ---------------------------------------

    /// `AddRole`: create a role (enabled by default).
    pub fn add_role(&mut self, name: &str) -> Result<RoleId> {
        if self.role_names.contains_key(name) {
            return Err(RbacError::DuplicateName(name.to_string()));
        }
        let id = RoleId(u32::try_from(self.roles.len()).expect("role count fits u32"));
        self.roles.push(Some(RoleRec {
            name: name.to_string(),
            users: BTreeSet::new(),
            perms: BTreeSet::new(),
            seniors: BTreeSet::new(),
            juniors: BTreeSet::new(),
            enabled: true,
            activation_cap: None,
        }));
        self.role_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// `DeleteRole`: remove a role, deactivating it everywhere, deassigning
    /// users, dropping grants, hierarchy edges and SoD memberships.
    pub fn delete_role(&mut self, r: RoleId) -> Result<()> {
        let rec = self.role(r)?.clone();
        // Deactivate in every session.
        for s in self.all_sessions().collect::<Vec<_>>() {
            if let Some(sess) = self.sessions[s.index()].as_mut() {
                sess.active.remove(&r);
            }
        }
        for u in rec.users {
            if let Ok(user) = self.user_mut(u) {
                user.roles.remove(&r);
            }
        }
        for senior in rec.seniors {
            if let Ok(sr) = self.role_mut(senior) {
                sr.juniors.remove(&r);
            }
        }
        for junior in rec.juniors {
            if let Ok(jr) = self.role_mut(junior) {
                jr.seniors.remove(&r);
            }
        }
        for set in self.ssd.iter_mut().flatten() {
            set.roles.remove(&r);
        }
        for set in self.dsd.iter_mut().flatten() {
            set.roles.remove(&r);
        }
        self.role_names.remove(&rec.name);
        self.roles[r.index()] = None;
        Ok(())
    }

    // ---- operations and objects ------------------------------------------------

    /// Register an operation (read, write, approve, …).
    pub fn add_operation(&mut self, name: &str) -> Result<OpId> {
        if self.op_names.contains_key(name) {
            return Err(RbacError::DuplicateName(name.to_string()));
        }
        let id = OpId(u32::try_from(self.ops.len()).expect("op count fits u32"));
        self.ops.push(name.to_string());
        self.op_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Register a protected object.
    pub fn add_object(&mut self, name: &str) -> Result<ObjId> {
        if self.obj_names.contains_key(name) {
            return Err(RbacError::DuplicateName(name.to_string()));
        }
        let id = ObjId(u32::try_from(self.objs.len()).expect("obj count fits u32"));
        self.objs.push(name.to_string());
        self.obj_names.insert(name.to_string(), id);
        Ok(id)
    }

    // ---- UA: user-role assignment -----------------------------------------------

    /// `AssignUser`: add (u, r) to UA, subject to SSD constraints.
    pub fn assign_user(&mut self, u: UserId, r: RoleId) -> Result<()> {
        self.user(u)?;
        self.role(r)?;
        if self.user(u)?.roles.contains(&r) {
            return Err(RbacError::AlreadyAssigned(u, r));
        }
        self.check_ssd_assign(u, r)?;
        self.user_mut(u)?.roles.insert(r);
        self.role_mut(r)?.users.insert(u);
        Ok(())
    }

    /// `DeassignUser`: remove (u, r) from UA; the role (and any of its
    /// juniors whose authorization derived solely from it) is deactivated in
    /// the user's sessions if no longer authorized.
    pub fn deassign_user(&mut self, u: UserId, r: RoleId) -> Result<()> {
        self.user(u)?;
        self.role(r)?;
        if !self.user(u)?.roles.contains(&r) {
            return Err(RbacError::NotAssigned(u, r));
        }
        self.user_mut(u)?.roles.remove(&r);
        self.role_mut(r)?.users.remove(&u);
        // Deactivate roles the user is no longer authorized for.
        let authorized = self.authorized_roles(u)?;
        let sessions: Vec<SessionId> = self.user(u)?.sessions.iter().copied().collect();
        for s in sessions {
            if let Some(sess) = self.sessions[s.index()].as_mut() {
                sess.active.retain(|role| authorized.contains(role));
            }
        }
        Ok(())
    }

    // ---- PA: permission-role assignment --------------------------------------------

    /// `GrantPermission`: grant (op, obj) to a role.
    pub fn grant_permission(&mut self, r: RoleId, op: OpId, obj: ObjId) -> Result<PermId> {
        self.role(r)?;
        let p = self.perm_id(op, obj)?;
        if !self.role_mut(r)?.perms.insert(p) {
            return Err(RbacError::AlreadyGranted(r));
        }
        Ok(p)
    }

    /// `RevokePermission`: revoke (op, obj) from a role.
    pub fn revoke_permission(&mut self, r: RoleId, op: OpId, obj: ObjId) -> Result<()> {
        self.role(r)?;
        let p = self.find_perm(op, obj).ok_or(RbacError::NotGranted(r))?;
        if !self.role_mut(r)?.perms.remove(&p) {
            return Err(RbacError::NotGranted(r));
        }
        Ok(())
    }

    // ---- sessions ------------------------------------------------------------------

    /// `CreateSession`: open a session for `u` with an initial set of active
    /// roles (each must be authorized, enabled, and jointly DSD-consistent).
    pub fn create_session(&mut self, u: UserId, initial: &[RoleId]) -> Result<SessionId> {
        self.user(u)?;
        let id = SessionId(u32::try_from(self.sessions.len()).expect("session count fits u32"));
        self.sessions.push(Some(SessionRec {
            user: u,
            active: BTreeSet::new(),
        }));
        self.user_mut(u)?.sessions.insert(id);
        for &r in initial {
            if let Err(e) = self.add_active_role(u, id, r) {
                // Roll the session back so failed creation has no effect.
                self.delete_session_internal(id);
                return Err(e);
            }
        }
        Ok(id)
    }

    /// `DeleteSession`: close a session owned by `u`.
    pub fn delete_session(&mut self, u: UserId, s: SessionId) -> Result<()> {
        let sess = self.session(s)?;
        if sess.user != u {
            return Err(RbacError::NotSessionOwner(s, u));
        }
        self.delete_session_internal(s);
        Ok(())
    }

    pub(crate) fn delete_session_internal(&mut self, s: SessionId) {
        if let Some(sess) = self.sessions.get_mut(s.index()).and_then(Option::take) {
            if let Some(user) = self
                .users
                .get_mut(sess.user.index())
                .and_then(Option::as_mut)
            {
                user.sessions.remove(&s);
            }
        }
    }

    /// `AddActiveRole`: activate `r` in session `s` of user `u`.
    ///
    /// Checks, in order (mirroring the paper's AAR rule conditions):
    /// user exists ∧ session exists ∧ session owned by user ∧ role not
    /// already active ∧ user authorized (assigned, or assigned to a senior)
    /// ∧ role enabled ∧ DSD sets satisfied ∧ (optionally) activation caps.
    pub fn add_active_role(&mut self, u: UserId, s: SessionId, r: RoleId) -> Result<()> {
        self.user(u)?;
        self.role(r)?;
        let sess = self.session(s)?;
        if sess.user != u {
            return Err(RbacError::NotSessionOwner(s, u));
        }
        if sess.active.contains(&r) {
            return Err(RbacError::RoleAlreadyActive(s, r));
        }
        if !self.is_authorized(u, r)? {
            return Err(RbacError::NotAuthorized(u, r));
        }
        if !self.role(r)?.enabled {
            return Err(RbacError::RoleDisabled(r));
        }
        self.check_dsd_activate(s, r)?;
        if self.enforce_caps {
            self.check_caps(u, s, r)?;
        }
        self.session_mut(s)?.active.insert(r);
        Ok(())
    }

    /// `DropActiveRole`: deactivate `r` in session `s` of user `u`.
    pub fn drop_active_role(&mut self, u: UserId, s: SessionId, r: RoleId) -> Result<()> {
        let sess = self.session(s)?;
        if sess.user != u {
            return Err(RbacError::NotSessionOwner(s, u));
        }
        if !self.session_mut(s)?.active.remove(&r) {
            return Err(RbacError::RoleNotActive(s, r));
        }
        Ok(())
    }

    /// `CheckAccess`: may session `s` perform `op` on `obj`? True iff some
    /// active role of the session (or one of its juniors, via inheritance)
    /// holds the permission.
    pub fn check_access(&self, s: SessionId, op: OpId, obj: ObjId) -> Result<bool> {
        let sess = self.session(s)?;
        let Some(p) = self.find_perm(op, obj) else {
            return Ok(false);
        };
        for &r in &sess.active {
            if self.role_has_perm_closure(r, p)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    // ---- role enabling (temporal substrate) ---------------------------------------

    /// Is the role currently enabled?
    pub fn is_enabled(&self, r: RoleId) -> Result<bool> {
        Ok(self.role(r)?.enabled)
    }

    /// Enable a role (GTRBAC role-status event).
    pub fn enable_role(&mut self, r: RoleId) -> Result<()> {
        self.role_mut(r)?.enabled = true;
        Ok(())
    }

    /// Disable a role. When `deactivate` is set, the role is also dropped
    /// from every session; the affected sessions are returned so enforcement
    /// layers can react (alert, cascade, …).
    pub fn disable_role(&mut self, r: RoleId, deactivate: bool) -> Result<Vec<SessionId>> {
        self.role_mut(r)?.enabled = false;
        let mut affected = Vec::new();
        if deactivate {
            for s in self.all_sessions().collect::<Vec<_>>() {
                if let Some(sess) = self.sessions[s.index()].as_mut() {
                    if sess.active.remove(&r) {
                        affected.push(s);
                    }
                }
            }
        }
        Ok(affected)
    }

    // ---- activation caps (paper Rule 4) ---------------------------------------------

    /// Bound the number of distinct users that may be active in `r` at once.
    pub fn set_role_activation_cap(&mut self, r: RoleId, cap: Option<usize>) -> Result<()> {
        self.role_mut(r)?.activation_cap = cap;
        Ok(())
    }

    /// The configured cap for `r`.
    pub fn role_activation_cap(&self, r: RoleId) -> Result<Option<usize>> {
        Ok(self.role(r)?.activation_cap)
    }

    /// Bound the number of roles `u` may have active at once (across all of
    /// their sessions; the paper's scenario 1, "Jane ≤ 5 active roles").
    pub fn set_user_active_role_cap(&mut self, u: UserId, cap: Option<usize>) -> Result<()> {
        self.user_mut(u)?.max_active_roles = cap;
        Ok(())
    }

    /// The configured cap for `u`.
    pub fn user_active_role_cap(&self, u: UserId) -> Result<Option<usize>> {
        Ok(self.user(u)?.max_active_roles)
    }

    /// Distinct users with `r` active in at least one session.
    pub fn active_users_of_role(&self, r: RoleId) -> Result<usize> {
        self.role(r)?;
        let mut users = BTreeSet::new();
        for sess in self.sessions.iter().flatten() {
            if sess.active.contains(&r) {
                users.insert(sess.user);
            }
        }
        Ok(users.len())
    }

    /// Distinct roles `u` has active across all their sessions.
    pub fn active_roles_of_user(&self, u: UserId) -> Result<BTreeSet<RoleId>> {
        let rec = self.user(u)?;
        let mut roles = BTreeSet::new();
        for &s in &rec.sessions {
            if let Ok(sess) = self.session(s) {
                roles.extend(sess.active.iter().copied());
            }
        }
        Ok(roles)
    }

    fn check_caps(&self, u: UserId, _s: SessionId, r: RoleId) -> Result<()> {
        if let Some(max) = self.role(r)?.activation_cap {
            // The activating user may already be active in the role in
            // another session; only *new* users count against the cap.
            let mut users = BTreeSet::new();
            for sess in self.sessions.iter().flatten() {
                if sess.active.contains(&r) {
                    users.insert(sess.user);
                }
            }
            if !users.contains(&u) && users.len() >= max {
                return Err(RbacError::CardinalityExceeded { role: r, max });
            }
        }
        if let Some(max) = self.user(u)?.max_active_roles {
            let active = self.active_roles_of_user(u)?;
            if !active.contains(&r) && active.len() >= max {
                return Err(RbacError::CardinalityExceeded { role: r, max });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> System {
        System::new()
    }

    /// A tiny world: bob assigned to "clerk" which may read "ledger".
    fn small_world() -> (System, UserId, RoleId, OpId, ObjId) {
        let mut s = sys();
        let bob = s.add_user("bob").unwrap();
        let clerk = s.add_role("clerk").unwrap();
        let read = s.add_operation("read").unwrap();
        let ledger = s.add_object("ledger").unwrap();
        s.assign_user(bob, clerk).unwrap();
        s.grant_permission(clerk, read, ledger).unwrap();
        (s, bob, clerk, read, ledger)
    }

    #[test]
    fn add_and_lookup_entities() {
        let mut s = sys();
        let u = s.add_user("jane").unwrap();
        assert_eq!(s.user_by_name("jane").unwrap(), u);
        assert_eq!(s.user_name(u).unwrap(), "jane");
        assert!(s.add_user("jane").is_err(), "duplicate names rejected");
        assert!(s.user_by_name("nope").is_err());
        assert_eq!(s.user_count(), 1);
    }

    #[test]
    fn assign_and_deassign() {
        let (mut s, bob, clerk, _, _) = small_world();
        assert!(matches!(
            s.assign_user(bob, clerk),
            Err(RbacError::AlreadyAssigned(_, _))
        ));
        s.deassign_user(bob, clerk).unwrap();
        assert!(matches!(
            s.deassign_user(bob, clerk),
            Err(RbacError::NotAssigned(_, _))
        ));
    }

    #[test]
    fn grant_and_revoke() {
        let (mut s, _, clerk, read, ledger) = small_world();
        assert!(matches!(
            s.grant_permission(clerk, read, ledger),
            Err(RbacError::AlreadyGranted(_))
        ));
        s.revoke_permission(clerk, read, ledger).unwrap();
        assert!(matches!(
            s.revoke_permission(clerk, read, ledger),
            Err(RbacError::NotGranted(_))
        ));
    }

    #[test]
    fn session_lifecycle_and_check_access() {
        let (mut s, bob, clerk, read, ledger) = small_world();
        let sess = s.create_session(bob, &[clerk]).unwrap();
        assert!(s.check_access(sess, read, ledger).unwrap());
        s.drop_active_role(bob, sess, clerk).unwrap();
        assert!(!s.check_access(sess, read, ledger).unwrap());
        s.add_active_role(bob, sess, clerk).unwrap();
        assert!(matches!(
            s.add_active_role(bob, sess, clerk),
            Err(RbacError::RoleAlreadyActive(_, _))
        ));
        s.delete_session(bob, sess).unwrap();
        assert!(s.check_access(sess, read, ledger).is_err());
    }

    #[test]
    fn activation_requires_assignment() {
        let (mut s, bob, _, _, _) = small_world();
        let other = s.add_role("approver").unwrap();
        let sess = s.create_session(bob, &[]).unwrap();
        assert!(matches!(
            s.add_active_role(bob, sess, other),
            Err(RbacError::NotAuthorized(_, _))
        ));
    }

    #[test]
    fn session_ownership_enforced() {
        let (mut s, bob, clerk, _, _) = small_world();
        let eve = s.add_user("eve").unwrap();
        let sess = s.create_session(bob, &[]).unwrap();
        assert!(matches!(
            s.add_active_role(eve, sess, clerk),
            Err(RbacError::NotSessionOwner(_, _))
        ));
        assert!(matches!(
            s.delete_session(eve, sess),
            Err(RbacError::NotSessionOwner(_, _))
        ));
    }

    #[test]
    fn create_session_rolls_back_on_failure() {
        let (mut s, bob, clerk, _, _) = small_world();
        let approver = s.add_role("approver").unwrap();
        let before = s.session_count();
        assert!(s.create_session(bob, &[clerk, approver]).is_err());
        assert_eq!(s.session_count(), before, "failed create leaves no session");
    }

    #[test]
    fn disabled_role_cannot_activate() {
        let (mut s, bob, clerk, _, _) = small_world();
        s.disable_role(clerk, false).unwrap();
        let sess = s.create_session(bob, &[]).unwrap();
        assert!(matches!(
            s.add_active_role(bob, sess, clerk),
            Err(RbacError::RoleDisabled(_))
        ));
        s.enable_role(clerk).unwrap();
        s.add_active_role(bob, sess, clerk).unwrap();
    }

    #[test]
    fn disable_role_deactivates_sessions() {
        let (mut s, bob, clerk, _, _) = small_world();
        let sess = s.create_session(bob, &[clerk]).unwrap();
        let affected = s.disable_role(clerk, true).unwrap();
        assert_eq!(affected, vec![sess]);
        assert!(s.session_roles(sess).unwrap().is_empty());
    }

    #[test]
    fn delete_user_closes_sessions() {
        let (mut s, bob, clerk, _, _) = small_world();
        let sess = s.create_session(bob, &[clerk]).unwrap();
        s.delete_user(bob).unwrap();
        assert!(s.session(sess).is_err());
        assert!(s.assigned_users(clerk).unwrap().is_empty());
    }

    #[test]
    fn delete_role_cleans_up() {
        let (mut s, bob, clerk, read, ledger) = small_world();
        let sess = s.create_session(bob, &[clerk]).unwrap();
        s.delete_role(clerk).unwrap();
        assert!(s.session_roles(sess).unwrap().is_empty());
        assert!(s.assigned_roles(bob).unwrap().is_empty());
        assert!(!s.check_access(sess, read, ledger).unwrap());
    }

    #[test]
    fn role_activation_cap_enforced_when_on() {
        let (mut s, _, clerk, _, _) = small_world();
        s.set_enforce_caps(true);
        s.set_role_activation_cap(clerk, Some(1)).unwrap();
        let u1 = s.add_user("u1").unwrap();
        let u2 = s.add_user("u2").unwrap();
        s.assign_user(u1, clerk).unwrap();
        s.assign_user(u2, clerk).unwrap();
        let s1 = s.create_session(u1, &[]).unwrap();
        let s2 = s.create_session(u2, &[]).unwrap();
        s.add_active_role(u1, s1, clerk).unwrap();
        assert!(matches!(
            s.add_active_role(u2, s2, clerk),
            Err(RbacError::CardinalityExceeded { .. })
        ));
        // Same user in a second session does not consume the cap.
        let s1b = s.create_session(u1, &[clerk]).unwrap();
        assert!(s.session_roles(s1b).unwrap().contains(&clerk));
    }

    #[test]
    fn user_active_role_cap_enforced_when_on() {
        let mut s = sys();
        s.set_enforce_caps(true);
        let jane = s.add_user("jane").unwrap();
        let r1 = s.add_role("r1").unwrap();
        let r2 = s.add_role("r2").unwrap();
        s.assign_user(jane, r1).unwrap();
        s.assign_user(jane, r2).unwrap();
        s.set_user_active_role_cap(jane, Some(1)).unwrap();
        let sess = s.create_session(jane, &[r1]).unwrap();
        assert!(matches!(
            s.add_active_role(jane, sess, r2),
            Err(RbacError::CardinalityExceeded { .. })
        ));
    }

    #[test]
    fn caps_ignored_when_off() {
        let (mut s, _, clerk, _, _) = small_world();
        s.set_role_activation_cap(clerk, Some(1)).unwrap();
        let u1 = s.add_user("u1").unwrap();
        let u2 = s.add_user("u2").unwrap();
        s.assign_user(u1, clerk).unwrap();
        s.assign_user(u2, clerk).unwrap();
        s.create_session(u1, &[clerk]).unwrap();
        // enforce_caps is false: second activation allowed by the monitor
        // (the OWTE layer is responsible for the check).
        s.create_session(u2, &[clerk]).unwrap();
        assert_eq!(s.active_users_of_role(clerk).unwrap(), 2);
    }

    #[test]
    fn check_access_unknown_perm_is_false() {
        let (mut s, bob, clerk, read, _) = small_world();
        let vault = s.add_object("vault").unwrap();
        let sess = s.create_session(bob, &[clerk]).unwrap();
        assert!(!s.check_access(sess, read, vault).unwrap());
    }

    #[test]
    fn deassign_deactivates() {
        let (mut s, bob, clerk, _, _) = small_world();
        let sess = s.create_session(bob, &[clerk]).unwrap();
        s.deassign_user(bob, clerk).unwrap();
        assert!(s.session_roles(sess).unwrap().is_empty());
    }
}
