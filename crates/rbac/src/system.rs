//! The RBAC reference monitor state: element sets and relations of the
//! ANSI INCITS 359-2004 standard.
//!
//! [`System`] holds USERS, ROLES, OPS, OBS, PRMS, SESSIONS, the UA and PA
//! relations, the role hierarchy (RH), and the SSD/DSD constraint sets. The
//! functional specification is split across sibling modules:
//!
//! * entity management and Core RBAC — [`crate::core`]
//! * Hierarchical RBAC — [`crate::hierarchy`]
//! * Static SoD — [`crate::ssd`]
//! * Dynamic SoD — [`crate::dsd`]
//! * review functions — [`crate::review`]
//!
//! The monitor is deliberately *passive*: it validates and records. The
//! paper's point is that active (OWTE) rules sit on top, turning every
//! mutation into an event and every constraint into rule conditions; the
//! same state machine also backs the non-active baseline engine.

use crate::error::{RbacError, Result};
use crate::ids::{DsdId, ObjId, OpId, PermId, RoleId, SessionId, SsdId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Shape restriction on the role hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HierarchyKind {
    /// Arbitrary partial order (DAG).
    #[default]
    General,
    /// Each role has at most one immediate senior (inverted forest).
    Limited,
}

/// A user record: UA assignments and open sessions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct UserRec {
    pub name: String,
    /// Immediate UA assignments.
    pub roles: BTreeSet<RoleId>,
    pub sessions: BTreeSet<SessionId>,
    /// Paper Rule 4 variant: max roles this user may have active at once.
    pub max_active_roles: Option<usize>,
}

/// A role record: assigned users, granted permissions, hierarchy edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct RoleRec {
    pub name: String,
    /// Users directly assigned (UA).
    pub users: BTreeSet<UserId>,
    /// Permissions directly granted (PA).
    pub perms: BTreeSet<PermId>,
    /// Immediate seniors (roles that inherit this role's permissions).
    pub seniors: BTreeSet<RoleId>,
    /// Immediate juniors.
    pub juniors: BTreeSet<RoleId>,
    /// Temporal state: a disabled role cannot be activated (GTRBAC).
    pub enabled: bool,
    /// Paper Rule 4: max distinct users active in this role at once.
    pub activation_cap: Option<usize>,
}

/// A session: one user, a set of activated roles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SessionRec {
    pub user: UserId,
    pub active: BTreeSet<RoleId>,
}

/// An (operation, object) pair — a member of PRMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permission {
    /// The approved operation.
    pub op: OpId,
    /// The object it applies to.
    pub obj: ObjId,
}

/// A named SSD or DSD role set with cardinality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SodSet {
    pub name: String,
    pub roles: BTreeSet<RoleId>,
    /// A user may be assigned to (SSD) / have active (DSD) at most `n - 1`
    /// roles from `roles`.
    pub n: usize,
}

/// The RBAC reference monitor.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct System {
    pub(crate) users: Vec<Option<UserRec>>,
    pub(crate) roles: Vec<Option<RoleRec>>,
    pub(crate) sessions: Vec<Option<SessionRec>>,
    pub(crate) ops: Vec<String>,
    pub(crate) objs: Vec<String>,
    pub(crate) perms: Vec<Permission>,
    /// Tuple-keyed, which JSON map keys cannot express; stored as a
    /// sorted pair list on the wire.
    #[serde(with = "serde_perm_index")]
    pub(crate) perm_index: HashMap<(OpId, ObjId), PermId>,
    pub(crate) ssd: Vec<Option<SodSet>>,
    pub(crate) dsd: Vec<Option<SodSet>>,

    pub(crate) user_names: HashMap<String, UserId>,
    pub(crate) role_names: HashMap<String, RoleId>,
    pub(crate) op_names: HashMap<String, OpId>,
    pub(crate) obj_names: HashMap<String, ObjId>,
    pub(crate) ssd_names: HashMap<String, SsdId>,
    pub(crate) dsd_names: HashMap<String, DsdId>,

    /// Hierarchy shape restriction.
    pub(crate) hierarchy_kind: HierarchyKind,
    /// When true, `add_active_role` itself enforces activation-cardinality
    /// caps (used by the direct baseline; the OWTE engine enforces caps in
    /// generated rules instead and leaves this off).
    pub(crate) enforce_caps: bool,
}

impl System {
    /// An empty monitor with a general role hierarchy.
    pub fn new() -> System {
        System::default()
    }

    /// An empty monitor with the given hierarchy restriction.
    pub fn with_hierarchy(kind: HierarchyKind) -> System {
        System {
            hierarchy_kind: kind,
            ..System::default()
        }
    }

    /// Enable/disable built-in activation-cardinality enforcement.
    pub fn set_enforce_caps(&mut self, on: bool) {
        self.enforce_caps = on;
    }

    /// Is built-in cap enforcement on?
    pub fn enforces_caps(&self) -> bool {
        self.enforce_caps
    }

    /// The hierarchy restriction in force.
    pub fn hierarchy_kind(&self) -> HierarchyKind {
        self.hierarchy_kind
    }

    // ---- internal accessors -------------------------------------------------

    pub(crate) fn user(&self, u: UserId) -> Result<&UserRec> {
        self.users
            .get(u.index())
            .and_then(Option::as_ref)
            .ok_or(RbacError::NoSuchUser(u))
    }

    pub(crate) fn user_mut(&mut self, u: UserId) -> Result<&mut UserRec> {
        self.users
            .get_mut(u.index())
            .and_then(Option::as_mut)
            .ok_or(RbacError::NoSuchUser(u))
    }

    pub(crate) fn role(&self, r: RoleId) -> Result<&RoleRec> {
        self.roles
            .get(r.index())
            .and_then(Option::as_ref)
            .ok_or(RbacError::NoSuchRole(r))
    }

    pub(crate) fn role_mut(&mut self, r: RoleId) -> Result<&mut RoleRec> {
        self.roles
            .get_mut(r.index())
            .and_then(Option::as_mut)
            .ok_or(RbacError::NoSuchRole(r))
    }

    pub(crate) fn session(&self, s: SessionId) -> Result<&SessionRec> {
        self.sessions
            .get(s.index())
            .and_then(Option::as_ref)
            .ok_or(RbacError::NoSuchSession(s))
    }

    pub(crate) fn session_mut(&mut self, s: SessionId) -> Result<&mut SessionRec> {
        self.sessions
            .get_mut(s.index())
            .and_then(Option::as_mut)
            .ok_or(RbacError::NoSuchSession(s))
    }

    // ---- entity counts (for stats / workload assertions) --------------------

    /// Number of live users.
    pub fn user_count(&self) -> usize {
        self.users.iter().flatten().count()
    }

    /// Number of live roles.
    pub fn role_count(&self) -> usize {
        self.roles.iter().flatten().count()
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// Number of distinct permissions ever defined.
    pub fn perm_count(&self) -> usize {
        self.perms.len()
    }

    // ---- name lookups --------------------------------------------------------

    /// Resolve a user by name.
    pub fn user_by_name(&self, name: &str) -> Result<UserId> {
        self.user_names
            .get(name)
            .copied()
            .ok_or_else(|| RbacError::UnknownName(name.to_string()))
    }

    /// Resolve a role by name.
    pub fn role_by_name(&self, name: &str) -> Result<RoleId> {
        self.role_names
            .get(name)
            .copied()
            .ok_or_else(|| RbacError::UnknownName(name.to_string()))
    }

    /// Resolve an operation by name.
    pub fn op_by_name(&self, name: &str) -> Result<OpId> {
        self.op_names
            .get(name)
            .copied()
            .ok_or_else(|| RbacError::UnknownName(name.to_string()))
    }

    /// Resolve an object by name.
    pub fn obj_by_name(&self, name: &str) -> Result<ObjId> {
        self.obj_names
            .get(name)
            .copied()
            .ok_or_else(|| RbacError::UnknownName(name.to_string()))
    }

    /// A user's name.
    pub fn user_name(&self, u: UserId) -> Result<&str> {
        Ok(&self.user(u)?.name)
    }

    /// A role's name.
    pub fn role_name(&self, r: RoleId) -> Result<&str> {
        Ok(&self.role(r)?.name)
    }

    /// An operation's name.
    pub fn op_name(&self, o: OpId) -> Result<&str> {
        self.ops
            .get(o.index())
            .map(String::as_str)
            .ok_or(RbacError::NoSuchOp(o))
    }

    /// An object's name.
    pub fn obj_name(&self, o: ObjId) -> Result<&str> {
        self.objs
            .get(o.index())
            .map(String::as_str)
            .ok_or(RbacError::NoSuchObject(o))
    }

    /// The (op, obj) pair behind a permission id.
    pub fn perm(&self, p: PermId) -> Option<Permission> {
        self.perms.get(p.index()).copied()
    }

    /// Look up (or lazily create) the permission id for (op, obj).
    pub fn perm_id(&mut self, op: OpId, obj: ObjId) -> Result<PermId> {
        self.op_name(op)?;
        self.obj_name(obj)?;
        if let Some(&p) = self.perm_index.get(&(op, obj)) {
            return Ok(p);
        }
        let p = PermId(u32::try_from(self.perms.len()).expect("perm count fits u32"));
        self.perms.push(Permission { op, obj });
        self.perm_index.insert((op, obj), p);
        Ok(p)
    }

    /// Look up a permission id without creating it.
    pub fn find_perm(&self, op: OpId, obj: ObjId) -> Option<PermId> {
        self.perm_index.get(&(op, obj)).copied()
    }

    /// Every interned permission as `((op, obj), perm)` pairs, in no
    /// particular order. Lets callers (e.g. a published read-path
    /// snapshot) rebuild the `(op, obj) → permission` index without a
    /// per-request `find_perm` round trip into the locked system.
    pub fn permission_pairs(&self) -> impl Iterator<Item = ((OpId, ObjId), PermId)> + '_ {
        self.perm_index.iter().map(|(&k, &v)| (k, v))
    }

    // ---- iteration -----------------------------------------------------------

    /// All live user ids.
    pub fn all_users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_some())
            .map(|(i, _)| UserId(i as u32))
    }

    /// All live role ids.
    pub fn all_roles(&self) -> impl Iterator<Item = RoleId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| RoleId(i as u32))
    }

    /// All open session ids.
    pub fn all_sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| SessionId(i as u32))
    }

    /// All SSD set ids.
    pub fn all_ssd_sets(&self) -> impl Iterator<Item = SsdId> + '_ {
        self.ssd
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| SsdId(i as u32))
    }

    /// All DSD set ids.
    pub fn all_dsd_sets(&self) -> impl Iterator<Item = DsdId> + '_ {
        self.dsd
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| DsdId(i as u32))
    }
}

/// `perm_index` has tuple keys; serialize as a pair list sorted by key so
/// the wire form is deterministic.
mod serde_perm_index {
    use crate::ids::{ObjId, OpId, PermId};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    #[allow(clippy::type_complexity)]
    pub fn serialize<S: Serializer>(
        map: &HashMap<(OpId, ObjId), PermId>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        let mut pairs: Vec<(&(OpId, ObjId), &PermId)> = map.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        pairs.serialize(s)
    }

    #[allow(clippy::type_complexity)]
    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<HashMap<(OpId, ObjId), PermId>, D::Error> {
        Ok(Vec::<((OpId, ObjId), PermId)>::deserialize(d)?
            .into_iter()
            .collect())
    }
}
