//! Typed identifiers for RBAC entities.
//!
//! Every entity set in the standard (USERS, ROLES, OPS, OBS, SESSIONS and
//! the derived PRMS) gets its own newtype id, so the compiler rejects e.g.
//! passing a user where a role is expected. Ids are dense indexes assigned
//! by [`crate::system::System`]; names are interned alongside.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_type!(
    /// A member of USERS — a human or user agent.
    UserId,
    "u"
);
id_type!(
    /// A member of ROLES — a job function.
    RoleId,
    "r"
);
id_type!(
    /// A member of SESSIONS — a mapping from a user to activated roles.
    SessionId,
    "s"
);
id_type!(
    /// A member of OPS — an operation (read, write, approve, …).
    OpId,
    "op"
);
id_type!(
    /// A member of OBS — a protected object.
    ObjId,
    "ob"
);
id_type!(
    /// A member of PRMS — an (operation, object) permission.
    PermId,
    "p"
);
id_type!(
    /// A named SSD constraint set.
    SsdId,
    "ssd"
);
id_type!(
    /// A named DSD constraint set.
    DsdId,
    "dsd"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(RoleId(0).to_string(), "r0");
        assert_eq!(SessionId(7).index(), 7);
        assert_eq!(PermId(2).to_string(), "p2");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(RoleId(1) < RoleId(2));
        let mut v = vec![UserId(2), UserId(0), UserId(1)];
        v.sort();
        assert_eq!(v, vec![UserId(0), UserId(1), UserId(2)]);
    }
}
