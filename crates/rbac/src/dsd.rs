//! Dynamic Separation of Duty (ANSI 359-2004 §6.4).
//!
//! A DSD constraint (role set RS, cardinality n) lets a user be *assigned*
//! to many conflicting roles but never *active* in n or more of them within
//! one session — the paper's "a user can be assigned to M mutually exclusive
//! roles, but cannot be active in N or more … at the same time".

use crate::error::{RbacError, Result};
use crate::ids::{DsdId, RoleId, SessionId};
use crate::system::{SodSet, System};
use std::collections::BTreeSet;

impl System {
    /// `CreateDsdSet`: create a named DSD constraint over `roles` with
    /// cardinality `n` (at most `n - 1` of them active per session).
    pub fn create_dsd_set(&mut self, name: &str, roles: &[RoleId], n: usize) -> Result<DsdId> {
        if self.dsd_names.contains_key(name) {
            return Err(RbacError::DuplicateName(name.to_string()));
        }
        let roles: BTreeSet<RoleId> = roles.iter().copied().collect();
        for &r in &roles {
            self.role(r)?;
        }
        if n < 2 || n > roles.len() {
            return Err(RbacError::BadCardinality {
                n,
                set_size: roles.len(),
            });
        }
        let id = DsdId(u32::try_from(self.dsd.len()).expect("dsd count fits u32"));
        self.dsd.push(Some(SodSet {
            name: name.to_string(),
            roles,
            n,
        }));
        self.dsd_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// `DeleteDsdSet`.
    pub fn delete_dsd_set(&mut self, id: DsdId) -> Result<()> {
        let set = self
            .dsd
            .get_mut(id.index())
            .and_then(Option::take)
            .ok_or(RbacError::NoSuchDsdSet(id))?;
        self.dsd_names.remove(&set.name);
        Ok(())
    }

    /// `AddDsdRoleMember`.
    pub fn add_dsd_role_member(&mut self, id: DsdId, r: RoleId) -> Result<()> {
        self.role(r)?;
        self.dsd_mut(id)?.roles.insert(r);
        Ok(())
    }

    /// `DeleteDsdRoleMember` (must keep ≥ cardinality roles).
    pub fn delete_dsd_role_member(&mut self, id: DsdId, r: RoleId) -> Result<()> {
        let set = self.dsd_set(id)?;
        if !set.roles.contains(&r) {
            return Err(RbacError::NoSuchRole(r));
        }
        if set.roles.len() - 1 < set.n {
            return Err(RbacError::BadCardinality {
                n: set.n,
                set_size: set.roles.len() - 1,
            });
        }
        self.dsd_mut(id)?.roles.remove(&r);
        Ok(())
    }

    /// `SetDsdSetCardinality`.
    pub fn set_dsd_cardinality(&mut self, id: DsdId, n: usize) -> Result<()> {
        let set = self.dsd_set(id)?;
        if n < 2 || n > set.roles.len() {
            return Err(RbacError::BadCardinality {
                n,
                set_size: set.roles.len(),
            });
        }
        self.dsd_mut(id)?.n = n;
        Ok(())
    }

    /// `DsdRoleSets` review: name, roles and cardinality.
    pub fn dsd_set_info(&self, id: DsdId) -> Result<(String, BTreeSet<RoleId>, usize)> {
        let s = self.dsd_set(id)?;
        Ok((s.name.clone(), s.roles.clone(), s.n))
    }

    /// Resolve a DSD set by name.
    pub fn dsd_by_name(&self, name: &str) -> Result<DsdId> {
        self.dsd_names
            .get(name)
            .copied()
            .ok_or_else(|| RbacError::UnknownName(name.to_string()))
    }

    /// Would activating `r` in session `s` violate a DSD set? (The paper's
    /// `checkDynamicSoDSet(user, R1)` condition.)
    pub fn check_dsd_activate(&self, s: SessionId, r: RoleId) -> Result<()> {
        let sess = self.session(s)?;
        for id in self.all_dsd_sets() {
            let set = self.dsd_set(id)?;
            if !set.roles.contains(&r) {
                continue;
            }
            let active_in_set = sess.active.intersection(&set.roles).count();
            if active_in_set + 1 >= set.n {
                return Err(RbacError::DsdViolation {
                    set: id,
                    session: s,
                    role: r,
                });
            }
        }
        Ok(())
    }

    /// Does the role participate in any DSD set? (Rule-variant selection:
    /// AAR₃/AAR₄ vs AAR₁/AAR₂.)
    pub fn in_dsd(&self, r: RoleId) -> Result<bool> {
        self.role(r)?;
        Ok(self.dsd.iter().flatten().any(|s| s.roles.contains(&r)))
    }

    pub(crate) fn dsd_set(&self, id: DsdId) -> Result<&SodSet> {
        self.dsd
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(RbacError::NoSuchDsdSet(id))
    }

    fn dsd_mut(&mut self, id: DsdId) -> Result<&mut SodSet> {
        self.dsd
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(RbacError::NoSuchDsdSet(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;

    fn base() -> (System, UserId, RoleId, RoleId, RoleId) {
        let mut s = System::new();
        let u = s.add_user("u").unwrap();
        let a = s.add_role("a").unwrap();
        let b = s.add_role("b").unwrap();
        let c = s.add_role("c").unwrap();
        for r in [a, b, c] {
            s.assign_user(u, r).unwrap();
        }
        (s, u, a, b, c)
    }

    #[test]
    fn assigned_to_all_active_in_fewer() {
        let (mut s, u, a, b, c) = base();
        // N = 2 of M = 3: only one may be active at a time.
        s.create_dsd_set("x", &[a, b, c], 2).unwrap();
        let sess = s.create_session(u, &[a]).unwrap();
        assert!(matches!(
            s.add_active_role(u, sess, b),
            Err(RbacError::DsdViolation { .. })
        ));
        // Dropping `a` frees the slot.
        s.drop_active_role(u, sess, a).unwrap();
        s.add_active_role(u, sess, b).unwrap();
        assert!(s.add_active_role(u, sess, c).is_err());
    }

    #[test]
    fn n_of_m_boundary() {
        let (mut s, u, a, b, c) = base();
        // N = 3: any two of three may be co-active, not all three.
        s.create_dsd_set("x", &[a, b, c], 3).unwrap();
        let sess = s.create_session(u, &[a, b]).unwrap();
        assert!(matches!(
            s.add_active_role(u, sess, c),
            Err(RbacError::DsdViolation { .. })
        ));
        assert_eq!(s.session_roles(sess).unwrap().len(), 2);
    }

    #[test]
    fn dsd_is_per_session() {
        let (mut s, u, a, b, _) = base();
        s.create_dsd_set("x", &[a, b], 2).unwrap();
        let s1 = s.create_session(u, &[a]).unwrap();
        // A *different* session may activate the conflicting role.
        let s2 = s.create_session(u, &[b]).unwrap();
        assert!(s.session_roles(s1).unwrap().contains(&a));
        assert!(s.session_roles(s2).unwrap().contains(&b));
    }

    #[test]
    fn roles_outside_set_unaffected() {
        let (mut s, u, a, b, c) = base();
        s.create_dsd_set("x", &[a, b], 2).unwrap();
        let sess = s.create_session(u, &[a]).unwrap();
        s.add_active_role(u, sess, c).unwrap();
    }

    #[test]
    fn create_session_initial_set_checked() {
        let (mut s, u, a, b, _) = base();
        s.create_dsd_set("x", &[a, b], 2).unwrap();
        assert!(s.create_session(u, &[a, b]).is_err());
    }

    #[test]
    fn membership_and_cardinality_changes() {
        let (mut s, u, a, b, c) = base();
        let id = s.create_dsd_set("x", &[a, b], 2).unwrap();
        s.add_dsd_role_member(id, c).unwrap();
        let sess = s.create_session(u, &[a]).unwrap();
        assert!(s.add_active_role(u, sess, c).is_err());
        s.set_dsd_cardinality(id, 3).unwrap();
        s.add_active_role(u, sess, c).unwrap();
        assert!(matches!(
            s.delete_dsd_role_member(id, c),
            Err(RbacError::BadCardinality { .. })
        ));
        assert!(matches!(
            s.set_dsd_cardinality(id, 4),
            Err(RbacError::BadCardinality { .. })
        ));
    }

    #[test]
    fn delete_set_lifts_constraint() {
        let (mut s, u, a, b, _) = base();
        let id = s.create_dsd_set("x", &[a, b], 2).unwrap();
        let sess = s.create_session(u, &[a]).unwrap();
        assert!(s.add_active_role(u, sess, b).is_err());
        s.delete_dsd_set(id).unwrap();
        s.add_active_role(u, sess, b).unwrap();
    }

    #[test]
    fn in_dsd_flag() {
        let (mut s, _, a, b, c) = base();
        s.create_dsd_set("x", &[a, b], 2).unwrap();
        assert!(s.in_dsd(a).unwrap());
        assert!(!s.in_dsd(c).unwrap());
    }
}
