//! Hierarchical RBAC (ANSI 359-2004 §6.2): a partial order ⪰ over roles.
//!
//! "Senior roles acquire the permissions of their juniors, and junior roles
//! acquire the user membership of their seniors." The hierarchy is a DAG of
//! immediate edges; authorization and permission queries take the reflexive
//! transitive closure.

use crate::error::{RbacError, Result};
use crate::ids::{PermId, RoleId, UserId};
use crate::system::{HierarchyKind, System};
use std::collections::BTreeSet;

impl System {
    /// `AddInheritance`: make `senior ⪰ junior` an immediate edge.
    ///
    /// Rejected if either role is missing, the edge exists, it would create
    /// a cycle, the hierarchy is limited and `junior` already has an
    /// immediate senior, or some user's *authorized* role set would come to
    /// violate an SSD constraint (the standard's SSD/hierarchy consistency
    /// requirement).
    pub fn add_inheritance(&mut self, senior: RoleId, junior: RoleId) -> Result<()> {
        self.role(senior)?;
        self.role(junior)?;
        if senior == junior {
            return Err(RbacError::HierarchyCycle(senior, junior));
        }
        if self.role(senior)?.juniors.contains(&junior) {
            return Err(RbacError::InheritanceExists(senior, junior));
        }
        // Cycle: senior must not already be junior-reachable from `junior`.
        if self.juniors_closure(junior)?.contains(&senior) {
            return Err(RbacError::HierarchyCycle(senior, junior));
        }
        if self.hierarchy_kind() == HierarchyKind::Limited && !self.role(junior)?.seniors.is_empty()
        {
            return Err(RbacError::LimitedHierarchy(junior));
        }
        // SSD consistency: simulate the edge, then re-check every user
        // authorized for the new senior (they gain the junior's subtree).
        self.role_mut(senior)?.juniors.insert(junior);
        self.role_mut(junior)?.seniors.insert(senior);
        let check = self.check_all_users_ssd();
        if let Err(e) = check {
            self.role_mut(senior)?.juniors.remove(&junior);
            self.role_mut(junior)?.seniors.remove(&senior);
            return Err(e);
        }
        Ok(())
    }

    /// `DeleteInheritance`: remove the immediate edge `senior ⪰ junior`.
    /// Roles that become unauthorized for some user are deactivated in that
    /// user's sessions.
    pub fn delete_inheritance(&mut self, senior: RoleId, junior: RoleId) -> Result<()> {
        self.role(senior)?;
        self.role(junior)?;
        if !self.role(senior)?.juniors.contains(&junior) {
            return Err(RbacError::NoSuchInheritance(senior, junior));
        }
        self.role_mut(senior)?.juniors.remove(&junior);
        self.role_mut(junior)?.seniors.remove(&senior);
        // Deactivate newly unauthorized roles.
        for u in self.all_users().collect::<Vec<_>>() {
            let authorized = self.authorized_roles(u)?;
            let sessions: Vec<_> = self.user(u)?.sessions.iter().copied().collect();
            for s in sessions {
                if let Some(sess) = self.sessions[s.index()].as_mut() {
                    sess.active.retain(|r| authorized.contains(r));
                }
            }
        }
        Ok(())
    }

    /// `AddAscendant`: create a new role as an immediate senior of `junior`.
    pub fn add_ascendant(&mut self, name: &str, junior: RoleId) -> Result<RoleId> {
        self.role(junior)?;
        let senior = self.add_role(name)?;
        self.add_inheritance(senior, junior)?;
        Ok(senior)
    }

    /// `AddDescendant`: create a new role as an immediate junior of `senior`.
    pub fn add_descendant(&mut self, name: &str, senior: RoleId) -> Result<RoleId> {
        self.role(senior)?;
        let junior = self.add_role(name)?;
        self.add_inheritance(senior, junior)?;
        Ok(junior)
    }

    /// Immediate juniors of `r`.
    pub fn immediate_juniors(&self, r: RoleId) -> Result<BTreeSet<RoleId>> {
        Ok(self.role(r)?.juniors.clone())
    }

    /// Immediate seniors of `r`.
    pub fn immediate_seniors(&self, r: RoleId) -> Result<BTreeSet<RoleId>> {
        Ok(self.role(r)?.seniors.clone())
    }

    /// All roles reachable downward from `r` (excluding `r`).
    pub fn juniors_closure(&self, r: RoleId) -> Result<BTreeSet<RoleId>> {
        self.closure(r, false)
    }

    /// All roles reachable upward from `r` (excluding `r`).
    pub fn seniors_closure(&self, r: RoleId) -> Result<BTreeSet<RoleId>> {
        self.closure(r, true)
    }

    fn closure(&self, r: RoleId, up: bool) -> Result<BTreeSet<RoleId>> {
        self.role(r)?;
        let mut seen = BTreeSet::new();
        let mut stack = vec![r];
        while let Some(cur) = stack.pop() {
            let rec = self.role(cur)?;
            let next = if up { &rec.seniors } else { &rec.juniors };
            for &n in next {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        Ok(seen)
    }

    /// Does `senior ⪰ junior` hold in the closure (reflexive)?
    pub fn dominates(&self, senior: RoleId, junior: RoleId) -> Result<bool> {
        if senior == junior {
            self.role(senior)?;
            return Ok(true);
        }
        Ok(self.juniors_closure(senior)?.contains(&junior))
    }

    /// Roles the user may activate: direct assignments plus all juniors of
    /// those assignments ("junior roles acquire the user membership of their
    /// seniors").
    pub fn authorized_roles(&self, u: UserId) -> Result<BTreeSet<RoleId>> {
        let mut out = self.user(u)?.roles.clone();
        for r in self.user(u)?.roles.clone() {
            out.extend(self.juniors_closure(r)?);
        }
        Ok(out)
    }

    /// Is `u` authorized for `r` (assigned to `r` or to any senior of it)?
    pub fn is_authorized(&self, u: UserId, r: RoleId) -> Result<bool> {
        self.role(r)?;
        let assigned = &self.user(u)?.roles;
        if assigned.contains(&r) {
            return Ok(true);
        }
        for &s in &self.seniors_closure(r)? {
            if assigned.contains(&s) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Users authorized for `r`: assigned to `r` or any of its seniors.
    pub fn authorized_users(&self, r: RoleId) -> Result<BTreeSet<UserId>> {
        let mut out = self.role(r)?.users.clone();
        for s in self.seniors_closure(r)? {
            out.extend(self.role(s)?.users.iter().copied());
        }
        Ok(out)
    }

    /// Permissions of `r` including everything inherited from juniors.
    pub fn role_perms_closure(&self, r: RoleId) -> Result<BTreeSet<PermId>> {
        let mut out = self.role(r)?.perms.clone();
        for j in self.juniors_closure(r)? {
            out.extend(self.role(j)?.perms.iter().copied());
        }
        Ok(out)
    }

    /// Does `r` hold `p` directly or via a junior?
    pub fn role_has_perm_closure(&self, r: RoleId, p: PermId) -> Result<bool> {
        if self.role(r)?.perms.contains(&p) {
            return Ok(true);
        }
        for j in self.juniors_closure(r)? {
            if self.role(j)?.perms.contains(&p) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Does the role participate in any hierarchy relationship? (Drives the
    /// paper's choice between rule variants AAR₁/AAR₃ vs AAR₂/AAR₄.)
    pub fn in_hierarchy(&self, r: RoleId) -> Result<bool> {
        let rec = self.role(r)?;
        Ok(!rec.seniors.is_empty() || !rec.juniors.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's enterprise XYZ purchase branch: PM ⪰ PC ⪰ Clerk.
    fn chain() -> (System, RoleId, RoleId, RoleId) {
        let mut s = System::new();
        let pm = s.add_role("PM").unwrap();
        let pc = s.add_role("PC").unwrap();
        let clerk = s.add_role("Clerk").unwrap();
        s.add_inheritance(pm, pc).unwrap();
        s.add_inheritance(pc, clerk).unwrap();
        (s, pm, pc, clerk)
    }

    #[test]
    fn closure_and_dominates() {
        let (s, pm, pc, clerk) = chain();
        assert_eq!(s.juniors_closure(pm).unwrap(), [pc, clerk].into());
        assert_eq!(s.seniors_closure(clerk).unwrap(), [pm, pc].into());
        assert!(s.dominates(pm, clerk).unwrap());
        assert!(s.dominates(pm, pm).unwrap());
        assert!(!s.dominates(clerk, pm).unwrap());
    }

    #[test]
    fn cycles_rejected() {
        let (mut s, pm, _, clerk) = chain();
        assert!(matches!(
            s.add_inheritance(clerk, pm),
            Err(RbacError::HierarchyCycle(_, _))
        ));
        assert!(matches!(
            s.add_inheritance(pm, pm),
            Err(RbacError::HierarchyCycle(_, _))
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let (mut s, pm, pc, _) = chain();
        assert!(matches!(
            s.add_inheritance(pm, pc),
            Err(RbacError::InheritanceExists(_, _))
        ));
    }

    #[test]
    fn senior_acquires_junior_permissions() {
        let (mut s, pm, _, clerk) = chain();
        let read = s.add_operation("read").unwrap();
        let doc = s.add_object("doc").unwrap();
        let p = s.grant_permission(clerk, read, doc).unwrap();
        assert!(s.role_has_perm_closure(pm, p).unwrap());
        assert!(s.role_perms_closure(pm).unwrap().contains(&p));
        // Junior does NOT acquire senior permissions.
        let approve = s.add_operation("approve").unwrap();
        let p2 = s.grant_permission(pm, approve, doc).unwrap();
        assert!(!s.role_has_perm_closure(clerk, p2).unwrap());
    }

    #[test]
    fn junior_acquires_user_membership_of_senior() {
        let (mut s, pm, pc, clerk) = chain();
        let alice = s.add_user("alice").unwrap();
        s.assign_user(alice, pm).unwrap();
        assert!(s.is_authorized(alice, clerk).unwrap());
        assert_eq!(s.authorized_roles(alice).unwrap(), [pm, pc, clerk].into());
        assert_eq!(s.authorized_users(clerk).unwrap(), [alice].into());
        // Activation of a junior role is allowed via the senior assignment.
        let sess = s.create_session(alice, &[]).unwrap();
        s.add_active_role(alice, sess, clerk).unwrap();
        // Activating juniors grants only junior permissions in check_access.
        let read = s.add_operation("read").unwrap();
        let doc = s.add_object("doc").unwrap();
        s.grant_permission(pm, read, doc).unwrap();
        assert!(!s.check_access(sess, read, doc).unwrap());
    }

    #[test]
    fn limited_hierarchy_single_senior() {
        let mut s = System::with_hierarchy(HierarchyKind::Limited);
        let a = s.add_role("a").unwrap();
        let b = s.add_role("b").unwrap();
        let c = s.add_role("c").unwrap();
        s.add_inheritance(a, c).unwrap();
        assert!(matches!(
            s.add_inheritance(b, c),
            Err(RbacError::LimitedHierarchy(_))
        ));
        // General hierarchy allows the diamond.
        let mut g = System::new();
        let a = g.add_role("a").unwrap();
        let b = g.add_role("b").unwrap();
        let c = g.add_role("c").unwrap();
        g.add_inheritance(a, c).unwrap();
        g.add_inheritance(b, c).unwrap();
    }

    #[test]
    fn add_ascendant_descendant() {
        let mut s = System::new();
        let mid = s.add_role("mid").unwrap();
        let top = s.add_ascendant("top", mid).unwrap();
        let bot = s.add_descendant("bot", mid).unwrap();
        assert!(s.dominates(top, bot).unwrap());
    }

    #[test]
    fn delete_inheritance_deactivates_orphans() {
        let (mut s, pm, pc, _) = chain();
        let alice = s.add_user("alice").unwrap();
        s.assign_user(alice, pm).unwrap();
        let sess = s.create_session(alice, &[pc]).unwrap();
        s.delete_inheritance(pm, pc).unwrap();
        assert!(
            s.session_roles(sess).unwrap().is_empty(),
            "PC no longer authorized for alice once PM ⪰ PC is removed"
        );
        assert!(matches!(
            s.delete_inheritance(pm, pc),
            Err(RbacError::NoSuchInheritance(_, _))
        ));
    }

    #[test]
    fn diamond_closure() {
        // top ⪰ {l, r} ⪰ bottom — closure must not double count or loop.
        let mut s = System::new();
        let top = s.add_role("top").unwrap();
        let l = s.add_role("l").unwrap();
        let r = s.add_role("r").unwrap();
        let bot = s.add_role("bot").unwrap();
        s.add_inheritance(top, l).unwrap();
        s.add_inheritance(top, r).unwrap();
        s.add_inheritance(l, bot).unwrap();
        s.add_inheritance(r, bot).unwrap();
        assert_eq!(s.juniors_closure(top).unwrap(), [l, r, bot].into());
        assert_eq!(s.seniors_closure(bot).unwrap(), [top, l, r].into());
    }
}
