//! A deterministic, message-passing shard group.
//!
//! [`ShardGroup`] is the sharded engine with its concurrency made
//! *explicit*: every cross-component interaction — reserve requests,
//! grants, commits, membership syncs, probes, fences — is an
//! [`Envelope`] in an in-flight queue, and nothing happens until a
//! driver (the model checker in `sim::shard`, or a directed test)
//! chooses which message to deliver next. Client ops come from a fixed
//! script; time is virtual and only advances when the driver ticks it.
//! The group is `Clone`, so an explorer can branch the whole world at
//! every choice point.
//!
//! The protocol logic itself lives in [`crate::coord::Coordinator`] and
//! is byte-for-byte the one the concurrent [`crate::front::ShardedEngine`]
//! runs under its mutex — the model checks the deployed protocol, not a
//! sketch of it.
//!
//! ## Failure model
//!
//! * **Coordinator crash** loses the pending reservation table and every
//!   in-flight message to or from the coordinator (its channels die with
//!   it). Durable identity — term, epoch and token high-waters — survives
//!   via [`crate::coord::CoordSeed`].
//! * **Restart** bumps the term and fences every shard: no reservation
//!   is taken from a shard until it acks the fence, killing its parked
//!   ops and reporting ground-truth membership.
//! * **Reservation timeout** (virtual time) triggers a probe, never a
//!   silent release: the shard either disclaims the op (killing it so it
//!   cannot apply later) or confirms it applied, and only then does the
//!   slot release or convert.
//!
//! The `ack_on_reserve` flag is a deliberately seeded protocol bug —
//! acknowledge the client when the reservation is *granted* rather than
//! when the op *applies* — that the model checker must find and shrink;
//! see `tests/shard_model_check.rs`.

use crate::coord::{CoordSeed, Coordinator, OpToken, ReserveOutcome};
use crate::plan::{membership_of, ShardPlan, Unshardable};
use crate::ring::Ring;
use owte_core::{DurableConfig, DurableEngine, Engine, MemStorage};
use policy::PolicyGraph;
use rbac::{RoleId, SessionId, UserId};
use snoop::Ts;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One scripted client operation (entities pre-resolved to ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOp {
    /// `user` opens a session (no initial roles).
    CreateSession(UserId),
    /// `user` closes their current session.
    DeleteSession(UserId),
    /// `user` activates `role` in their current session.
    AddRole(UserId, RoleId),
    /// `user` deactivates `role`.
    DropRole(UserId, RoleId),
}

impl fmt::Display for ClientOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientOp::CreateSession(u) => write!(f, "{u} opens a session"),
            ClientOp::DeleteSession(u) => write!(f, "{u} closes their session"),
            ClientOp::AddRole(u, r) => write!(f, "{u} activates {r}"),
            ClientOp::DropRole(u, r) => write!(f, "{u} deactivates {r}"),
        }
    }
}

/// A protocol message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Shard → coordinator: request a slot for a constrained activation.
    Reserve {
        /// Op token.
        op: OpToken,
        /// Requesting (home) shard.
        shard: usize,
        /// The activating user.
        user: UserId,
        /// The role being activated.
        role: RoleId,
    },
    /// Coordinator → shard: slot promised; apply under `external`.
    Grant {
        /// Op token.
        op: OpToken,
        /// Coordinator term at grant time (stale terms are discarded).
        term: u64,
        /// Epoch totally ordering this constrained op.
        epoch: u64,
        /// Frozen external activation counts.
        external: BTreeMap<RoleId, usize>,
    },
    /// Coordinator → shard: cap exhausted; apply under `external` so the
    /// engine denies through the ordinary audited path.
    Refuse {
        /// Op token.
        op: OpToken,
        /// Coordinator term at refuse time.
        term: u64,
        /// Epoch totally ordering this constrained decision.
        epoch: u64,
        /// Frozen external activation counts.
        external: BTreeMap<RoleId, usize>,
    },
    /// Shard → coordinator: the granted op applied; `activated` says
    /// whether the user newly became active in the reserved role.
    Commit {
        /// Op token.
        op: OpToken,
        /// Did the activation land?
        activated: bool,
    },
    /// Shard → coordinator: asynchronous membership sync from an
    /// unconstrained op (activation of a tracked-but-uncapped role, a
    /// drop, a session delete).
    Release {
        /// Originating shard.
        shard: usize,
        /// The user whose membership changed.
        user: UserId,
        /// The tracked role.
        role: RoleId,
        /// True = became active, false = stopped.
        active: bool,
    },
    /// Coordinator → shard: is expired op `op` applied or dead?
    Probe {
        /// Op token.
        op: OpToken,
        /// Coordinator term.
        term: u64,
    },
    /// Shard → coordinator: probe answer. A `false` answer is a promise
    /// — the shard killed the parked op, so it can never apply later.
    ProbeReply {
        /// Op token.
        op: OpToken,
        /// Did the op reach the engine?
        applied: bool,
        /// Did it newly activate the reserved role?
        activated: bool,
    },
    /// Coordinator → shard: new term; kill parked ops, report truth.
    Fence {
        /// The new term.
        term: u64,
    },
    /// Shard → coordinator: fence acknowledged with ground-truth
    /// membership.
    FenceAck {
        /// Acking shard.
        shard: usize,
        /// The fenced term.
        term: u64,
        /// Ground-truth tracked membership on this shard.
        members: BTreeMap<RoleId, BTreeSet<UserId>>,
    },
}

/// Where an envelope is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// A shard node.
    Shard(usize),
    /// The coordinator.
    Coord,
}

/// A message plus its destination, sitting in the in-flight queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Destination.
    pub to: Dest,
    /// Payload.
    pub msg: Msg,
}

impl Envelope {
    /// Short human-readable form for schedule scripts.
    pub fn describe(&self) -> String {
        let to = match self.to {
            Dest::Shard(s) => format!("shard{s}"),
            Dest::Coord => "coord".to_string(),
        };
        let what = match &self.msg {
            Msg::Reserve { op, user, role, .. } => format!("reserve#{op} {user}+{role}"),
            Msg::Grant { op, .. } => format!("grant#{op}"),
            Msg::Refuse { op, .. } => format!("refuse#{op}"),
            Msg::Commit { op, activated } => format!("commit#{op} activated={activated}"),
            Msg::Release {
                user, role, active, ..
            } => format!("sync {user}{}{role}", if *active { "+" } else { "-" }),
            Msg::Probe { op, .. } => format!("probe#{op}"),
            Msg::ProbeReply { op, applied, .. } => format!("probe-reply#{op} applied={applied}"),
            Msg::Fence { term } => format!("fence t{term}"),
            Msg::FenceAck { shard, .. } => format!("fence-ack from shard{shard}"),
        };
        format!("{what} -> {to}")
    }

    /// The op token this envelope concerns, if any.
    fn op(&self) -> Option<OpToken> {
        match &self.msg {
            Msg::Reserve { op, .. }
            | Msg::Grant { op, .. }
            | Msg::Refuse { op, .. }
            | Msg::Commit { op, .. }
            | Msg::Probe { op, .. }
            | Msg::ProbeReply { op, .. } => Some(*op),
            Msg::Release { .. } | Msg::Fence { .. } | Msg::FenceAck { .. } => None,
        }
    }

    /// Was this message originated by the coordinator? Such messages die
    /// with it on a crash (its channels are part of the instance).
    fn coordinator_originated(&self) -> bool {
        matches!(
            self.msg,
            Msg::Grant { .. } | Msg::Refuse { .. } | Msg::Probe { .. } | Msg::Fence { .. }
        )
    }
}

/// How a delivered client op resolved at its shard's engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResolution {
    /// The engine accepted it; `activated` = the constrained role newly
    /// became active (always true's analogue for unconstrained ops is
    /// irrelevant and set false).
    Applied {
        /// Constrained role newly activated.
        activated: bool,
    },
    /// The engine denied it (cap, DSD, per-user limits, …).
    Denied,
}

/// The client-visible ledger entry for one submitted op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// What the op was.
    pub desc: String,
    /// Has the client been told the op is done? (Where in the lifecycle
    /// this flips is exactly what `ack_on_reserve` corrupts.)
    pub acked: bool,
    /// The engine-side resolution, once the op reached an engine.
    pub resolution: Option<OpResolution>,
}

/// A constrained op parked at its home shard awaiting the coordinator's
/// answer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Parked {
    user: UserId,
    role: RoleId,
}

#[derive(Clone)]
struct ShardNode {
    eng: DurableEngine<MemStorage>,
    /// Latest coordinator term this shard has been fenced into.
    term: u64,
    parked: BTreeMap<OpToken, Parked>,
    /// Ops this shard has promised can never apply (killed by a fence or
    /// a disclaiming probe answer).
    dead: BTreeSet<OpToken>,
}

/// The deterministic shard group. See the module docs.
#[derive(Clone)]
pub struct ShardGroup {
    plan: ShardPlan,
    ring: Ring,
    shards: Vec<ShardNode>,
    coord: Option<Coordinator>,
    /// Durable coordinator identity (persisted at every serve point).
    seed: CoordSeed,
    queue: Vec<Envelope>,
    script: Vec<ClientOp>,
    cursor: usize,
    sessions: BTreeMap<UserId, SessionId>,
    records: BTreeMap<OpToken, OpRecord>,
    next_token: OpToken,
    now: u64,
    timeout: u64,
    ack_on_reserve: bool,
    crashes: usize,
}

impl ShardGroup {
    /// Build a group of `shards` engines over `graph`, scripted with
    /// `ops`. `timeout` is the reservation lifetime in virtual time
    /// units. `ack_on_reserve` seeds the early-ack protocol bug.
    pub fn new(
        graph: &PolicyGraph,
        shards: usize,
        ops: Vec<ClientOp>,
        timeout: u64,
        ack_on_reserve: bool,
    ) -> Result<ShardGroup, Unshardable> {
        let nodes: Vec<ShardNode> = (0..shards)
            .map(|_| ShardNode {
                eng: DurableEngine::create(
                    MemStorage::new(),
                    graph,
                    Ts::ZERO,
                    DurableConfig::default(),
                )
                .expect("fresh in-memory engine"),
                term: 1,
                parked: BTreeMap::new(),
                dead: BTreeSet::new(),
            })
            .collect();
        let engine = nodes[0].eng.engine();
        let plan = ShardPlan::from_policy(graph, engine, &engine.analyze())?;
        let coord = Coordinator::new(shards, &plan, timeout);
        let seed = coord.seed();
        Ok(ShardGroup {
            plan,
            ring: Ring::new(shards),
            shards: nodes,
            coord: Some(coord),
            seed,
            queue: Vec::new(),
            script: ops,
            cursor: 0,
            sessions: BTreeMap::new(),
            records: BTreeMap::new(),
            next_token: 0,
            now: 0,
            timeout,
            ack_on_reserve,
            crashes: 0,
        })
    }

    /// Resolve a user name on the shared vocabulary (identical on every
    /// shard, since all engines instantiate the same graph).
    pub fn user_id(&self, name: &str) -> Option<UserId> {
        self.shards[0].eng.engine().user_id(name).ok()
    }

    /// Resolve a role name.
    pub fn role_id(&self, name: &str) -> Option<RoleId> {
        self.shards[0].eng.engine().role_id(name).ok()
    }

    /// The shard owning `user` under the hash ring.
    pub fn shard_of(&self, user: UserId) -> usize {
        self.ring.shard_of(user)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine of `shard` (for invariant checks and fingerprints).
    pub fn engine(&self, shard: usize) -> &Engine {
        self.shards[shard].eng.engine()
    }

    /// The sharding plan in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The live coordinator, if not crashed.
    pub fn coordinator(&self) -> Option<&Coordinator> {
        self.coord.as_ref()
    }

    /// Durable coordinator identity as last persisted.
    pub fn coord_seed(&self) -> CoordSeed {
        self.seed
    }

    /// Virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Coordinator crash/restart cycles taken.
    pub fn crashes(&self) -> usize {
        self.crashes
    }

    /// Scripted ops not yet submitted.
    pub fn ops_remaining(&self) -> usize {
        self.script.len() - self.cursor
    }

    /// The next scripted op, if any.
    pub fn next_op(&self) -> Option<&ClientOp> {
        self.script.get(self.cursor)
    }

    /// The in-flight message queue (slot-addressed).
    pub fn queue(&self) -> &[Envelope] {
        &self.queue
    }

    /// The client ledger.
    pub fn records(&self) -> &BTreeMap<OpToken, OpRecord> {
        &self.records
    }

    /// Per-shard parked-op tokens (for fingerprints).
    pub fn parked(&self, shard: usize) -> impl Iterator<Item = OpToken> + '_ {
        self.shards[shard].parked.keys().copied()
    }

    /// Per-shard dead-op tokens (for fingerprints).
    pub fn dead(&self, shard: usize) -> impl Iterator<Item = OpToken> + '_ {
        self.shards[shard].dead.iter().copied()
    }

    /// The fence term of `shard`.
    pub fn shard_term(&self, shard: usize) -> u64 {
        self.shards[shard].term
    }

    /// Distinct users active in `role` across the whole group — ground
    /// truth, straight from the engines.
    pub fn global_active(&self, role: RoleId) -> usize {
        let tracked: BTreeSet<RoleId> = [role].into_iter().collect();
        let mut users: BTreeSet<UserId> = BTreeSet::new();
        for node in &self.shards {
            if let Some(m) = membership_of(node.eng.engine(), &tracked).remove(&role) {
                users.extend(m);
            }
        }
        users.len()
    }

    /// Nothing left to schedule except (possibly) unsubmitted client ops:
    /// empty queue, no pending reservations, coordinator up and fully
    /// fenced.
    pub fn quiescent(&self) -> bool {
        self.queue.is_empty()
            && self
                .coord
                .as_ref()
                .is_some_and(|c| c.pending().is_empty() && c.all_fenced())
    }

    /// Structural "no acked op lost" check: an op the client was told is
    /// done, that never reached an engine, and that no in-flight message,
    /// pending reservation or parked state can ever resolve. Returns the
    /// first such token.
    pub fn lost_acked_op(&self) -> Option<OpToken> {
        self.records.iter().find_map(|(op, rec)| {
            let reachable = self.queue.iter().any(|e| e.op() == Some(*op))
                || self
                    .coord
                    .as_ref()
                    .is_some_and(|c| c.pending().contains_key(op));
            (rec.acked && rec.resolution.is_none() && !reachable).then_some(*op)
        })
    }

    /// When quiescent, the coordinator's membership view must equal the
    /// engines' ground truth. Returns the first discrepancy.
    pub fn coordinator_coherent(&self) -> Option<String> {
        if !self.quiescent() {
            return None;
        }
        let coord = self.coord.as_ref()?;
        for (s, node) in self.shards.iter().enumerate() {
            let truth = membership_of(node.eng.engine(), &self.plan.membership);
            for role in &self.plan.membership {
                let believed = coord.members_of(s, *role).cloned().unwrap_or_default();
                let actual = truth.get(role).cloned().unwrap_or_default();
                if believed != actual {
                    return Some(format!(
                        "shard {s} {role}: coordinator believes {believed:?}, engines say {actual:?}"
                    ));
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Scheduler steps
    // ------------------------------------------------------------------

    /// Submit the next scripted client op: route it to its home shard,
    /// applying it immediately when unconstrained, parking it behind a
    /// reserve request when it consults cross-user state.
    pub fn submit_next(&mut self) {
        let Some(op) = self.script.get(self.cursor).copied() else {
            return;
        };
        self.cursor += 1;
        let token = self.next_token;
        self.next_token += 1;
        let desc = op.to_string();
        match op {
            ClientOp::AddRole(user, role) if self.plan.constrained(role) => {
                let shard = self.ring.shard_of(user);
                self.records.insert(
                    token,
                    OpRecord {
                        desc,
                        acked: false,
                        resolution: None,
                    },
                );
                self.shards[shard]
                    .parked
                    .insert(token, Parked { user, role });
                self.queue.push(Envelope {
                    to: Dest::Coord,
                    msg: Msg::Reserve {
                        op: token,
                        shard,
                        user,
                        role,
                    },
                });
            }
            _ => {
                let user = match op {
                    ClientOp::CreateSession(u)
                    | ClientOp::DeleteSession(u)
                    | ClientOp::AddRole(u, _)
                    | ClientOp::DropRole(u, _) => u,
                };
                let shard = self.ring.shard_of(user);
                let resolution = self.apply_client_op(shard, op, None);
                self.records.insert(
                    token,
                    OpRecord {
                        desc,
                        acked: true,
                        resolution: Some(resolution),
                    },
                );
            }
        }
    }

    /// Deliver the envelope in `slot`. Returns false if the slot is
    /// invalid or the destination cannot take it (crashed coordinator).
    pub fn deliver(&mut self, slot: usize) -> bool {
        if slot >= self.queue.len() || !self.deliverable(slot) {
            return false;
        }
        let env = self.queue.remove(slot);
        match env.to {
            Dest::Coord => self.deliver_to_coord(env.msg),
            Dest::Shard(s) => self.deliver_to_shard(s, env.msg),
        }
        true
    }

    /// Can `slot` be delivered right now? (Messages to a crashed
    /// coordinator wait for the restart.)
    pub fn deliverable(&self, slot: usize) -> bool {
        match self.queue[slot].to {
            Dest::Coord => self.coord.is_some(),
            Dest::Shard(_) => true,
        }
    }

    /// Crash the coordinator: the pending table and every in-flight
    /// message to or from it are lost; durable identity survives.
    pub fn crash_coordinator(&mut self) -> bool {
        let Some(coord) = self.coord.take() else {
            return false;
        };
        self.seed = coord.seed();
        self.queue
            .retain(|e| e.to != Dest::Coord && !e.coordinator_originated());
        self.crashes += 1;
        true
    }

    /// Restart the coordinator under a bumped term and fence every
    /// shard.
    pub fn restart_coordinator(&mut self) -> bool {
        if self.coord.is_some() {
            return false;
        }
        let coord = Coordinator::restart(self.shards.len(), &self.plan, self.timeout, self.seed);
        self.seed = coord.seed();
        let term = coord.term();
        for s in 0..self.shards.len() {
            self.queue.push(Envelope {
                to: Dest::Shard(s),
                msg: Msg::Fence { term },
            });
        }
        self.coord = Some(coord);
        true
    }

    /// The next virtual instant at which a reservation expires, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.coord.as_ref().and_then(|c| c.next_deadline())
    }

    /// Advance virtual time to the next reservation deadline and emit
    /// probes for everything that expired. Returns false when there is
    /// nothing to expire.
    pub fn tick(&mut self) -> bool {
        let Some(deadline) = self.next_deadline() else {
            return false;
        };
        self.now = self.now.max(deadline);
        let Some(coord) = self.coord.as_mut() else {
            return false;
        };
        let term = coord.term();
        for (op, shard) in coord.expired(self.now) {
            self.queue.push(Envelope {
                to: Dest::Shard(shard),
                msg: Msg::Probe { op, term },
            });
        }
        true
    }

    /// Deliver messages oldest-first until the queue drains (skipping
    /// coordinator-bound messages while it is down). Deterministic; for
    /// directed tests that want a settled state, not for exploration.
    pub fn settle(&mut self) {
        loop {
            let Some(slot) = (0..self.queue.len()).find(|s| self.deliverable(*s)) else {
                return;
            };
            self.deliver(slot);
        }
    }

    // ------------------------------------------------------------------
    // Message handlers
    // ------------------------------------------------------------------

    fn deliver_to_coord(&mut self, msg: Msg) {
        let Some(coord) = self.coord.as_mut() else {
            return;
        };
        match msg {
            Msg::Reserve {
                op,
                shard,
                user,
                role,
            } => {
                match coord.reserve(shard, op, user, role, self.now) {
                    ReserveOutcome::Granted { epoch, external } => {
                        let term = coord.term();
                        if self.ack_on_reserve {
                            // The seeded bug: tell the client "done" the
                            // moment the slot is promised.
                            if let Some(rec) = self.records.get_mut(&op) {
                                rec.acked = true;
                            }
                        }
                        self.queue.push(Envelope {
                            to: Dest::Shard(shard),
                            msg: Msg::Grant {
                                op,
                                term,
                                epoch,
                                external,
                            },
                        });
                    }
                    ReserveOutcome::Refused { epoch, external } => {
                        let term = coord.term();
                        self.queue.push(Envelope {
                            to: Dest::Shard(shard),
                            msg: Msg::Refuse {
                                op,
                                term,
                                epoch,
                                external,
                            },
                        });
                    }
                    // The shard is fenced out; its parked op will be
                    // killed by the fence already in flight to it.
                    ReserveOutcome::Deferred => {}
                }
                self.seed = coord.seed();
            }
            Msg::Commit { op, activated } => coord.commit(op, activated),
            Msg::Release {
                shard,
                user,
                role,
                active,
            } => coord.sync_member(shard, user, role, active),
            Msg::ProbeReply {
                op,
                applied,
                activated,
            } => coord.resolve_probe(op, applied, activated),
            Msg::FenceAck {
                shard,
                term,
                members,
            } => coord.fence_ack(shard, term, members),
            Msg::Grant { .. } | Msg::Refuse { .. } | Msg::Probe { .. } | Msg::Fence { .. } => {
                unreachable!("coordinator-originated message addressed to the coordinator")
            }
        }
    }

    fn deliver_to_shard(&mut self, shard: usize, msg: Msg) {
        match msg {
            Msg::Grant {
                op, term, external, ..
            } => {
                if term != self.shards[shard].term || self.shards[shard].dead.contains(&op) {
                    return;
                }
                let Some(parked) = self.shards[shard].parked.remove(&op) else {
                    return;
                };
                let resolution = self.apply_client_op(
                    shard,
                    ClientOp::AddRole(parked.user, parked.role),
                    Some(external),
                );
                let activated = matches!(resolution, OpResolution::Applied { activated: true });
                if let Some(rec) = self.records.get_mut(&op) {
                    rec.acked = true;
                    rec.resolution = Some(resolution);
                }
                self.queue.push(Envelope {
                    to: Dest::Coord,
                    msg: Msg::Commit { op, activated },
                });
            }
            Msg::Refuse {
                op, term, external, ..
            } => {
                if term != self.shards[shard].term || self.shards[shard].dead.contains(&op) {
                    return;
                }
                let Some(parked) = self.shards[shard].parked.remove(&op) else {
                    return;
                };
                // Apply under the frozen view: the engine's own cap rule
                // turns this into an ordinary audited denial.
                let resolution = self.apply_client_op(
                    shard,
                    ClientOp::AddRole(parked.user, parked.role),
                    Some(external),
                );
                debug_assert!(
                    !matches!(resolution, OpResolution::Applied { activated: true }),
                    "a refused op must be denied by the frozen external view"
                );
                if let Some(rec) = self.records.get_mut(&op) {
                    rec.acked = true;
                    rec.resolution = Some(resolution);
                }
            }
            Msg::Probe { op, .. } => {
                let node = &mut self.shards[shard];
                let reply = if node.parked.remove(&op).is_some() {
                    // Kill it: answering "not applied" is a promise.
                    node.dead.insert(op);
                    Msg::ProbeReply {
                        op,
                        applied: false,
                        activated: false,
                    }
                } else {
                    match self.records.get(&op).and_then(|r| r.resolution) {
                        Some(OpResolution::Applied { activated }) => Msg::ProbeReply {
                            op,
                            applied: true,
                            activated,
                        },
                        Some(OpResolution::Denied) => Msg::ProbeReply {
                            op,
                            applied: true,
                            activated: false,
                        },
                        None => Msg::ProbeReply {
                            op,
                            applied: false,
                            activated: false,
                        },
                    }
                };
                self.queue.push(Envelope {
                    to: Dest::Coord,
                    msg: reply,
                });
            }
            Msg::Fence { term } => {
                let node = &mut self.shards[shard];
                if term <= node.term {
                    return;
                }
                node.term = term;
                let killed: Vec<OpToken> = node.parked.keys().copied().collect();
                node.dead.extend(killed);
                node.parked.clear();
                let members = membership_of(node.eng.engine(), &self.plan.membership);
                self.queue.push(Envelope {
                    to: Dest::Coord,
                    msg: Msg::FenceAck {
                        shard,
                        term,
                        members,
                    },
                });
            }
            Msg::Reserve { .. }
            | Msg::Commit { .. }
            | Msg::Release { .. }
            | Msg::ProbeReply { .. }
            | Msg::FenceAck { .. } => {
                unreachable!("shard-originated message addressed to a shard")
            }
        }
    }

    /// Run a client op against `shard`'s engine, injecting `external`
    /// first when the op is constrained, and emit membership syncs for
    /// every tracked-role change except the constrained role itself
    /// (whose change travels in the `Commit`).
    fn apply_client_op(
        &mut self,
        shard: usize,
        op: ClientOp,
        external: Option<BTreeMap<RoleId, usize>>,
    ) -> OpResolution {
        let constrained_role = match op {
            ClientOp::AddRole(_, r) if external.is_some() => Some(r),
            _ => None,
        };
        let user = match op {
            ClientOp::CreateSession(u)
            | ClientOp::DeleteSession(u)
            | ClientOp::AddRole(u, _)
            | ClientOp::DropRole(u, _) => u,
        };
        let had_external = external.is_some();
        let node = &mut self.shards[shard];
        if let Some(map) = external {
            node.eng.engine_mut().set_external_active(map);
        }
        let before = Self::tracked_roles(node.eng.engine(), &self.plan, user);
        let ok = match op {
            ClientOp::CreateSession(u) => match node.eng.create_session(u, &[]) {
                Ok(sid) => {
                    self.sessions.insert(u, sid);
                    true
                }
                Err(_) => false,
            },
            ClientOp::DeleteSession(u) => match self.sessions.get(&u) {
                Some(&sid) => {
                    let ok = node.eng.delete_session(u, sid).is_ok();
                    if ok {
                        self.sessions.remove(&u);
                    }
                    ok
                }
                None => false,
            },
            ClientOp::AddRole(u, r) => match self.sessions.get(&u) {
                Some(&sid) => node.eng.add_active_role(u, sid, r).is_ok(),
                None => false,
            },
            ClientOp::DropRole(u, r) => match self.sessions.get(&u) {
                Some(&sid) => node.eng.drop_active_role(u, sid, r).is_ok(),
                None => false,
            },
        };
        let after = Self::tracked_roles(self.shards[shard].eng.engine(), &self.plan, user);
        // The frozen view was for this one op only; a lingering bias
        // would distort later unconstrained reads on this shard.
        if had_external {
            self.shards[shard]
                .eng
                .engine_mut()
                .set_external_active(BTreeMap::new());
        }
        let mut activated = false;
        for gained in after.difference(&before) {
            if Some(*gained) == constrained_role {
                activated = true;
            } else {
                self.queue.push(Envelope {
                    to: Dest::Coord,
                    msg: Msg::Release {
                        shard,
                        user,
                        role: *gained,
                        active: true,
                    },
                });
            }
        }
        for lost in before.difference(&after) {
            self.queue.push(Envelope {
                to: Dest::Coord,
                msg: Msg::Release {
                    shard,
                    user,
                    role: *lost,
                    active: false,
                },
            });
        }
        if ok {
            OpResolution::Applied { activated }
        } else {
            OpResolution::Denied
        }
    }

    fn tracked_roles(engine: &Engine, plan: &ShardPlan, user: UserId) -> BTreeSet<RoleId> {
        engine
            .system()
            .active_roles_of_user(user)
            .map(|active| plan.tracked(&active))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capped_graph() -> PolicyGraph {
        let mut g = PolicyGraph::new("group");
        g.role("Auditor").max_active_users = Some(1);
        g.role("Clerk");
        for (u, s) in [("u_a", 0), ("u_b", 1)] {
            // Names chosen so the two users land on different shards of a
            // 2-ring is *not* guaranteed; tests look placement up.
            let _ = s;
            g.user(u);
            g.assign(u, "Auditor");
            g.assign(u, "Clerk");
        }
        g
    }

    /// Two users racing for a cap-1 role through the full message
    /// protocol: exactly one activation commits, regardless of which
    /// reserve reaches the coordinator first.
    #[test]
    fn racing_capped_activations_commit_exactly_once() {
        let g = capped_graph();
        let group0 = ShardGroup::new(&g, 2, vec![], 10, false).unwrap();
        let a = group0.user_id("u_a").unwrap();
        let b = group0.user_id("u_b").unwrap();
        let auditor = group0.role_id("Auditor").unwrap();
        let script = vec![
            ClientOp::CreateSession(a),
            ClientOp::CreateSession(b),
            ClientOp::AddRole(a, auditor),
            ClientOp::AddRole(b, auditor),
        ];
        let mut group = ShardGroup::new(&g, 2, script, 10, false).unwrap();
        for _ in 0..4 {
            group.submit_next();
        }
        group.settle();
        assert!(group.quiescent());
        assert_eq!(group.global_active(auditor), 1, "cap 1 must hold");
        assert_eq!(group.coordinator_coherent(), None);
        let outcomes: Vec<_> = group
            .records()
            .values()
            .filter(|r| r.desc.contains("activates"))
            .map(|r| r.resolution)
            .collect();
        assert!(outcomes.contains(&Some(OpResolution::Applied { activated: true })));
        assert!(outcomes.contains(&Some(OpResolution::Denied)));
    }

    /// A reservation orphaned by a coordinator-bound commit loss resolves
    /// through the probe path without double-counting the slot.
    #[test]
    fn fence_after_crash_reconciles_membership() {
        let g = capped_graph();
        let probe = ShardGroup::new(&g, 2, vec![], 10, false).unwrap();
        let a = probe.user_id("u_a").unwrap();
        let auditor = probe.role_id("Auditor").unwrap();
        let script = vec![ClientOp::CreateSession(a), ClientOp::AddRole(a, auditor)];
        let mut group = ShardGroup::new(&g, 2, script, 10, false).unwrap();
        group.submit_next();
        group.submit_next();
        group.settle();
        assert_eq!(group.global_active(auditor), 1);
        assert!(group.crash_coordinator());
        assert!(group.restart_coordinator());
        group.settle();
        assert!(group.quiescent());
        assert_eq!(
            group.coordinator_coherent(),
            None,
            "fence acks must rebuild the membership view from ground truth"
        );
        assert_eq!(group.lost_acked_op(), None);
    }
}
