//! Consistent-hash placement of users onto shards.
//!
//! Users (and therefore their sessions, which RBAC ties to exactly one
//! user) are placed by hashing the user id onto a ring of virtual nodes.
//! Virtual nodes smooth the distribution — with `VNODES` points per
//! shard the heaviest shard carries only a few percent more users than
//! the mean — and keep placement *stable*: growing from N to N+1 shards
//! moves only the keys that land in the new shard's arcs, which matters
//! for operational resharding even though this crate only ever builds a
//! fixed-size group.
//!
//! The mix function is a local Fibonacci/xor finalizer (SplitMix64's
//! output stage); no external hash crate, no process-global seeding, so
//! placement is deterministic across runs and platforms — a property the
//! equivalence suite and the model checker both lean on.

use rbac::UserId;

/// Virtual nodes per shard on the ring.
const VNODES: usize = 64;

/// Finalizing 64-bit mixer (the SplitMix64 output permutation). Full
/// avalanche: every input bit flips each output bit with probability
/// ~1/2, which is what lets dense, sequential user ids spread uniformly
/// over the ring.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fixed ring of `shards × VNODES` points; lookup is a binary search
/// over the sorted point list.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Build the ring for `shards` shards (`shards ≥ 1`).
    pub fn new(shards: usize) -> Ring {
        assert!(shards >= 1, "a shard group needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for v in 0..VNODES {
                // Distinct stream per (shard, vnode); the odd multiplier
                // keeps streams from colliding for small indices.
                let key = (shard as u64) << 32 | v as u64;
                points.push((mix64(key.wrapping_mul(0x2545_f491_4f6c_dd1d)), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Ring { points, shards }
    }

    /// Number of shards in the group.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `user`: the first ring point at or after the
    /// user's hash, wrapping at the top.
    pub fn shard_of(&self, user: UserId) -> usize {
        let h = mix64(user.0 as u64);
        let i = match self.points.binary_search_by(|p| p.0.cmp(&h)) {
            Ok(i) => i,
            Err(i) => i,
        };
        self.points[i % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new(1);
        for u in 0..1000 {
            assert_eq!(ring.shard_of(UserId(u)), 0);
        }
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = Ring::new(8);
        let b = Ring::new(8);
        for u in 0..10_000 {
            let s = a.shard_of(UserId(u));
            assert_eq!(s, b.shard_of(UserId(u)));
            assert!(s < 8);
        }
    }

    #[test]
    fn vnodes_balance_the_load() {
        let ring = Ring::new(8);
        let mut counts = [0usize; 8];
        for u in 0..80_000 {
            counts[ring.shard_of(UserId(u))] += 1;
        }
        let mean = 80_000 / 8;
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > mean / 2 && c < mean * 2,
                "shard {shard} got {c} of 80000 users (mean {mean})"
            );
        }
    }
}
