//! The sharding plan: which roles the coordinator must track, and the
//! static *license* that the policy is shardable at all.
//!
//! The plan is derived from two sources and checked against a third:
//!
//! * the [`policy::PolicyGraph`] names the roles with cross-user
//!   semantics — activation caps (paper Rule 4), SSD sets and
//!   prerequisite targets (`RoleActiveAnywhere` reads);
//! * the effect analyzer's [`EffectReport::cross_user_footprints`]
//!   (PR 7) flags exactly the generated rules whose effective footprint
//!   spans users — every op dispatching only unflagged rules commutes
//!   freely across shards and never touches the coordinator;
//! * the license check walks the flagged rules and verifies each one's
//!   cross-user surface is of a *coordinable* shape (cap counters the
//!   coordinator owns, denial windows the front mirrors, global
//!   configuration the front broadcasts). Opaque footprints, host
//!   regions and `Any`-target per-user effects defeat routing, so a
//!   policy containing them is rejected up front instead of silently
//!   enforced wrong.

use policy::{AnalysisReport, EffectReport, PolicyGraph};
use rbac::{RoleId, UserId};
use sentinel::{Footprint, Region, Target};
use std::collections::{BTreeMap, BTreeSet};

/// Why a policy cannot be sharded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unshardable {
    /// The offending rules, each with the footprint feature that defeats
    /// routing.
    pub rules: Vec<(String, String)>,
}

impl std::fmt::Display for Unshardable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy is not shardable:")?;
        for (rule, why) in &self.rules {
            write!(f, " [{rule}: {why}]")?;
        }
        Ok(())
    }
}

/// The static sharding plan for one policy.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per-role activation caps (max distinct active users), by id.
    pub caps: BTreeMap<RoleId, usize>,
    /// Every role whose cross-shard membership the coordinator tracks:
    /// capped roles, SSD-set members, and prerequisite targets.
    pub membership: BTreeSet<RoleId>,
    /// The rules the analyzer flagged as spanning users — kept so suites
    /// can assert the license is non-vacuous (a capped policy must flag
    /// its cap rules).
    pub cross_user_rules: Vec<String>,
    /// Whether denials must be mirrored to the other shards (the policy
    /// has active-security specs whose conditions read the denial
    /// window). False for plain RBAC policies, making `checkAccess`
    /// entirely shard-local.
    pub mirror_denials: bool,
}

/// Resolve a role name against the engine's system, ignoring roles the
/// policy names but instantiation dropped (none today, but the plan must
/// not panic on them).
fn role_id(engine: &owte_core::Engine, name: &str) -> Option<RoleId> {
    engine.role_id(name).ok()
}

impl ShardPlan {
    /// Derive the plan for `graph` from `report` (the analysis of an
    /// engine instantiated from that same graph). Fails with the list of
    /// offending rules when a flagged footprint is not coordinable.
    pub fn from_policy(
        graph: &PolicyGraph,
        engine: &owte_core::Engine,
        report: &AnalysisReport,
    ) -> Result<ShardPlan, Unshardable> {
        let cross_user_rules = report.effects.cross_user_footprints();
        license(&report.effects, &cross_user_rules)?;

        let mut caps = BTreeMap::new();
        let mut membership = BTreeSet::new();
        for role in &graph.roles {
            if let (Some(max), Some(id)) = (role.max_active_users, role_id(engine, &role.name)) {
                caps.insert(id, max);
                membership.insert(id);
            }
        }
        for set in &graph.ssd {
            for name in &set.roles {
                membership.extend(role_id(engine, name));
            }
        }
        for p in &graph.prerequisites {
            membership.extend(role_id(engine, &p.requires_active));
        }

        Ok(ShardPlan {
            caps,
            membership,
            cross_user_rules,
            mirror_denials: !graph.security.is_empty(),
        })
    }

    /// Does activating `role` need a coordinator reservation? Only caps
    /// are slot-limited; membership-only roles (SSD members, prerequisite
    /// targets) propagate through the asynchronous membership sync.
    pub fn constrained(&self, role: RoleId) -> bool {
        self.caps.contains_key(&role)
    }

    /// The subset of `active` roles the coordinator tracks.
    pub fn tracked(&self, active: &BTreeSet<RoleId>) -> BTreeSet<RoleId> {
        active.intersection(&self.membership).copied().collect()
    }
}

/// Per-shard membership snapshot: for every tracked role, the distinct
/// users active in it on that shard. This is the ground truth a shard
/// reports at fence time and what global-op resyncs push wholesale.
pub fn membership_of(
    engine: &owte_core::Engine,
    tracked: &BTreeSet<RoleId>,
) -> BTreeMap<RoleId, BTreeSet<UserId>> {
    let sys = engine.system();
    let mut map: BTreeMap<RoleId, BTreeSet<UserId>> = BTreeMap::new();
    for s in sys.all_sessions() {
        let (Ok(user), Ok(roles)) = (sys.session_user(s), sys.session_roles(s)) else {
            continue;
        };
        for r in roles.intersection(tracked) {
            map.entry(*r).or_default().insert(user);
        }
    }
    map
}

/// Verify every flagged rule's cross-user surface is coordinable.
fn license(effects: &EffectReport, flagged: &[String]) -> Result<(), Unshardable> {
    let mut rules = Vec::new();
    for name in flagged {
        let Some(effect) = effects.effect_of(name) else {
            rules.push((name.clone(), "no effect entry in the report".to_string()));
            continue;
        };
        if let Some(why) = refuse(&effect.effective) {
            rules.push((name.clone(), why));
        }
    }
    if rules.is_empty() {
        Ok(())
    } else {
        Err(Unshardable { rules })
    }
}

/// The footprint features no coordinator protocol can route. Everything
/// else the flagged set can contain maps onto one of the three shard
/// mechanisms: `RoleActivation` reads/writes onto reserve/commit
/// counters, `DenialWindow` onto mirrored appends, and global-config
/// writes (`RoleStatus`, `SodState`, `TemporalWindows`, `ContextVars`,
/// `RuleToggles`) onto broadcast ops or documented per-shard toggles.
fn refuse(fp: &Footprint) -> Option<String> {
    if fp.opaque {
        return Some("opaque footprint (unknown custom check/action)".to_string());
    }
    let per_user_any = |r: &Region| {
        matches!(
            r,
            Region::SessionRoles(Target::Any)
                | Region::UserActivation(Target::Any)
                | Region::Assignments(Target::Any)
        )
    };
    for r in fp.reads.iter().chain(fp.writes.iter()) {
        if let Region::Host(name) = r {
            return Some(format!("host region `{name}` is not partitionable"));
        }
        if per_user_any(r) {
            return Some(format!("bulk per-user effect {r:?} defeats user routing"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use owte_core::Engine;
    use snoop::Ts;

    fn plan_for(graph: &PolicyGraph) -> ShardPlan {
        let engine = Engine::from_policy(graph, Ts::ZERO).unwrap();
        ShardPlan::from_policy(graph, &engine, &engine.analyze()).unwrap()
    }

    #[test]
    fn caps_and_ssd_members_are_tracked() {
        let mut g = PolicyGraph::new("plan");
        g.role("A").max_active_users = Some(1);
        g.role("B");
        g.role("C");
        g.ssd_set("no-ab", &["A", "B"], 2);
        let plan = plan_for(&g);
        assert_eq!(plan.caps.len(), 1);
        assert_eq!(plan.membership.len(), 2, "A (capped) and B (SSD member)");
        assert!(
            !plan.cross_user_rules.is_empty(),
            "the cap rule must be flagged by the analyzer — the license is not vacuous"
        );
    }

    #[test]
    fn plain_policy_needs_no_coordinator() {
        let mut g = PolicyGraph::new("plain");
        g.role("A");
        let plan = plan_for(&g);
        assert!(plan.caps.is_empty());
        assert!(plan.membership.is_empty());
        assert!(!plan.mirror_denials);
    }
}
