//! The cross-shard constraint coordinator.
//!
//! The coordinator owns exactly two pieces of state, both derived, both
//! reconstructible from the shards: per-role activation counters (as
//! per-shard membership sets, so releases are idempotent) and the
//! in-flight *reservations* of the two-phase reserve/commit protocol.
//! Everything else — sessions, assignments, audit, rules — lives on the
//! shards; ops whose effective footprint is single-user never come here.
//!
//! ## The reserve/commit protocol
//!
//! Activating a capped role is the one op that can violate a global
//! invariant through purely shard-local reasoning, so it is two-phase:
//!
//! 1. **Reserve.** The home shard asks for a slot. The coordinator
//!    checks `committed + pending < cap` and either *grants* (recording
//!    a pending reservation with a deadline) or *refuses*. Both answers
//!    carry an **epoch** — a monotone counter that totally orders every
//!    constrained decision — and a frozen **external view**: for each
//!    tracked role, how many distinct users are active in it outside
//!    the home shard (committed elsewhere plus every other pending
//!    reservation).
//! 2. **Apply.** The shard injects the external view into its engine
//!    ([`owte_core::Engine::set_external_active`]) and dispatches the op
//!    through the normal rule pool. A granted op passes the cap rule
//!    (its own slot is excluded from the view); a refused op is *denied
//!    by the engine itself* — the frozen view makes the cap condition
//!    false, so the denial takes the ordinary audited path.
//! 3. **Commit / abort.** The shard reports back whether the activation
//!    actually landed (the engine may deny for unrelated per-user
//!    reasons — DSD, user caps, temporal windows). Commit moves the
//!    reservation into the membership sets; abort just drops it.
//!
//! Cap safety is an invariant of this state machine: a reservation is
//! only granted under `committed + pending < cap`, converting pending to
//! committed preserves the sum, and releases only shrink it. No
//! interleaving of grants on different shards can overshoot, because
//! every grant holds a distinct slot from the moment it is promised.
//!
//! ## Orphans, probes and fencing
//!
//! A shard that crashes (or a front writer that panics) between reserve
//! and commit would leak its slot forever. Reservations therefore carry
//! a deadline (virtual time, supplied by the caller — nothing in this
//! crate reads a wall clock). An expired reservation is not silently
//! released: the coordinator first **probes** the shard, because the op
//! may have applied and only the commit message been lost — silently
//! releasing an applied op's slot would re-admit over the cap. Only a
//! "not applied" probe answer (the shard kills the parked op when it
//! answers) or a crash-fence releases the slot.
//!
//! After a coordinator crash the restarted instance (term bumped) knows
//! nothing: it **fences** every shard, refusing new reservations from a
//! shard until that shard acks the fence — killing its parked ops and
//! reporting its ground-truth membership. Late messages from the old
//! term are discarded by term tags on both sides.

use crate::plan::ShardPlan;
use rbac::{RoleId, UserId};
use std::collections::{BTreeMap, BTreeSet};

/// Token naming one constrained op end-to-end (reserve → commit).
pub type OpToken = u64;

/// One in-flight reservation: a promised cap slot not yet applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    /// Home shard of the reserving user.
    pub shard: usize,
    /// The reserving user.
    pub user: UserId,
    /// The capped role being activated.
    pub role: RoleId,
    /// Virtual-time deadline after which the coordinator probes.
    pub deadline: u64,
    /// The epoch stamped on the grant.
    pub epoch: u64,
    /// A probe is outstanding; don't probe again.
    pub probed: bool,
}

/// The coordinator's answer to a reserve request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReserveOutcome {
    /// Slot promised. Apply with `external` injected, then commit/abort.
    Granted {
        /// Epoch totally ordering this constrained op.
        epoch: u64,
        /// Frozen external activation counts for the home shard.
        external: BTreeMap<RoleId, usize>,
    },
    /// Cap exhausted. The frozen `external` view guarantees the engine
    /// denies the op through the ordinary rule path.
    Refused {
        /// Epoch totally ordering this constrained decision.
        epoch: u64,
        /// Frozen external activation counts for the home shard.
        external: BTreeMap<RoleId, usize>,
    },
    /// The coordinator restarted and this shard has not yet acked the
    /// fence; the request must wait (the async fabric parks it).
    Deferred,
}

/// Durable coordinator identity surviving crashes: what a restarted
/// instance must *not* reset, lest old-term messages be accepted or
/// epochs reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordSeed {
    /// Last term. The restart bumps it.
    pub term: u64,
    /// High-water epoch.
    pub epoch: u64,
    /// High-water op token.
    pub next_op: u64,
}

/// The coordinator state machine. Purely in-memory and single-threaded;
/// the concurrent front wraps it in a mutex, the sim fabric steps it
/// deterministically.
#[derive(Debug, Clone)]
pub struct Coordinator {
    shards: usize,
    caps: BTreeMap<RoleId, usize>,
    term: u64,
    epoch: u64,
    next_op: OpToken,
    /// Per-shard committed membership of every tracked role.
    members: Vec<BTreeMap<RoleId, BTreeSet<UserId>>>,
    pending: BTreeMap<OpToken, Reservation>,
    /// Shards that have acked the current term's fence.
    fenced: Vec<bool>,
    /// Reservation lifetime in virtual time units.
    timeout: u64,
}

impl Coordinator {
    /// A fresh coordinator for `shards` shards (all considered fenced —
    /// a newborn group has no history to reconcile).
    pub fn new(shards: usize, plan: &ShardPlan, timeout: u64) -> Coordinator {
        Coordinator {
            shards,
            caps: plan.caps.clone(),
            term: 1,
            epoch: 0,
            next_op: 0,
            members: vec![BTreeMap::new(); shards],
            pending: BTreeMap::new(),
            fenced: vec![true; shards],
            timeout,
        }
    }

    /// Restart after a crash: pending reservations are gone (that is the
    /// crash), identity comes from `seed` with the term bumped, and every
    /// shard is unfenced until it acks.
    pub fn restart(shards: usize, plan: &ShardPlan, timeout: u64, seed: CoordSeed) -> Coordinator {
        Coordinator {
            shards,
            caps: plan.caps.clone(),
            term: seed.term + 1,
            epoch: seed.epoch,
            next_op: seed.next_op,
            members: vec![BTreeMap::new(); shards],
            pending: BTreeMap::new(),
            fenced: vec![false; shards],
            timeout,
        }
    }

    /// The identity to persist before letting this instance serve.
    pub fn seed(&self) -> CoordSeed {
        CoordSeed {
            term: self.term,
            epoch: self.epoch,
            next_op: self.next_op,
        }
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// High-water epoch (last constrained decision).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mint the next op token.
    pub fn token(&mut self) -> OpToken {
        let t = self.next_op;
        self.next_op += 1;
        t
    }

    /// Has `shard` acked the current term's fence?
    pub fn is_fenced_in(&self, shard: usize) -> bool {
        self.fenced[shard]
    }

    /// All shards acked — safe to consider the view complete.
    pub fn all_fenced(&self) -> bool {
        self.fenced.iter().all(|f| *f)
    }

    /// Outstanding reservations (for invariant checks and fingerprints).
    pub fn pending(&self) -> &BTreeMap<OpToken, Reservation> {
        &self.pending
    }

    /// Committed membership of `role` on `shard` as this coordinator
    /// believes it (for quiescent-coherence checks).
    pub fn members_of(&self, shard: usize, role: RoleId) -> Option<&BTreeSet<UserId>> {
        self.members[shard].get(&role)
    }

    /// Every per-shard committed-membership column, in shard order (for
    /// state fingerprinting by the model checker).
    pub fn columns(&self) -> &[BTreeMap<RoleId, BTreeSet<UserId>>] {
        &self.members
    }

    /// The frozen external view for `shard`, excluding the `exclude`d
    /// ops' own reservations (one token for a plain activation, several
    /// for a multi-role session create): per tracked role, committed
    /// members on *other* shards plus every other pending reservation
    /// anywhere. Same-shard pendings count because they are not yet
    /// visible in the shard's local state; between their grant and their
    /// apply this double-counts nothing (they are in neither place) and
    /// after their apply it briefly counts them twice — an
    /// over-approximation that can only deny, never over-admit.
    pub fn external_for(&self, shard: usize, exclude: &[OpToken]) -> BTreeMap<RoleId, usize> {
        let mut out: BTreeMap<RoleId, usize> = BTreeMap::new();
        for (s, col) in self.members.iter().enumerate() {
            if s == shard {
                continue;
            }
            for (r, users) in col {
                if !users.is_empty() {
                    *out.entry(*r).or_insert(0) += users.len();
                }
            }
        }
        for (op, res) in &self.pending {
            if exclude.contains(op) {
                continue;
            }
            // A pending op whose user is already a committed member of
            // the role adds no *distinct* user.
            if !self.members[res.shard]
                .get(&res.role)
                .is_some_and(|m| m.contains(&res.user))
            {
                *out.entry(res.role).or_insert(0) += 1;
            }
        }
        out
    }

    /// Distinct users the coordinator believes hold `role` active,
    /// committed only.
    fn committed_total(&self, role: RoleId) -> usize {
        let mut users: BTreeSet<UserId> = BTreeSet::new();
        for col in &self.members {
            if let Some(m) = col.get(&role) {
                users.extend(m.iter().copied());
            }
        }
        users.len()
    }

    /// Handle a reserve request for op `op`: `user` on `shard` wants to
    /// activate capped `role` at virtual time `now`.
    pub fn reserve(
        &mut self,
        shard: usize,
        op: OpToken,
        user: UserId,
        role: RoleId,
        now: u64,
    ) -> ReserveOutcome {
        if !self.fenced[shard] {
            return ReserveOutcome::Deferred;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let already = self
            .members
            .iter()
            .any(|col| col.get(&role).is_some_and(|m| m.contains(&user)));
        let pending_new = self
            .pending
            .values()
            .filter(|r| {
                r.role == role
                    && !self.members[r.shard]
                        .get(&role)
                        .is_some_and(|m| m.contains(&r.user))
            })
            .count();
        let cap = self.caps.get(&role).copied().unwrap_or(usize::MAX);
        if !already && self.committed_total(role) + pending_new >= cap {
            return ReserveOutcome::Refused {
                epoch,
                external: self.external_for(shard, &[op]),
            };
        }
        self.pending.insert(
            op,
            Reservation {
                shard,
                user,
                role,
                deadline: now.saturating_add(self.timeout),
                epoch,
                probed: false,
            },
        );
        ReserveOutcome::Granted {
            epoch,
            external: self.external_for(shard, &[op]),
        }
    }

    /// The shard applied op `op`; `activated` says whether the user
    /// newly became active in the reserved role (the engine may have
    /// denied for per-user reasons, or the user was already active in it
    /// through another session).
    pub fn commit(&mut self, op: OpToken, activated: bool) {
        if let Some(res) = self.pending.remove(&op) {
            if activated {
                self.members[res.shard]
                    .entry(res.role)
                    .or_default()
                    .insert(res.user);
            }
        }
    }

    /// The op did not and will never apply; free the slot.
    pub fn abort(&mut self, op: OpToken) {
        self.pending.remove(&op);
    }

    /// Asynchronous membership sync from unconstrained ops: `user` on
    /// `shard` became (`active` = true) or stopped being active in
    /// tracked `role`. Idempotent; releases may lag safely (a stale
    /// positive count can only cause a conservative refusal).
    pub fn sync_member(&mut self, shard: usize, user: UserId, role: RoleId, active: bool) {
        let col = self.members[shard].entry(role).or_default();
        if active {
            col.insert(user);
        } else {
            col.remove(&user);
        }
    }

    /// Wholesale replacement of `shard`'s membership column (global-op
    /// resync, fence ack).
    pub fn sync_shard(&mut self, shard: usize, members: BTreeMap<RoleId, BTreeSet<UserId>>) {
        self.members[shard] = members;
    }

    /// Reservations past their deadline and not yet probed; marks them
    /// probed and returns `(op, shard)` pairs to send probes to.
    pub fn expired(&mut self, now: u64) -> Vec<(OpToken, usize)> {
        let mut out = Vec::new();
        for (op, res) in self.pending.iter_mut() {
            if now >= res.deadline && !res.probed {
                res.probed = true;
                out.push((*op, res.shard));
            }
        }
        out
    }

    /// Earliest outstanding deadline, if any (lets a virtual-time driver
    /// advance straight to the next interesting instant).
    pub fn next_deadline(&self) -> Option<u64> {
        self.pending
            .values()
            .filter(|r| !r.probed)
            .map(|r| r.deadline)
            .min()
    }

    /// A probe answer arrived: the shard either confirms the op applied
    /// (and whether it activated) or disclaims it (having killed the
    /// parked op so it can never apply later).
    pub fn resolve_probe(&mut self, op: OpToken, applied: bool, activated: bool) {
        if applied {
            self.commit(op, activated);
        } else {
            self.abort(op);
        }
    }

    /// A fence ack from `shard` for `term`: accept its ground-truth
    /// membership and open it for reservations. Stale-term acks are
    /// ignored.
    pub fn fence_ack(
        &mut self,
        shard: usize,
        term: u64,
        members: BTreeMap<RoleId, BTreeSet<UserId>>,
    ) {
        if term == self.term {
            self.members[shard] = members;
            self.fenced[shard] = true;
        }
    }

    /// Number of shards this coordinator serves.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(cap: usize) -> ShardPlan {
        ShardPlan {
            caps: [(RoleId(0), cap)].into_iter().collect(),
            membership: [RoleId(0)].into_iter().collect(),
            cross_user_rules: vec!["cap".into()],
            mirror_denials: false,
        }
    }

    fn granted(o: &ReserveOutcome) -> bool {
        matches!(o, ReserveOutcome::Granted { .. })
    }

    #[test]
    fn racing_reservations_cannot_overshoot_the_cap() {
        let mut c = Coordinator::new(2, &plan(1), 10);
        let (a, b) = (c.token(), c.token());
        let first = c.reserve(0, a, UserId(0), RoleId(0), 0);
        let second = c.reserve(1, b, UserId(1), RoleId(0), 0);
        assert!(granted(&first));
        assert!(
            matches!(second, ReserveOutcome::Refused { ref external, .. }
                if external.get(&RoleId(0)) == Some(&1)),
            "the pending slot must already count against the second shard"
        );
        c.commit(a, true);
        // The slot stays held after commit; a retry still refuses.
        let c2 = c.token();
        assert!(!granted(&c.reserve(1, c2, UserId(1), RoleId(0), 0)));
    }

    #[test]
    fn abort_and_release_free_the_slot() {
        let mut c = Coordinator::new(2, &plan(1), 10);
        let a = c.token();
        assert!(granted(&c.reserve(0, a, UserId(0), RoleId(0), 0)));
        c.abort(a);
        let b = c.token();
        assert!(granted(&c.reserve(1, b, UserId(1), RoleId(0), 0)));
        c.commit(b, true);
        c.sync_member(1, UserId(1), RoleId(0), false);
        let d = c.token();
        assert!(granted(&c.reserve(0, d, UserId(0), RoleId(0), 0)));
    }

    #[test]
    fn expiry_probes_once_and_resolution_is_final() {
        let mut c = Coordinator::new(1, &plan(2), 5);
        let a = c.token();
        assert!(granted(&c.reserve(0, a, UserId(0), RoleId(0), 0)));
        assert_eq!(c.expired(4), vec![]);
        assert_eq!(c.expired(5), vec![(a, 0)]);
        assert_eq!(
            c.expired(6),
            vec![],
            "probed reservations are not re-probed"
        );
        // The shard says the op actually applied: the slot converts, not
        // releases.
        c.resolve_probe(a, true, true);
        assert!(c.members_of(0, RoleId(0)).is_some_and(|m| m.len() == 1));
    }

    #[test]
    fn restart_fences_and_reconciles() {
        let mut c = Coordinator::new(2, &plan(1), 10);
        let a = c.token();
        assert!(granted(&c.reserve(0, a, UserId(0), RoleId(0), 0)));
        let seed = c.seed();
        let mut c = Coordinator::restart(2, &plan(1), 10, seed);
        assert_eq!(c.term(), seed.term + 1);
        let b = c.token();
        assert!(
            matches!(
                c.reserve(1, b, UserId(1), RoleId(0), 0),
                ReserveOutcome::Deferred
            ),
            "unfenced shards must wait"
        );
        c.fence_ack(1, c.term(), BTreeMap::new());
        c.fence_ack(0, c.term() - 1, BTreeMap::new());
        assert!(c.is_fenced_in(1));
        assert!(!c.is_fenced_in(0), "stale-term acks are discarded");
        let d = c.token();
        assert!(granted(&c.reserve(1, d, UserId(1), RoleId(0), 0)));
    }
}
