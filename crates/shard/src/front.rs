//! The concurrent sharded front: N independent durable engines behind
//! per-shard locks, one small coordinator mutex for constrained ops.
//!
//! [`ShardedEngine`] is the deployable counterpart of the deterministic
//! [`crate::group::ShardGroup`]: same [`crate::coord::Coordinator`],
//! same external-view injection, but driven synchronously by concurrent
//! callers instead of an explicit message scheduler. Each shard owns a
//! full [`owte_core::DurableEngine`] — its own WAL, snapshot cadence and
//! compiled dispatch plan — so unconstrained ops on different shards
//! proceed with zero shared state beyond the brief coordinator touch
//! that constrained ops make.
//!
//! ## Locking discipline
//!
//! A thread never holds two locks at once: constrained ops go
//! coordinator → (release) → shard → (release) → coordinator, and
//! global ops take shard locks strictly one at a time in index order
//! before a final coordinator resync. This makes deadlock impossible by
//! construction and keeps the coordinator critical sections O(tracked
//! roles), never O(engine).
//!
//! A writer that panics between reserve and commit would orphan its
//! slot; the front frees it *eagerly* (no timeout needed in-process)
//! with a drop guard that aborts the reservation during unwind — the
//! in-flight-crash analogue of the probe/timeout path the asynchronous
//! fabric model-checks.
//!
//! ## Audit semantics
//!
//! Per-user decision and audit semantics are exactly the single
//! engine's: a user's ops all land on their home shard, in invocation
//! order, so the home shard's audit log *is* the user's audit stream.
//! For a total order across shards, every op is stamped with its
//! shard-local audit range ([`OpStamp`]) and constrained ops carry the
//! coordinator epoch minted at reservation time — the linearization
//! point at which the slot decision was made.

use crate::coord::{Coordinator, OpToken, ReserveOutcome};
use crate::plan::{membership_of, ShardPlan, Unshardable};
use crate::ring::Ring;
use owte_core::{DurableConfig, DurableEngine, DurableError, Engine, MemStorage};
use parking_lot::Mutex;
use policy::PolicyGraph;
use rbac::{ObjId, OpId, RoleId, SessionId, UserId};
use snoop::{Dur, Ts};
use std::collections::{BTreeMap, BTreeSet};

/// A session handle in a sharded group: the owning shard plus the
/// shard-local session id. Shard-local ids collide across shards, so the
/// pair is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardSession {
    /// The home shard (of the session's user).
    pub shard: usize,
    /// The shard-local session id.
    pub session: SessionId,
}

/// One front op's mark in a shard's audit stream: the half-open entry
/// range it appended, plus the coordinator epoch when it was a
/// constrained op. Sorting constrained stamps by epoch across shards
/// yields the protocol's total order on constrained decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStamp {
    /// First audit entry index written by this op.
    pub from: usize,
    /// One past the last audit entry index.
    pub to: usize,
    /// The coordinator epoch, for constrained ops.
    pub epoch: Option<u64>,
}

/// Construction failure: the policy itself cannot be sharded.
#[derive(Debug)]
pub enum ShardError {
    /// A flagged rule's footprint defeats routing.
    Unshardable(Unshardable),
    /// A shard engine failed to instantiate.
    Durable(DurableError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Unshardable(u) => write!(f, "{u}"),
            ShardError::Durable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

struct Cell {
    eng: DurableEngine<MemStorage>,
    stamps: Vec<OpStamp>,
}

/// The concurrent sharded engine front. See the module docs.
pub struct ShardedEngine {
    ring: Ring,
    plan: ShardPlan,
    cells: Vec<Mutex<Cell>>,
    coord: Mutex<Coordinator>,
}

/// Frees a granted reservation if the applying writer unwinds before
/// committing: the coroner for in-process shard "crashes".
struct AbortGuard<'a> {
    coord: &'a Mutex<Coordinator>,
    tokens: Vec<OpToken>,
    armed: bool,
}

impl AbortGuard<'_> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut coord = self.coord.lock();
            for t in &self.tokens {
                coord.abort(*t);
            }
        }
    }
}

impl ShardedEngine {
    /// Build `shards` engines over `graph`, starting clocks at `start`.
    /// Fails when the policy's flagged rules are not coordinable.
    pub fn new(graph: &PolicyGraph, shards: usize, start: Ts) -> Result<ShardedEngine, ShardError> {
        let cells: Vec<Mutex<Cell>> = (0..shards)
            .map(|_| {
                DurableEngine::create(MemStorage::new(), graph, start, DurableConfig::default())
                    .map(|eng| {
                        Mutex::new(Cell {
                            eng,
                            stamps: Vec::new(),
                        })
                    })
                    .map_err(ShardError::Durable)
            })
            .collect::<Result<_, _>>()?;
        let plan = {
            let cell = cells[0].lock();
            let engine = cell.eng.engine();
            ShardPlan::from_policy(graph, engine, &engine.analyze())
                .map_err(ShardError::Unshardable)?
        };
        let coord = Mutex::new(Coordinator::new(shards, &plan, u64::MAX));
        Ok(ShardedEngine {
            ring: Ring::new(shards),
            plan,
            cells,
            coord,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The sharding plan in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The home shard of `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        self.ring.shard_of(user)
    }

    /// The coordinator's high-water epoch (total-order position of the
    /// last constrained decision).
    pub fn epoch(&self) -> u64 {
        self.coord.lock().epoch()
    }

    /// Resolve a user name (vocabulary is identical on every shard).
    pub fn user_id(&self, name: &str) -> Result<UserId, DurableError> {
        self.cells[0].lock().eng.user_id(name)
    }

    /// Resolve a role name.
    pub fn role_id(&self, name: &str) -> Result<RoleId, DurableError> {
        self.cells[0].lock().eng.role_id(name)
    }

    /// Look up an operation and object by name, as `check_access` wants
    /// them.
    pub fn perm_ids(&self, op: &str, obj: &str) -> Option<(OpId, ObjId)> {
        let cell = self.cells[0].lock();
        let sys = cell.eng.engine().system();
        Some((sys.op_by_name(op).ok()?, sys.obj_by_name(obj).ok()?))
    }

    /// Run `f` against `shard`'s engine under its lock (state
    /// inspection for suites and benches).
    pub fn with_engine<R>(&self, shard: usize, f: impl FnOnce(&Engine) -> R) -> R {
        f(self.cells[shard].lock().eng.engine())
    }

    /// Copy of `shard`'s per-op audit stamps.
    pub fn stamps(&self, shard: usize) -> Vec<OpStamp> {
        self.cells[shard].lock().stamps.clone()
    }

    /// Total journaled ops across all shards (each shard's WAL is
    /// independent; this is the aggregate mutation count).
    pub fn op_count(&self) -> u64 {
        self.cells.iter().map(|c| c.lock().eng.op_count()).sum()
    }

    /// `user` opens a session with `initial` roles, which may include
    /// constrained ones (each is reserved before the engine sees the
    /// op).
    pub fn create_session(
        &self,
        user: UserId,
        initial: &[RoleId],
    ) -> Result<ShardSession, DurableError> {
        let shard = self.ring.shard_of(user);
        let constrained: Vec<RoleId> = initial
            .iter()
            .copied()
            .filter(|r| self.plan.constrained(*r))
            .collect();
        if constrained.is_empty() {
            let session =
                self.mutate(shard, user, None, |eng| eng.create_session(user, initial))?;
            return Ok(ShardSession { shard, session });
        }
        let (tokens, external, epoch) = self.reserve_all(shard, user, &constrained);
        let guard = AbortGuard {
            coord: &self.coord,
            tokens: tokens
                .iter()
                .filter_map(|t| t.granted.then_some(t.token))
                .collect(),
            armed: true,
        };
        let result = self.mutate(shard, user, Some((constrained, external, epoch)), |eng| {
            eng.create_session(user, initial)
        });
        self.settle_reservations(shard, user, &tokens);
        guard.disarm();
        result.map(|session| ShardSession { shard, session })
    }

    /// `user` closes `sess`.
    pub fn delete_session(&self, user: UserId, sess: ShardSession) -> Result<(), DurableError> {
        self.mutate(sess.shard, user, None, |eng| {
            eng.delete_session(user, sess.session)
        })
    }

    /// `user` activates `role` in `sess` — the constrained op when the
    /// role is capped or prerequisite-consulting.
    pub fn add_active_role(
        &self,
        user: UserId,
        sess: ShardSession,
        role: RoleId,
    ) -> Result<(), DurableError> {
        if !self.plan.constrained(role) {
            return self.mutate(sess.shard, user, None, |eng| {
                eng.add_active_role(user, sess.session, role)
            });
        }
        let (tokens, external, epoch) = self.reserve_all(sess.shard, user, &[role]);
        let guard = AbortGuard {
            coord: &self.coord,
            tokens: tokens
                .iter()
                .filter_map(|t| t.granted.then_some(t.token))
                .collect(),
            armed: true,
        };
        let result = self.mutate(
            sess.shard,
            user,
            Some((vec![role], external, epoch)),
            |eng| eng.add_active_role(user, sess.session, role),
        );
        self.settle_reservations(sess.shard, user, &tokens);
        guard.disarm();
        result
    }

    /// `user` deactivates `role` in `sess`. Never constrained: the
    /// counter decrement travels as an asynchronous-safe membership sync.
    pub fn drop_active_role(
        &self,
        user: UserId,
        sess: ShardSession,
        role: RoleId,
    ) -> Result<(), DurableError> {
        self.mutate(sess.shard, user, None, |eng| {
            eng.drop_active_role(user, sess.session, role)
        })
    }

    /// `sess` requests `(op, obj)`. Entirely shard-local unless the
    /// policy has active-security rules, in which case a denial is
    /// mirrored into every other shard's denial window (history only —
    /// threshold rules there fire at their own next denial).
    pub fn check_access(
        &self,
        sess: ShardSession,
        op: OpId,
        obj: ObjId,
    ) -> Result<bool, DurableError> {
        let (result, at) = {
            let mut cell = self.cells[sess.shard].lock();
            let from = cell.eng.engine().log().len();
            let result = cell.eng.check_access(sess.session, op, obj);
            let to = cell.eng.engine().log().len();
            cell.stamps.push(OpStamp {
                from,
                to,
                epoch: None,
            });
            (result, cell.eng.engine().now())
        };
        if self.plan.mirror_denials && matches!(result, Ok(false)) {
            for (s, cell) in self.cells.iter().enumerate() {
                if s != sess.shard {
                    cell.lock().eng.engine_mut().note_external_denial(at);
                }
            }
        }
        result
    }

    /// Advance every shard's clock by `d` (index order), then resync the
    /// coordinator wholesale — timers may have expired activations
    /// without any per-op membership sync.
    pub fn advance(&self, d: Dur) -> Result<(), DurableError> {
        self.broadcast(|eng| {
            let to = eng.engine().now() + d;
            eng.advance_to(to)
        })
    }

    /// Set a context variable on every shard, then resync.
    pub fn set_context(&self, key: &str, value: &str) -> Result<(), DurableError> {
        self.broadcast(|eng| eng.set_context(key, value))
    }

    fn broadcast(
        &self,
        f: impl Fn(&mut DurableEngine<MemStorage>) -> Result<(), DurableError>,
    ) -> Result<(), DurableError> {
        let mut columns = Vec::with_capacity(self.cells.len());
        let mut first_err = None;
        for cell in &self.cells {
            let mut cell = cell.lock();
            let from = cell.eng.engine().log().len();
            let r = f(&mut cell.eng);
            let to = cell.eng.engine().log().len();
            cell.stamps.push(OpStamp {
                from,
                to,
                epoch: None,
            });
            columns.push(membership_of(cell.eng.engine(), &self.plan.membership));
            if let (Err(e), None) = (r, &first_err) {
                first_err = Some(e);
            }
        }
        let mut coord = self.coord.lock();
        for (s, col) in columns.into_iter().enumerate() {
            coord.sync_shard(s, col);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Reserve a slot for each constrained role, then compute one frozen
    /// external view excluding all of this op's own reservations.
    fn reserve_all(
        &self,
        shard: usize,
        user: UserId,
        roles: &[RoleId],
    ) -> (Vec<Held>, BTreeMap<RoleId, usize>, u64) {
        let mut coord = self.coord.lock();
        let mut held = Vec::with_capacity(roles.len());
        let mut epoch = 0;
        for role in roles {
            let token = coord.token();
            let granted = match coord.reserve(shard, token, user, *role, 0) {
                ReserveOutcome::Granted { epoch: e, .. } => {
                    epoch = e;
                    true
                }
                ReserveOutcome::Refused { epoch: e, .. } => {
                    epoch = e;
                    false
                }
                ReserveOutcome::Deferred => {
                    unreachable!("the in-process front never fences a shard out")
                }
            };
            held.push(Held {
                token,
                role: *role,
                granted,
            });
        }
        let exclude: Vec<OpToken> = held.iter().map(|h| h.token).collect();
        let external = coord.external_for(shard, &exclude);
        (held, external, epoch)
    }

    /// Commit or discard this op's reservations according to what
    /// actually changed, reading the post-state the `mutate` call left in
    /// its wake.
    fn settle_reservations(&self, shard: usize, user: UserId, held: &[Held]) {
        let after = {
            let cell = self.cells[shard].lock();
            Self::tracked_of(cell.eng.engine(), &self.plan, user)
        };
        let mut coord = self.coord.lock();
        for h in held {
            if h.granted {
                coord.commit(h.token, after.contains(&h.role));
            }
        }
    }

    /// The shared per-op skeleton: inject the external view when given,
    /// run the op under the shard lock, stamp its audit range, then sync
    /// tracked-membership changes to the coordinator. The constrained
    /// role's own change is *not* synced here — `settle_reservations`
    /// converts its pending slot instead, so the slot is never double
    /// counted.
    fn mutate<R>(
        &self,
        shard: usize,
        user: UserId,
        constrained: Option<(Vec<RoleId>, BTreeMap<RoleId, usize>, u64)>,
        f: impl FnOnce(&mut DurableEngine<MemStorage>) -> Result<R, DurableError>,
    ) -> Result<R, DurableError> {
        let epoch = constrained.as_ref().map(|(_, _, e)| *e);
        let reserved: BTreeSet<RoleId> = match &constrained {
            Some((roles, _, _)) => roles.iter().copied().collect(),
            None => BTreeSet::new(),
        };
        let (result, before, after) = {
            let mut cell = self.cells[shard].lock();
            if let Some((_, external, _)) = constrained {
                cell.eng.engine_mut().set_external_active(external);
            }
            let before = Self::tracked_of(cell.eng.engine(), &self.plan, user);
            let from = cell.eng.engine().log().len();
            let result = f(&mut cell.eng);
            let to = cell.eng.engine().log().len();
            cell.stamps.push(OpStamp { from, to, epoch });
            let after = Self::tracked_of(cell.eng.engine(), &self.plan, user);
            // The frozen view was for this one op only; a lingering bias
            // would distort later unconstrained reads on this shard.
            if epoch.is_some() {
                cell.eng.engine_mut().set_external_active(BTreeMap::new());
            }
            (result, before, after)
        };
        if before != after {
            let mut coord = self.coord.lock();
            for gained in after.difference(&before) {
                if !reserved.contains(gained) {
                    coord.sync_member(shard, user, *gained, true);
                }
            }
            for lost in before.difference(&after) {
                coord.sync_member(shard, user, *lost, false);
            }
        }
        result
    }

    fn tracked_of(engine: &Engine, plan: &ShardPlan, user: UserId) -> BTreeSet<RoleId> {
        engine
            .system()
            .active_roles_of_user(user)
            .map(|active| plan.tracked(&active))
            .unwrap_or_default()
    }
}

/// One reserved slot of a constrained front op.
struct Held {
    token: OpToken,
    role: RoleId,
    granted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> PolicyGraph {
        let mut g = PolicyGraph::new("front");
        g.role("Auditor").max_active_users = Some(1);
        g.role("Clerk");
        for u in ["dana", "erin", "finn"] {
            g.user(u);
            g.assign(u, "Auditor");
            g.assign(u, "Clerk");
        }
        g
    }

    #[test]
    fn cap_holds_across_shards_and_slot_frees_on_drop() {
        let front = ShardedEngine::new(&graph(), 4, Ts::ZERO).unwrap();
        let auditor = front.role_id("Auditor").unwrap();
        let dana = front.user_id("dana").unwrap();
        let erin = front.user_id("erin").unwrap();
        let s_d = front.create_session(dana, &[]).unwrap();
        let s_e = front.create_session(erin, &[]).unwrap();
        front.add_active_role(dana, s_d, auditor).unwrap();
        assert!(
            front.add_active_role(erin, s_e, auditor).is_err(),
            "cap 1 must deny the second user even from another shard"
        );
        front.drop_active_role(dana, s_d, auditor).unwrap();
        front.add_active_role(erin, s_e, auditor).unwrap();
    }

    #[test]
    fn constrained_ops_are_epoch_stamped() {
        let front = ShardedEngine::new(&graph(), 2, Ts::ZERO).unwrap();
        let auditor = front.role_id("Auditor").unwrap();
        let dana = front.user_id("dana").unwrap();
        let s = front.create_session(dana, &[]).unwrap();
        front.add_active_role(dana, s, auditor).unwrap();
        let stamps = front.stamps(s.shard);
        let constrained: Vec<_> = stamps.iter().filter(|s| s.epoch.is_some()).collect();
        assert_eq!(constrained.len(), 1);
        assert!(front.epoch() >= 1);
        assert!(
            stamps.iter().all(|s| s.to >= s.from),
            "audit ranges are well-formed"
        );
    }

    #[test]
    fn session_create_with_capped_initial_role_reserves() {
        let front = ShardedEngine::new(&graph(), 2, Ts::ZERO).unwrap();
        let auditor = front.role_id("Auditor").unwrap();
        let dana = front.user_id("dana").unwrap();
        let erin = front.user_id("erin").unwrap();
        let _s = front.create_session(dana, &[auditor]).unwrap();
        let s_e = front.create_session(erin, &[]).unwrap();
        assert!(
            front.add_active_role(erin, s_e, auditor).is_err(),
            "the initial-role activation must hold the slot"
        );
    }

    #[test]
    fn panicking_writer_frees_its_reservation() {
        let front = std::sync::Arc::new(ShardedEngine::new(&graph(), 2, Ts::ZERO).unwrap());
        let auditor = front.role_id("Auditor").unwrap();
        let dana = front.user_id("dana").unwrap();
        let erin = front.user_id("erin").unwrap();
        let s_e = front.create_session(erin, &[]).unwrap();
        // A session handle pointing at the wrong shard makes the engine
        // call fail inside `mutate` *after* the reservation was granted;
        // an unwinding variant of the same shape is what the drop guard
        // exists for. Simulate the unwind directly:
        let f2 = front.clone();
        let bogus = ShardSession {
            shard: front.shard_of(dana),
            session: SessionId(9999),
        };
        let _ = std::thread::spawn(move || {
            // The engine rejects the dangling session; the guard and
            // settle path must still run and free the slot.
            let _ = f2.add_active_role(dana, bogus, auditor);
        })
        .join();
        front
            .add_active_role(erin, s_e, auditor)
            .expect("a failed constrained op must not leak its reservation slot");
    }
}
