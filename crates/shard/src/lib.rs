//! # shard — horizontal write scaling for the OWTE engine
//!
//! One engine means one write lock: every activation, every session and
//! every audit append serializes behind it. This crate partitions the
//! engine by *user* — RBAC's own structure makes that the right axis,
//! since sessions belong to exactly one user and almost every rule the
//! policy compiler generates reads and writes only that user's state.
//!
//! * [`ring`] — consistent-hash placement of users onto shards;
//! * [`plan`] — the static sharding plan: which roles need cross-shard
//!   tracking, derived from the policy graph and *licensed* by the
//!   effect analyzer's `cross_user_footprints()` (an op whose effective
//!   footprint is single-user commutes freely across shards and never
//!   touches the coordinator);
//! * [`coord`] — the constraint coordinator: per-role activation
//!   counters and SoD membership sets, plus the two-phase
//!   reserve/commit protocol with probe-before-release orphan recovery
//!   and crash fencing;
//! * [`group`] — the deterministic message-passing shard group the
//!   model checker explores (protocol messages, coordinator crashes and
//!   reservation timeouts are all explicit scheduler choices);
//! * [`front`] — [`front::ShardedEngine`], the concurrent deployable
//!   front: one durable engine (own WAL, snapshots, compiled dispatch
//!   plan) per shard behind its own lock, preserving per-user decision
//!   and audit semantics exactly.

#![warn(missing_docs)]

pub mod coord;
pub mod front;
pub mod group;
pub mod plan;
pub mod ring;

pub use coord::{CoordSeed, Coordinator, OpToken, ReserveOutcome};
pub use front::{OpStamp, ShardError, ShardSession, ShardedEngine};
pub use group::{ClientOp, Dest, Envelope, Msg, OpRecord, OpResolution, ShardGroup};
pub use plan::{membership_of, ShardPlan, Unshardable};
pub use ring::{mix64, Ring};
