//! Immutable authorization snapshots: the lock-free read path.
//!
//! `checkAccess` is by far the hottest operation and, in the common case,
//! is *decision-only*: the generated CA rule inspects state (session
//! exists, session has the permission, purpose acceptable) and either
//! allows or raises an error, changing nothing. [`AuthSnapshot`] captures
//! exactly the state that decision reads — per-session active-role sets,
//! role → permission closures, the `(op, obj)` permission index and the
//! privacy state — so that a grant can be computed without holding the
//! engine mutex at all. [`crate::SharedEngine`] publishes one snapshot per
//! engine epoch and routes reads through it.
//!
//! # Soundness
//!
//! The snapshot is only consulted when, at capture time, the `checkAccess`
//! dispatch is *provably* equivalent to the pure decision procedure below.
//! [`AuthSnapshot::capture`] verifies structurally that:
//!
//! * the `checkAccess` event is a plain primitive with no composite-event
//!   ancestors (nothing upstream consumes it, so dispatching it fires no
//!   other machinery);
//! * exactly one enabled rule subscribes to it, and that rule is the
//!   generated CA rule, matched *structurally*: its When conditions are
//!   exactly `SessionExists(session) && SessionHasPermission(session, op,
//!   obj)` (plus the `purpose_ok` custom check when object policies
//!   exist), its Then is `[Allow]` and its Else a single `raise error`.
//!
//! If any of this fails — an administrator disabled the CA rule, a custom
//! pool subscribed extra rules to `checkAccess`, a composite event watches
//! it — [`AuthSnapshot::has_fast_path`] is `false` and every read takes
//! the locked path. Rule pools are data, so this gate is re-evaluated on
//! every capture.
//!
//! Even with the fast path armed, **only a grant is authoritative**:
//! [`AuthSnapshot::grants`] returning `false` means "not provably allowed
//! from this snapshot", and the caller must fall back to the locked
//! engine. This keeps the OWTE denial semantics intact — the Else branch
//! (`raise error "Permission Denied"`), the audit log entry and the
//! `accessDenied` feed into the active-security rules all still happen
//! under the lock. The one documented relaxation: fast-path *grants* do
//! not append `Fired` audit entries.
//!
//! # Validity horizon
//!
//! A snapshot answers queries for logical times `t` in `[from,
//! valid_until)`. `from` is the engine clock at capture; `valid_until` is
//! the earliest instant at which deferred machinery may change the
//! decision — the next pending detector timer (role deactivation Δs,
//! lockout expiries) or the next GTRBAC periodic enable/disable boundary.
//! A query exactly **at** `valid_until` must take the locked path: the
//! timer fires at that instant, and only the serialized write path may
//! run it. Snapshots of engines with no pending timers and no periodic
//! policies are valid forever (until invalidated by a write).

use crate::engine::Engine;
use crate::privacy::{PrivacyState, PurposeId};
use policy::events;
use rbac::{ObjId, OpId, PermId, RoleId, SessionId};
use sentinel::{ActionSpec, Check, CondExpr, ParamRef};
use snoop::Ts;
use std::collections::{BTreeSet, HashMap};

/// What the structural gate proved about the CA rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FastPath {
    /// The CA rule carries the `purpose_ok` check (object policies exist),
    /// so the snapshot must replicate the privacy decision.
    needs_purpose: bool,
}

/// An immutable capture of everything `checkAccess` reads, valid for one
/// engine epoch over the interval `[from, valid_until)`.
///
/// Build via [`Engine::snapshot`]; share via `Arc`. All methods are
/// `&self` — the snapshot never changes after capture.
#[derive(Debug, Clone)]
pub struct AuthSnapshot {
    epoch: u64,
    from: Ts,
    valid_until: Option<Ts>,
    fast: Option<FastPath>,
    /// Session → active role set.
    sessions: HashMap<u32, BTreeSet<RoleId>>,
    /// Role → full permission closure (direct + inherited from juniors).
    role_perms: HashMap<RoleId, BTreeSet<PermId>>,
    /// Role → roles it dominates (reflexive junior closure); drives the
    /// privacy policy's role-dominance applicability test.
    dominated: HashMap<RoleId, BTreeSet<RoleId>>,
    /// `(op, obj)` → permission id.
    perm_index: HashMap<(OpId, ObjId), PermId>,
    /// Purposes, purpose hierarchy and object policies at capture time.
    privacy: PrivacyState,
}

impl AuthSnapshot {
    /// Capture the engine's current authorization state. Called by
    /// [`Engine::snapshot`]; runs under whatever lock protects the engine.
    pub(crate) fn capture(engine: &Engine) -> AuthSnapshot {
        let sys = engine.system();
        let from = engine.now();
        let next_timer = engine.detector_ref().next_timer_at();
        let next_temporal = engine.temporal_ref().next_transition_after(from);
        let valid_until = match (next_timer, next_temporal) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };

        let fast = Self::prove_fast_path(engine);
        let mut sessions = HashMap::new();
        for s in sys.all_sessions() {
            if let Ok(active) = sys.session_roles(s) {
                sessions.insert(s.0, active);
            }
        }
        let needs_privacy = fast.is_some_and(|f| f.needs_purpose);
        let mut dominated = HashMap::new();
        if needs_privacy {
            for r in sys.all_roles() {
                let mut d = sys.juniors_closure(r).unwrap_or_default();
                d.insert(r);
                dominated.insert(r, d);
            }
        }
        AuthSnapshot {
            epoch: engine.state_version(),
            from,
            valid_until,
            fast,
            sessions,
            role_perms: sys.all_role_perm_closures(),
            dominated,
            perm_index: sys.permission_pairs().collect(),
            privacy: engine.privacy().clone(),
        }
    }

    /// The structural soundness gate (see module docs): is dispatching
    /// `checkAccess` provably equivalent to the pure decision procedure?
    fn prove_fast_path(engine: &Engine) -> Option<FastPath> {
        let det = engine.detector_ref();
        let pool = engine.pool();
        let ev = det.lookup(events::CHECK_ACCESS)?;
        // No composite event may consume checkAccess: its ancestor closure
        // must be just itself.
        if det.ancestor_closure(ev, false) != vec![ev] {
            return None;
        }
        // Exactly one enabled subscriber.
        let enabled: Vec<_> = pool
            .triggered_by(ev)
            .iter()
            .filter_map(|&id| pool.get(id))
            .filter(|r| r.enabled)
            .collect();
        let [rule] = enabled[..] else {
            return None;
        };
        // Structurally the generated CA rule, nothing else.
        let session = || ParamRef::param("session");
        let base = || {
            vec![
                CondExpr::check(Check::SessionExists(session())),
                CondExpr::check(Check::SessionHasPermission {
                    session: session(),
                    op: ParamRef::param("op"),
                    obj: ParamRef::param("obj"),
                }),
            ]
        };
        let purpose_check = CondExpr::check(Check::Custom {
            name: "purpose_ok".into(),
            args: vec![
                session(),
                ParamRef::param("op"),
                ParamRef::param("obj"),
                ParamRef::param("purpose"),
            ],
        });
        let needs_purpose = if rule.when == CondExpr::all(base()) {
            false
        } else {
            let mut with_purpose = base();
            with_purpose.push(purpose_check);
            if rule.when == CondExpr::all(with_purpose) {
                true
            } else {
                return None;
            }
        };
        if rule.then != [ActionSpec::Allow] {
            return None;
        }
        if !matches!(rule.otherwise[..], [ActionSpec::RaiseError(_)]) {
            return None;
        }
        Some(FastPath { needs_purpose })
    }

    /// The engine `state_version` this snapshot was captured at. A
    /// published snapshot is current iff this equals the engine's version.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Engine clock at capture (inclusive start of the validity interval).
    pub fn from(&self) -> Ts {
        self.from
    }

    /// Exclusive end of the validity interval: the next timer firing or
    /// temporal enable/disable boundary. `None` = valid until invalidated.
    pub fn valid_until(&self) -> Option<Ts> {
        self.valid_until
    }

    /// Can this snapshot answer a query at logical time `t`? True iff
    /// `from <= t` and `t` is strictly before [`valid_until`]
    /// (queries exactly at the horizon belong to the write path, which
    /// must fire the timer due at that instant first).
    ///
    /// [`valid_until`]: AuthSnapshot::valid_until
    pub fn answers_at(&self, t: Ts) -> bool {
        t >= self.from && self.valid_until.is_none_or(|u| t < u)
    }

    /// Did the capture-time soundness gate pass? When `false`,
    /// [`grants`](AuthSnapshot::grants) always returns `false` and every
    /// read takes the locked path.
    pub fn has_fast_path(&self) -> bool {
        self.fast.is_some()
    }

    /// Resolve a purpose name against the captured purpose registry.
    pub fn purpose_by_name(&self, name: &str) -> Option<PurposeId> {
        self.privacy.purpose_by_name(name)
    }

    /// Number of sessions captured.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The pure `checkAccess` decision. **Only `true` is authoritative**:
    /// `false` means "not provably allowed from this snapshot" and the
    /// caller must re-ask the locked engine, which runs the full OWTE
    /// machinery (denial audit entry + `accessDenied` feed).
    pub fn grants(
        &self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
        purpose: Option<PurposeId>,
    ) -> bool {
        let Some(fast) = self.fast else {
            return false;
        };
        // SessionExists(session)
        let Some(active) = self.sessions.get(&session.0) else {
            return false;
        };
        // SessionHasPermission(session, op, obj)
        let Some(&perm) = self.perm_index.get(&(op, obj)) else {
            return false;
        };
        let has = active
            .iter()
            .any(|r| self.role_perms.get(r).is_some_and(|ps| ps.contains(&perm)));
        if !has {
            return false;
        }
        // purpose_ok(session, op, obj, purpose)
        if fast.needs_purpose && !self.purpose_ok(active, op, obj, purpose) {
            return false;
        }
        true
    }

    /// Replicates [`PrivacyState::check`] over captured data: every object
    /// policy whose role is dominated by an active role constrains the
    /// access; the stated purpose must satisfy one applicable policy.
    fn purpose_ok(
        &self,
        active: &BTreeSet<RoleId>,
        op: OpId,
        obj: ObjId,
        purpose: Option<PurposeId>,
    ) -> bool {
        let mut applicable = false;
        for p in self.privacy.policies() {
            if p.op != op || p.obj != obj {
                continue;
            }
            let role_applies = active
                .iter()
                .any(|a| self.dominated.get(a).is_some_and(|d| d.contains(&p.role)));
            if !role_applies {
                continue;
            }
            applicable = true;
            if let Some(given) = purpose {
                if self.privacy.satisfies(given, p.purpose) {
                    return true;
                }
            }
        }
        !applicable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy::PolicyGraph;
    use snoop::Dur;

    fn xyz_engine() -> Engine {
        let mut g = PolicyGraph::enterprise_xyz();
        g.user("alice");
        g.user("bob");
        g.assign("alice", "PM");
        g.assign("bob", "AC");
        Engine::from_policy(&g, Ts::ZERO).unwrap()
    }

    #[test]
    fn snapshot_grants_match_engine_decisions() {
        let mut e = xyz_engine();
        let alice = e.user_id("alice").unwrap();
        let pm = e.role_id("PM").unwrap();
        let s = e.create_session(alice, &[pm]).unwrap();
        let create = e.system().op_by_name("create").unwrap();
        let approve = e.system().op_by_name("approve").unwrap();
        let po = e.system().obj_by_name("purchase_order").unwrap();

        let snap = e.snapshot();
        assert!(snap.has_fast_path(), "XYZ pool passes the soundness gate");
        assert_eq!(snap.epoch(), e.state_version());
        assert_eq!(snap.session_count(), 1);

        // Inherited permission (PM dominates PC): granted on both paths.
        assert!(snap.grants(s, create, po, None));
        assert!(e.check_access(s, create, po).unwrap());
        assert_eq!(
            snap.grants(s, approve, po, None),
            e.check_access(s, approve, po).unwrap()
        );
        // Unknown session: not provable; the engine denies it too.
        let bogus = SessionId(999);
        assert!(!snap.grants(bogus, create, po, None));
        assert!(!e.check_access(bogus, create, po).unwrap());
    }

    #[test]
    fn denials_are_never_authoritative() {
        let mut e = xyz_engine();
        let bob = e.user_id("bob").unwrap();
        let s = e.create_session(bob, &[]).unwrap();
        let create = e.system().op_by_name("create").unwrap();
        let po = e.system().obj_by_name("purchase_order").unwrap();
        let snap = e.snapshot();
        // No active roles: the snapshot cannot prove a grant. The locked
        // path must still be consulted so the denial is audited.
        assert!(!snap.grants(s, create, po, None));
        let before = e.log().denial_count();
        assert!(!e.check_access(s, create, po).unwrap());
        assert_eq!(e.log().denial_count(), before + 1);
    }

    #[test]
    fn epoch_tracks_mutations_but_not_reads() {
        let mut e = xyz_engine();
        let alice = e.user_id("alice").unwrap();
        let pm = e.role_id("PM").unwrap();
        let create = e.system().op_by_name("create").unwrap();
        let po = e.system().obj_by_name("purchase_order").unwrap();

        let v0 = e.state_version();
        let s = e.create_session(alice, &[pm]).unwrap();
        assert!(e.state_version() > v0, "session creation is a write");

        let v1 = e.state_version();
        assert!(e.check_access(s, create, po).unwrap());
        assert_eq!(e.state_version(), v1, "granted checkAccess mutates nothing");

        let snap = e.snapshot();
        assert_eq!(snap.epoch(), v1);
        e.drop_active_role(alice, s, pm).unwrap();
        assert!(e.state_version() > v1, "role drop invalidates the snapshot");
        // The stale snapshot must no longer be treated as current…
        assert_ne!(snap.epoch(), e.state_version());
        // …because it would now grant what the engine denies.
        assert!(snap.grants(s, create, po, None));
        assert!(!e.check_access(s, create, po).unwrap());
    }

    #[test]
    fn gate_refuses_disabled_or_foreign_pools() {
        let mut e = xyz_engine();
        assert!(e.snapshot().has_fast_path());
        // Lockdown disables the activity-control class (CA included):
        // the snapshot must refuse to answer.
        e.disable_rule_class(sentinel::RuleClass::ActivityControl);
        let snap = e.snapshot();
        assert!(!snap.has_fast_path());
        assert!(!snap.grants(SessionId(0), OpId(0), ObjId(0), None));
        e.enable_rule_class(sentinel::RuleClass::ActivityControl);
        assert!(e.snapshot().has_fast_path(), "re-armed after recovery");
    }

    #[test]
    fn validity_horizon_follows_timers() {
        let mut e = xyz_engine();
        // Untimed engine: valid forever.
        assert_eq!(e.snapshot().valid_until(), None);
        let snap = e.snapshot();
        assert!(snap.answers_at(Ts::ZERO));
        assert!(snap.answers_at(Ts::from_secs(1_000_000)));

        // An activation-duration policy arms a timer on activation.
        let mut g = e.policy().clone();
        g.role("PM").max_activation = Some(Dur::from_hours(2));
        e.apply_policy(&g).unwrap();
        let alice = e.user_id("alice").unwrap();
        let pm = e.role_id("PM").unwrap();
        e.create_session(alice, &[pm]).unwrap();
        let snap = e.snapshot();
        let until = snap.valid_until().expect("pending Δ timer bounds validity");
        assert_eq!(until, Ts::ZERO + Dur::from_hours(2));
        assert!(snap.answers_at(Ts(until.0 - 1)));
        assert!(
            !snap.answers_at(until),
            "the instant the timer fires belongs to the write path"
        );
        assert!(!snap.answers_at(Ts(until.0 + 1)));
    }

    #[test]
    fn purpose_constraints_replicated() {
        let mut g = PolicyGraph::new("clinic");
        g.user("nina");
        g.role("Nurse");
        g.assign("nina", "Nurse");
        g.permission("read_record", "read", "patient_record");
        g.grant("read_record", "Nurse");
        g.purposes.push(policy::PurposeSpec {
            name: "treatment".into(),
            parent: None,
        });
        g.purposes.push(policy::PurposeSpec {
            name: "billing".into(),
            parent: Some("treatment".into()),
        });
        g.object_policies.push(policy::ObjectPolicySpec {
            op: "read".into(),
            obj: "patient_record".into(),
            role: "Nurse".into(),
            purpose: "treatment".into(),
        });
        let mut e = Engine::from_policy(&g, Ts::ZERO).unwrap();
        let nina = e.user_id("nina").unwrap();
        let nurse = e.role_id("Nurse").unwrap();
        let s = e.create_session(nina, &[nurse]).unwrap();
        let read = e.system().op_by_name("read").unwrap();
        let rec = e.system().obj_by_name("patient_record").unwrap();

        let snap = e.snapshot();
        assert!(snap.has_fast_path());
        let treatment = snap.purpose_by_name("treatment").unwrap();
        let billing = snap.purpose_by_name("billing").unwrap();
        // Right purpose (and descendant): provable grants, agreeing with
        // the engine.
        assert!(snap.grants(s, read, rec, Some(treatment)));
        assert!(e
            .check_access_for_purpose(s, read, rec, "treatment")
            .unwrap());
        assert!(snap.grants(s, read, rec, Some(billing)));
        // Constrained access without a purpose: not provable; engine denies.
        assert!(!snap.grants(s, read, rec, None));
        assert!(!e.check_access(s, read, rec).unwrap());
    }
}
