//! Storage backends for the durable journal.
//!
//! The WAL ([`crate::wal`]) is written against the narrow [`Storage`] trait
//! rather than `std::fs` directly, for two reasons:
//!
//! * **Testability** — [`MemStorage`] models a page cache with an explicit
//!   synced-prefix per file, so tests can "crash" the store and observe
//!   exactly the bytes a real machine would have kept after power loss.
//! * **Fault injection** — [`FaultyStorage`] wraps any backend and, driven
//!   by a seeded deterministic PRNG, injects the failure modes that matter
//!   for crash consistency: torn (partial) writes, transient I/O errors,
//!   failed syncs, and a hard kill after a scheduled number of operations.
//!   Every failure schedule is reproducible from its seed.
//!
//! [`FileStorage`] is the production backend: one directory, one file per
//! segment/snapshot, `File::sync_data` for file contents plus an fsync of
//! the directory itself whenever an entry is created or removed — without
//! the directory fsync a crashed OS could forget a freshly created
//! segment (or remember a deletion while forgetting the file that
//! superseded it), breaking the ordering [`MemStorage`] models with its
//! durable-names set.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::rc::Rc;

/// An error from a storage backend.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (real, or injected by [`FaultyStorage`]).
    Io(String),
    /// The named file does not exist.
    NotFound(String),
    /// The injected crash point was reached; the store is dead until reopened.
    Crashed,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(m) => write!(f, "storage i/o error: {m}"),
            StorageError::NotFound(n) => write!(f, "storage file not found: {n}"),
            StorageError::Crashed => write!(f, "storage crashed (injected kill point)"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// A minimal append-oriented file store.
///
/// The WAL only ever appends to files, reads them whole, lists the
/// directory, and deletes obsolete files — so that is the whole contract.
/// `append` may be torn: on error, any prefix of `data` (including none)
/// may have reached the file. Bytes are only guaranteed durable across a
/// crash once `sync` for that file has returned `Ok`.
pub trait Storage {
    /// Names of all files in the store, in unspecified order.
    fn list(&self) -> Result<Vec<String>>;
    /// Entire contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>>;
    /// Create `name` empty, truncating any existing file.
    fn create(&mut self, name: &str) -> Result<()>;
    /// Append `data` to `name`. On `Err`, a prefix may have been written.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<()>;
    /// Make all written bytes of `name` durable.
    fn sync(&mut self, name: &str) -> Result<()>;
    /// Remove `name`. Removing a missing file is an error.
    fn delete(&mut self, name: &str) -> Result<()>;
}

/// One in-memory file: written bytes plus the length of the synced prefix.
#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    synced_len: usize,
}

/// In-memory storage with an explicit crash model.
///
/// Writes land in `data` (the "page cache"); `sync` advances `synced_len`
/// (the "disk"). [`MemStorage::crash`] discards every unsynced suffix,
/// yielding exactly the post-power-loss image. Files created but never
/// synced disappear entirely on crash, like real directory entries whose
/// metadata never hit the journal.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    files: HashMap<String, MemFile>,
    /// Files whose creation has been made durable (any successful sync).
    durable_names: std::collections::HashSet<String>,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Simulate power loss: drop unsynced bytes and unsynced files.
    pub fn crash(&mut self) {
        let durable = self.durable_names.clone();
        self.files.retain(|name, _| durable.contains(name));
        for f in self.files.values_mut() {
            f.data.truncate(f.synced_len);
        }
    }

    /// Flip one bit at `offset` of `name` — test hook for corruption tests.
    pub fn corrupt(&mut self, name: &str, offset: usize) {
        if let Some(f) = self.files.get_mut(name) {
            if offset < f.data.len() {
                f.data[offset] ^= 0x01;
                if f.synced_len > f.data.len() {
                    f.synced_len = f.data.len();
                }
            }
        }
    }

    /// Truncate `name` to `len` bytes — test hook for torn-tail tests.
    pub fn truncate(&mut self, name: &str, len: usize) {
        if let Some(f) = self.files.get_mut(name) {
            f.data.truncate(len);
            if f.synced_len > len {
                f.synced_len = len;
            }
        }
    }

    /// Raw current contents of `name`, if present (test hook).
    pub fn raw(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|f| f.data.as_slice())
    }

    /// Order-independent FNV-1a digest of the full store state (names,
    /// bytes, synced prefixes, durable-entry set). Deterministic across
    /// processes — the model checker uses it to deduplicate explored
    /// states, so it must not depend on `HashMap` iteration order or any
    /// per-process hasher seed.
    pub fn state_digest(&self) -> u64 {
        fn fnv1a(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut names: Vec<&String> = self.files.keys().collect();
        names.sort_unstable();
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for name in names {
            let f = &self.files[name];
            fnv1a(&mut h, name.as_bytes());
            fnv1a(&mut h, &[0xFF]);
            fnv1a(&mut h, &(f.data.len() as u64).to_le_bytes());
            fnv1a(&mut h, &f.data);
            fnv1a(&mut h, &(f.synced_len as u64).to_le_bytes());
            fnv1a(&mut h, &[u8::from(self.durable_names.contains(name))]);
        }
        h
    }
}

impl Storage for MemStorage {
    fn list(&self) -> Result<Vec<String>> {
        Ok(self.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        self.files
            .get(name)
            .map(|f| f.data.clone())
            .ok_or_else(|| StorageError::NotFound(name.to_string()))
    }

    fn create(&mut self, name: &str) -> Result<()> {
        self.files.insert(name.to_string(), MemFile::default());
        self.durable_names.remove(name);
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        let f = self
            .files
            .get_mut(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        f.data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        let f = self
            .files
            .get_mut(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        f.synced_len = f.data.len();
        self.durable_names.insert(name.to_string());
        Ok(())
    }

    fn delete(&mut self, name: &str) -> Result<()> {
        self.files
            .remove(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        self.durable_names.remove(name);
        Ok(())
    }
}

/// Directory-backed storage using real files.
///
/// Open handles are cached so a hot append path does not reopen the
/// segment on every record. `sync` maps to `File::sync_data`.
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    handles: HashMap<String, File>,
}

impl FileStorage {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileStorage> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStorage {
            dir,
            handles: HashMap::new(),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Make directory-entry changes (file creation/removal) durable. On
    /// POSIX, syncing a file persists its contents but not the entry that
    /// names it; that lives in the directory, which must be fsynced
    /// separately.
    fn sync_dir(&self) -> Result<()> {
        #[cfg(unix)]
        File::open(&self.dir)?.sync_all()?;
        // Non-POSIX platforms don't expose directory fsync (and mostly
        // don't need it); entry durability is best-effort there.
        Ok(())
    }

    fn handle(&mut self, name: &str) -> Result<&mut File> {
        if !self.handles.contains_key(name) {
            let path = self.dir.join(name);
            if !path.exists() {
                return Err(StorageError::NotFound(name.to_string()));
            }
            let f = OpenOptions::new().append(true).read(true).open(path)?;
            self.handles.insert(name.to_string(), f);
        }
        Ok(self.handles.get_mut(name).expect("inserted above"))
    }
}

impl Storage for FileStorage {
    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        let path = self.dir.join(name);
        if !path.exists() {
            return Err(StorageError::NotFound(name.to_string()));
        }
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn create(&mut self, name: &str) -> Result<()> {
        let path = self.dir.join(name);
        let f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .read(true)
            .open(path)?;
        self.handles.insert(name.to_string(), f);
        // The new directory entry must be durable before any bytes
        // appended to the file are acknowledged as synced.
        self.sync_dir()?;
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        self.handle(name)?.write_all(data)?;
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        self.handle(name)?.sync_data()?;
        Ok(())
    }

    fn delete(&mut self, name: &str) -> Result<()> {
        self.handles.remove(name);
        let path = self.dir.join(name);
        if !path.exists() {
            return Err(StorageError::NotFound(name.to_string()));
        }
        std::fs::remove_file(path)?;
        // Compaction relies on deletions being durable in the order they
        // were issued; an un-fsynced directory could reorder them.
        self.sync_dir()?;
        Ok(())
    }
}

/// SplitMix64 — a tiny deterministic PRNG so fault injectors need no
/// external dependency and every failure schedule replays from its seed.
///
/// Shared by the storage fault injector here and the simulated transport
/// in `repl`: one generator, one replay story — a `(seed, plan)` pair
/// reproduces the exact same fault sequence wherever it is interpreted.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit output.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }
}

/// What a [`ScriptedFault`] does when its operation index is reached.
///
/// Unlike the probabilistic knobs on [`FaultPlan`], scripted faults are
/// exact: the model checker uses them to enumerate every crash boundary
/// of an engine operation instead of sampling them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill the store at this op. If the op is an append, exactly
    /// `min(keep, data.len())` bytes of the record still reach the file
    /// first (`keep: 0` models a clean pre-op crash, anything shorter
    /// than the record a torn write).
    Kill {
        /// Bytes of the in-flight append that still land before death.
        keep: usize,
    },
    /// The operation fails transiently having done nothing; the store
    /// stays alive.
    TransientIo,
    /// A sync returns an error without making bytes durable. On non-sync
    /// operations this behaves like [`FaultKind::TransientIo`].
    FailedSync,
}

/// A fault pinned to an exact 1-based event index — the shared script
/// format for every seeded, replayable fault injector in the workspace.
///
/// The storage layer instantiates it as [`ScriptedFault`] (`K =
/// [`FaultKind`]`, indices count mutating storage ops); the simulated
/// transport in `repl` instantiates it with its own network fault kinds,
/// indices counting message sends. Keeping the `{at, kind}` shape
/// identical means one replay convention — "the Nth event misbehaves
/// like this" — covers disks and networks alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scripted<K> {
    /// Which event (1-based: the injector's counter value once the event
    /// is underway) triggers the fault.
    pub at: u64,
    /// What happens when it does.
    pub kind: K,
}

/// A storage fault pinned to an exact mutating-operation index (1-based,
/// i.e. the value [`FaultyStorage::ops`] reports once the op is underway).
pub type ScriptedFault = Scripted<FaultKind>;

/// What [`FaultyStorage`] is allowed to break, and how often.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Kill the store (permanently, until the inner storage is recovered)
    /// after this many mutating operations. `None` disables the kill point.
    pub kill_at_op: Option<u64>,
    /// When the kill point lands on an append, write a random strict prefix
    /// of the record first (a torn write) instead of nothing.
    pub torn_writes: bool,
    /// Probability that an append or sync fails transiently (the operation
    /// did nothing, the store stays alive).
    pub p_transient_io: f64,
    /// Probability that a sync silently fails to make bytes durable while
    /// still returning an error (callers must treat it as failed).
    pub p_failed_sync: f64,
    /// Deterministic faults at exact operation indices, checked before the
    /// probabilistic knobs. Empty by default.
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            kill_at_op: None,
            torn_writes: true,
            p_transient_io: 0.0,
            p_failed_sync: 0.0,
            scripted: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan with a single scripted fault and nothing probabilistic.
    pub fn scripted_one(at_op: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            scripted: vec![ScriptedFault { at: at_op, kind }],
            ..FaultPlan::default()
        }
    }
}

/// A deterministic fault-injecting wrapper over any [`Storage`].
///
/// Mutating operations count toward the kill point; when it fires during
/// an `append` with `torn_writes` on, a random strict prefix of the data
/// is written before the error — the classic torn write. After the kill
/// the wrapper answers every call with [`StorageError::Crashed`]; tests
/// then take the inner storage back (e.g. via [`FaultyStorage::into_inner`]
/// plus [`MemStorage::crash`]) and reopen it to model the restart.
#[derive(Debug, Clone)]
pub struct FaultyStorage<S: Storage> {
    inner: S,
    rng: SplitMix64,
    plan: FaultPlan,
    ops: u64,
    dead: bool,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wrap `inner`, with all faults driven by `seed` and `plan`.
    pub fn new(inner: S, seed: u64, plan: FaultPlan) -> FaultyStorage<S> {
        FaultyStorage {
            inner,
            rng: SplitMix64(seed),
            plan,
            ops: 0,
            dead: false,
        }
    }

    /// Whether the kill point has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Number of mutating operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Take the wrapped storage back (for post-crash inspection/reopen).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Borrow the wrapped storage (inspection hook).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Borrow the wrapped storage mutably (test hook).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Borrow the fault plan mutably. The simulator uses this to install
    /// [`ScriptedFault`]s on a live store — e.g. "kill at the 3rd storage
    /// op of whatever the engine does next".
    pub fn plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.plan
    }

    /// Count a mutating op; `Err(Crashed)` exactly when the kill point fires.
    fn tick(&mut self) -> Result<()> {
        if self.dead {
            return Err(StorageError::Crashed);
        }
        self.ops += 1;
        if let Some(k) = self.plan.kill_at_op {
            if self.ops >= k {
                self.dead = true;
                return Err(StorageError::Crashed);
            }
        }
        Ok(())
    }

    /// The scripted fault (if any) pinned to the op `tick` just counted.
    fn scripted_now(&self) -> Option<FaultKind> {
        self.plan
            .scripted
            .iter()
            .find(|f| f.at == self.ops)
            .map(|f| f.kind.clone())
    }

    /// Apply a scripted fault on a non-append operation.
    fn apply_scripted(&mut self, what: &'static str) -> Result<()> {
        match self.scripted_now() {
            None => Ok(()),
            Some(FaultKind::Kill { .. }) => {
                self.dead = true;
                Err(StorageError::Crashed)
            }
            Some(FaultKind::TransientIo) | Some(FaultKind::FailedSync) => Err(StorageError::Io(
                format!("scripted fault: {what} failed at op {}", self.ops),
            )),
        }
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn list(&self) -> Result<Vec<String>> {
        if self.dead {
            return Err(StorageError::Crashed);
        }
        self.inner.list()
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        if self.dead {
            return Err(StorageError::Crashed);
        }
        self.inner.read(name)
    }

    fn create(&mut self, name: &str) -> Result<()> {
        self.tick()?;
        self.apply_scripted("create")?;
        self.inner.create(name)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        match self.tick() {
            Ok(()) => {}
            Err(e) => {
                // Kill point during an append: optionally tear the record.
                if self.plan.torn_writes && !data.is_empty() {
                    let cut = self.rng.below(data.len());
                    if cut > 0 {
                        let _ = self.inner.append(name, &data[..cut]);
                    }
                }
                return Err(e);
            }
        }
        match self.scripted_now() {
            None => {}
            Some(FaultKind::Kill { keep }) => {
                // Exact torn write: precisely `keep` bytes reach the file.
                let cut = keep.min(data.len());
                if cut > 0 {
                    let _ = self.inner.append(name, &data[..cut]);
                }
                self.dead = true;
                return Err(StorageError::Crashed);
            }
            Some(FaultKind::TransientIo) | Some(FaultKind::FailedSync) => {
                return Err(StorageError::Io(format!(
                    "scripted fault: append failed at op {}",
                    self.ops
                )));
            }
        }
        if self.plan.p_transient_io > 0.0 && self.rng.unit() < self.plan.p_transient_io {
            return Err(StorageError::Io("injected transient append failure".into()));
        }
        self.inner.append(name, data)
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        self.tick()?;
        self.apply_scripted("sync")?;
        if self.plan.p_transient_io > 0.0 && self.rng.unit() < self.plan.p_transient_io {
            return Err(StorageError::Io("injected transient sync failure".into()));
        }
        if self.plan.p_failed_sync > 0.0 && self.rng.unit() < self.plan.p_failed_sync {
            return Err(StorageError::Io("injected failed fsync".into()));
        }
        self.inner.sync(name)
    }

    fn delete(&mut self, name: &str) -> Result<()> {
        self.tick()?;
        self.apply_scripted("delete")?;
        self.inner.delete(name)
    }
}

/// A shared handle to a storage, so a test can keep inspecting the store a
/// [`crate::durable::DurableEngine`] owns. Single-threaded by design
/// (`Rc<RefCell>`); the durable engine itself is wrapped by
/// [`crate::shared::SharedEngine`] when concurrency is needed.
#[derive(Debug, Default, Clone)]
pub struct SharedStorage<S: Storage>(Rc<RefCell<S>>);

impl<S: Storage> SharedStorage<S> {
    /// Wrap `inner` in a shared handle.
    pub fn new(inner: S) -> SharedStorage<S> {
        SharedStorage(Rc::new(RefCell::new(inner)))
    }

    /// Run `f` with mutable access to the underlying storage.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl<S: Storage> Storage for SharedStorage<S> {
    fn list(&self) -> Result<Vec<String>> {
        self.0.borrow().list()
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        self.0.borrow().read(name)
    }

    fn create(&mut self, name: &str) -> Result<()> {
        self.0.borrow_mut().create(name)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        self.0.borrow_mut().append(name, data)
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        self.0.borrow_mut().sync(name)
    }

    fn delete(&mut self, name: &str) -> Result<()> {
        self.0.borrow_mut().delete(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_crash_discards_unsynced_suffix() {
        let mut s = MemStorage::new();
        s.create("a").unwrap();
        s.append("a", b"hello").unwrap();
        s.sync("a").unwrap();
        s.append("a", b" world").unwrap();
        s.crash();
        assert_eq!(s.read("a").unwrap(), b"hello");
    }

    #[test]
    fn mem_storage_crash_discards_unsynced_files() {
        let mut s = MemStorage::new();
        s.create("kept").unwrap();
        s.sync("kept").unwrap();
        s.create("lost").unwrap();
        s.append("lost", b"x").unwrap();
        s.crash();
        let names = s.list().unwrap();
        assert!(names.contains(&"kept".to_string()));
        assert!(!names.contains(&"lost".to_string()));
    }

    #[test]
    fn faulty_storage_kill_point_is_deterministic() {
        for seed in [1u64, 42, 999] {
            let run = |seed: u64| {
                let plan = FaultPlan {
                    kill_at_op: Some(5),
                    ..FaultPlan::default()
                };
                let mut s = FaultyStorage::new(MemStorage::new(), seed, plan);
                let mut outcomes = Vec::new();
                s.create("f").unwrap();
                for i in 0..10u8 {
                    outcomes.push(s.append("f", &[i; 16]).is_ok());
                }
                let inner = s.into_inner();
                (outcomes, inner.raw("f").map(|d| d.to_vec()))
            };
            assert_eq!(run(seed), run(seed));
        }
    }

    #[test]
    fn torn_write_leaves_strict_prefix() {
        let plan = FaultPlan {
            kill_at_op: Some(2),
            torn_writes: true,
            ..FaultPlan::default()
        };
        let mut s = FaultyStorage::new(MemStorage::new(), 7, plan);
        s.create("f").unwrap();
        let record = [0xABu8; 64];
        assert!(s.append("f", &record).is_err());
        let inner = s.into_inner();
        let written = inner.raw("f").unwrap();
        assert!(written.len() < record.len());
        assert_eq!(written, &record[..written.len()]);
    }

    #[test]
    fn scripted_kill_tears_exactly_keep_bytes() {
        for keep in [0usize, 1, 7, 63, 64, 1000] {
            let plan = FaultPlan::scripted_one(2, FaultKind::Kill { keep });
            let mut s = FaultyStorage::new(MemStorage::new(), 0, plan);
            s.create("f").unwrap();
            let record = [0xCDu8; 64];
            assert!(matches!(s.append("f", &record), Err(StorageError::Crashed)));
            assert!(s.is_dead());
            let inner = s.into_inner();
            let written = inner.raw("f").unwrap();
            assert_eq!(written.len(), keep.min(record.len()));
            assert_eq!(written, &record[..written.len()]);
        }
    }

    #[test]
    fn scripted_transient_io_leaves_store_alive() {
        let plan = FaultPlan::scripted_one(2, FaultKind::TransientIo);
        let mut s = FaultyStorage::new(MemStorage::new(), 0, plan);
        s.create("f").unwrap();
        assert!(matches!(s.append("f", b"lost"), Err(StorageError::Io(_))));
        assert!(!s.is_dead());
        s.append("f", b"kept").unwrap();
        assert_eq!(s.into_inner().raw("f").unwrap(), b"kept");
    }

    #[test]
    fn scripted_failed_sync_keeps_bytes_unsynced() {
        let plan = FaultPlan::scripted_one(3, FaultKind::FailedSync);
        let mut s = FaultyStorage::new(MemStorage::new(), 0, plan);
        s.create("f").unwrap();
        s.append("f", b"data").unwrap();
        assert!(matches!(s.sync("f"), Err(StorageError::Io(_))));
        let mut inner = s.into_inner();
        inner.crash();
        // The failed sync made nothing durable: file never synced → gone.
        assert!(inner.raw("f").is_none());
    }

    #[test]
    fn state_digest_tracks_observable_state() {
        let mut a = MemStorage::new();
        let mut b = MemStorage::new();
        for s in [&mut a, &mut b] {
            s.create("x").unwrap();
            s.append("x", b"abc").unwrap();
            s.sync("x").unwrap();
            s.create("y").unwrap();
        }
        assert_eq!(a.state_digest(), b.state_digest());
        b.append("y", b"!").unwrap();
        assert_ne!(a.state_digest(), b.state_digest());
        // Sync state matters even when bytes agree.
        a.append("y", b"!").unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
        b.sync("y").unwrap();
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn dead_storage_refuses_everything() {
        let plan = FaultPlan {
            kill_at_op: Some(1),
            torn_writes: false,
            ..FaultPlan::default()
        };
        let mut s = FaultyStorage::new(MemStorage::new(), 3, plan);
        assert!(matches!(s.create("f"), Err(StorageError::Crashed)));
        assert!(matches!(s.list(), Err(StorageError::Crashed)));
        assert!(matches!(s.append("f", b"x"), Err(StorageError::Crashed)));
    }

    #[test]
    fn file_storage_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "owte-storage-test-{}-{:x}",
            std::process::id(),
            dir_nonce()
        ));
        let mut s = FileStorage::open(&dir).unwrap();
        s.create("seg").unwrap();
        s.append("seg", b"abc").unwrap();
        s.append("seg", b"def").unwrap();
        s.sync("seg").unwrap();
        assert_eq!(s.read("seg").unwrap(), b"abcdef");
        assert_eq!(s.list().unwrap(), vec!["seg".to_string()]);
        s.delete("seg").unwrap();
        assert!(s.list().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn dir_nonce() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        N.fetch_add(1, Ordering::Relaxed)
    }
}
