//! Context-aware RBAC: environment state and per-role context constraints.
//!
//! §3 of the paper: "*external* events (i.e., based on the data from
//! sensors)" are simple events, and "when a user moves from one location to
//! another, external events can trigger some rules that
//! activate/deactivate roles"; §3's condition example checks "whether the
//! network is *secure* or *insecure*". This module is that substrate: a
//! key → value environment (location, network, …) plus the constraints the
//! policy places on roles. The generated `context_ok` check consults it at
//! activation time; the generated `CTX_<role>` rule re-validates on every
//! `contextChanged` event and force-deactivates violated roles.

use policy::{Binding, PolicyGraph};
use rbac::RoleId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Environment state and per-role requirements.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ContextState {
    /// Current environment values (location = ward, network = secure, …).
    values: HashMap<String, String>,
    /// Per-role requirements: every (key, value) pair must hold.
    constraints: HashMap<RoleId, Vec<(String, String)>>,
}

impl ContextState {
    /// Empty environment, no constraints.
    pub fn new() -> ContextState {
        ContextState::default()
    }

    /// Build the constraint table from a policy.
    pub fn from_policy(graph: &PolicyGraph, binding: &Binding) -> ContextState {
        let mut c = ContextState::new();
        for spec in &graph.context_constraints {
            c.constraints
                .entry(binding.role(&spec.role))
                .or_default()
                .push((spec.key.clone(), spec.value.clone()));
        }
        c
    }

    /// Carry runtime environment values over (policy changes must not
    /// forget where the user is).
    pub fn with_values(mut self, values: HashMap<String, String>) -> ContextState {
        self.values = values;
        self
    }

    /// Current environment values.
    pub fn values(&self) -> &HashMap<String, String> {
        &self.values
    }

    /// Set an environment value; returns the previous one.
    pub fn set(&mut self, key: &str, value: &str) -> Option<String> {
        self.values.insert(key.to_string(), value.to_string())
    }

    /// Current value of a context key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Add a constraint programmatically.
    pub fn require(&mut self, role: RoleId, key: &str, value: &str) {
        self.constraints
            .entry(role)
            .or_default()
            .push((key.to_string(), value.to_string()));
    }

    /// Do all of `role`'s context constraints hold right now?
    ///
    /// Fails closed: an *unset* context key does not satisfy a constraint
    /// (a role requiring `location = ward` cannot be activated before the
    /// location sensor has reported anything).
    pub fn check(&self, role: RoleId) -> bool {
        match self.constraints.get(&role) {
            None => true,
            Some(reqs) => reqs
                .iter()
                .all(|(k, v)| self.values.get(k).is_some_and(|cur| cur == v)),
        }
    }

    /// Roles with at least one constraint.
    pub fn constrained_roles(&self) -> impl Iterator<Item = RoleId> + '_ {
        self.constraints.keys().copied()
    }

    /// Is any role constrained?
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_roles_always_pass() {
        let c = ContextState::new();
        assert!(c.check(RoleId(0)));
        assert!(c.is_empty());
    }

    #[test]
    fn constraints_fail_closed_until_set() {
        let mut c = ContextState::new();
        let nurse = RoleId(1);
        c.require(nurse, "location", "ward");
        assert!(!c.check(nurse), "unset key fails closed");
        c.set("location", "cafeteria");
        assert!(!c.check(nurse));
        c.set("location", "ward");
        assert!(c.check(nurse));
        // Other roles untouched.
        assert!(c.check(RoleId(2)));
    }

    #[test]
    fn multiple_constraints_all_must_hold() {
        let mut c = ContextState::new();
        let r = RoleId(1);
        c.require(r, "location", "ward");
        c.require(r, "network", "secure");
        c.set("location", "ward");
        assert!(!c.check(r));
        c.set("network", "secure");
        assert!(c.check(r));
        c.set("network", "insecure");
        assert!(!c.check(r));
    }

    #[test]
    fn values_survive_rebuild() {
        let mut c = ContextState::new();
        c.set("location", "ward");
        let rebuilt = ContextState::new().with_values(c.values().clone());
        assert_eq!(rebuilt.get("location"), Some("ward"));
    }

    #[test]
    fn set_returns_previous() {
        let mut c = ContextState::new();
        assert_eq!(c.set("k", "a"), None);
        assert_eq!(c.set("k", "b"), Some("a".to_string()));
        assert_eq!(c.get("k"), Some("b"));
        assert_eq!(c.get("missing"), None);
    }
}
