//! The bridge: implements sentinel's [`AuthState`] over the `rbac` monitor
//! plus the temporal, privacy and active-security state.
//!
//! Rule conditions written by the generator (`checkAssigned`,
//! `checkDynamicSoDSet`, `Cardinality`, `disabling_sod_ok`, `may_enable`,
//! `denials_at_least`, `purpose_ok`, …) resolve here. Ids cross the
//! boundary as `i64`; anything out of range or stale evaluates to `false`
//! so a malformed rule fails closed.

use crate::context::ContextState;
use crate::privacy::{PrivacyState, PurposeId};
use gtrbac::{TemporalConstraints, TemporalPolicies};
use rbac::{ObjId, OpId, RoleId, SessionId, System, UserId};
use sentinel::{ActionOutcome, AuthState};
use snoop::{Dur, Occurrence, Ts};
use std::collections::VecDeque;

fn role(id: i64) -> Option<RoleId> {
    u32::try_from(id).ok().map(RoleId)
}

fn user(id: i64) -> Option<UserId> {
    u32::try_from(id).ok().map(UserId)
}

fn session(id: i64) -> Option<SessionId> {
    u32::try_from(id).ok().map(SessionId)
}

/// A per-dispatch view over the engine's disjointly-borrowed state.
pub struct BridgeView<'a> {
    /// The RBAC reference monitor.
    pub sys: &'a mut System,
    /// Temporal enabling/duration policies.
    pub temporal: &'a TemporalPolicies,
    /// Dependency/time-SoD constraints.
    pub constraints: &'a TemporalConstraints,
    /// Purposes and object policies.
    pub privacy: &'a PrivacyState,
    /// Environment state and context constraints.
    pub context: &'a ContextState,
    /// Timestamps of recent denials (active-security windows).
    pub denials: &'a VecDeque<Ts>,
    /// Per-role activation counts injected from outside this engine
    /// ([`crate::Engine::set_external_active`]): cross-user reads add
    /// these so a shard sees the global count. Empty when unsharded.
    pub external: &'a std::collections::BTreeMap<RoleId, usize>,
}

impl BridgeView<'_> {
    /// Occurrence time = evaluation time for all temporal checks (the
    /// detector delivers timer-fired occurrences at their logical instant).
    fn occ_now(occ: &Occurrence) -> Ts {
        occ.interval.end
    }
}

impl AuthState for BridgeView<'_> {
    fn user_exists(&self, u: i64) -> bool {
        user(u).is_some_and(|u| self.sys.user_name(u).is_ok())
    }

    fn session_exists(&self, s: i64) -> bool {
        session(s).is_some_and(|s| self.sys.session_user(s).is_ok())
    }

    fn session_owned_by(&self, s: i64, u: i64) -> bool {
        match (session(s), user(u)) {
            (Some(s), Some(u)) => self.sys.session_user(s) == Ok(u),
            _ => false,
        }
    }

    fn role_active(&self, s: i64, r: i64) -> bool {
        match (session(s), role(r)) {
            (Some(s), Some(r)) => self.sys.is_active_in_session(s, r).unwrap_or(false),
            _ => false,
        }
    }

    fn assigned(&self, u: i64, r: i64) -> bool {
        match (user(u), role(r)) {
            (Some(u), Some(r)) => self.sys.is_assigned(u, r).unwrap_or(false),
            _ => false,
        }
    }

    fn authorized(&self, u: i64, r: i64) -> bool {
        match (user(u), role(r)) {
            (Some(u), Some(r)) => self.sys.is_authorized(u, r).unwrap_or(false),
            _ => false,
        }
    }

    fn authorized_any(&self, u: i64, roles: &[i64]) -> bool {
        // Baked-closure form of `authorized`: one user lookup, then
        // membership tests against the role's precomputed ancestor set.
        let Some(u) = user(u) else { return false };
        let Ok(assigned) = self.sys.assigned_roles_ref(u) else {
            return false;
        };
        roles
            .iter()
            .any(|&r| role(r).is_some_and(|r| assigned.contains(&r)))
    }

    fn dsd_satisfied(&self, s: i64, r: i64) -> bool {
        match (session(s), role(r)) {
            (Some(s), Some(r)) => self.sys.check_dsd_activate(s, r).is_ok(),
            _ => false,
        }
    }

    fn role_enabled(&self, r: i64) -> bool {
        role(r).is_some_and(|r| self.sys.is_enabled(r).unwrap_or(false))
    }

    fn role_active_anywhere(&self, r: i64) -> bool {
        role(r).is_some_and(|r| {
            self.external.get(&r).copied().unwrap_or(0) > 0
                || self
                    .sys
                    .all_sessions()
                    .any(|s| self.sys.session_roles(s).is_ok_and(|rs| rs.contains(&r)))
        })
    }

    fn active_users_of_role(&self, r: i64) -> usize {
        role(r)
            .map(|r| {
                self.sys.active_users_of_role(r).unwrap_or(0)
                    + self.external.get(&r).copied().unwrap_or(0)
            })
            .unwrap_or(0)
    }

    fn user_active_in_role(&self, u: i64, r: i64) -> bool {
        match (user(u), role(r)) {
            (Some(u), Some(r)) => self
                .sys
                .active_roles_of_user(u)
                .is_ok_and(|rs| rs.contains(&r)),
            _ => false,
        }
    }

    fn active_roles_of_user(&self, u: i64) -> usize {
        user(u)
            .and_then(|u| self.sys.active_roles_of_user(u).ok())
            .map(|rs| rs.len())
            .unwrap_or(0)
    }

    fn session_has_permission(&self, s: i64, op: i64, obj: i64) -> bool {
        let (Some(s), Ok(op), Ok(obj)) = (
            session(s),
            u32::try_from(op).map(OpId),
            u32::try_from(obj).map(ObjId),
        ) else {
            return false;
        };
        self.sys.check_access(s, op, obj).unwrap_or(false)
    }

    fn user_cap_ok(&self, u: i64, r: i64) -> bool {
        let (Some(u), Some(r)) = (user(u), role(r)) else {
            return false;
        };
        match self.sys.user_active_role_cap(u) {
            Ok(Some(max)) => {
                let active = self.sys.active_roles_of_user(u).unwrap_or_default();
                active.contains(&r) || active.len() < max
            }
            Ok(None) => true,
            Err(_) => false,
        }
    }

    fn custom_check(&self, name: &str, args: &[i64], occ: &Occurrence) -> bool {
        let now = Self::occ_now(occ);
        match (name, args) {
            ("disabling_sod_ok", [r]) => {
                role(*r).is_some_and(|r| self.constraints.check_disable(self.sys, r, now).is_ok())
            }
            ("context_ok", [r]) => role(*r).is_some_and(|r| self.context.check(r)),
            ("enabling_sod_ok", [r]) => {
                role(*r).is_some_and(|r| self.constraints.check_enable(self.sys, r, now).is_ok())
            }
            ("may_enable", [r]) => {
                role(*r).is_some_and(|r| self.temporal.should_be_enabled(r, now))
            }
            ("denials_at_least", [n, window_secs]) => {
                let window = Dur::from_secs(u64::try_from(*window_secs).unwrap_or(0));
                let since = now - window;
                let hits = self.denials.iter().filter(|&&t| t >= since).count();
                hits >= usize::try_from(*n).unwrap_or(usize::MAX)
            }
            ("purpose_ok", [s, op, obj, purpose]) => {
                let (Some(s), Ok(op), Ok(obj)) = (
                    session(*s),
                    u32::try_from(*op).map(OpId),
                    u32::try_from(*obj).map(ObjId),
                ) else {
                    return false;
                };
                let purpose = u32::try_from(*purpose).ok().map(PurposeId);
                self.privacy.check(self.sys, s, op, obj, purpose)
            }
            _ => false,
        }
    }

    fn add_session_role(&mut self, u: i64, s: i64, r: i64) -> ActionOutcome {
        let (Some(u), Some(s), Some(r)) = (user(u), session(s), role(r)) else {
            return ActionOutcome::Rejected("bad ids in add_session_role".into());
        };
        match self.sys.add_active_role(u, s, r) {
            Ok(()) => ActionOutcome::Done,
            Err(e) => ActionOutcome::Rejected(e.to_string()),
        }
    }

    fn drop_session_role(&mut self, u: i64, s: i64, r: i64) -> ActionOutcome {
        let (Some(u), Some(s), Some(r)) = (user(u), session(s), role(r)) else {
            return ActionOutcome::Rejected("bad ids in drop_session_role".into());
        };
        match self.sys.drop_active_role(u, s, r) {
            Ok(()) => ActionOutcome::Done,
            Err(e) => ActionOutcome::Rejected(e.to_string()),
        }
    }

    fn deactivate_role_everywhere(&mut self, r: i64) -> ActionOutcome {
        let Some(r) = role(r) else {
            return ActionOutcome::Rejected("bad role id".into());
        };
        // Forced deactivation = disable+deactivate, then restore enablement
        // (the role stays enabled; only the activations are dropped).
        let was_enabled = self.sys.is_enabled(r).unwrap_or(false);
        match self.sys.disable_role(r, true) {
            Ok(_) => {
                if was_enabled {
                    let _ = self.sys.enable_role(r);
                }
                ActionOutcome::Done
            }
            Err(e) => ActionOutcome::Rejected(e.to_string()),
        }
    }

    fn enable_role(&mut self, r: i64) -> ActionOutcome {
        let Some(r) = role(r) else {
            return ActionOutcome::Rejected("bad role id".into());
        };
        match self.sys.enable_role(r) {
            Ok(()) => ActionOutcome::Done,
            Err(e) => ActionOutcome::Rejected(e.to_string()),
        }
    }

    fn disable_role(&mut self, r: i64, deactivate: bool) -> ActionOutcome {
        let Some(r) = role(r) else {
            return ActionOutcome::Rejected("bad role id".into());
        };
        match self.sys.disable_role(r, deactivate) {
            Ok(_) => ActionOutcome::Done,
            Err(e) => ActionOutcome::Rejected(e.to_string()),
        }
    }

    fn assign_user(&mut self, u: i64, r: i64) -> ActionOutcome {
        let (Some(u), Some(r)) = (user(u), role(r)) else {
            return ActionOutcome::Rejected("bad ids in assign_user".into());
        };
        match self.sys.assign_user(u, r) {
            Ok(()) => ActionOutcome::Done,
            Err(e) => ActionOutcome::Rejected(e.to_string()),
        }
    }

    fn deassign_user(&mut self, u: i64, r: i64) -> ActionOutcome {
        let (Some(u), Some(r)) = (user(u), role(r)) else {
            return ActionOutcome::Rejected("bad ids in deassign_user".into());
        };
        match self.sys.deassign_user(u, r) {
            Ok(()) => ActionOutcome::Done,
            Err(e) => ActionOutcome::Rejected(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop::{EventId, Params};

    fn occ_at(t: Ts) -> Occurrence {
        Occurrence::primitive(EventId(0), t, Params::new())
    }

    fn view(sys: &mut System) -> BridgeView<'_> {
        // Test-only: leak tiny empty defaults for the read-only parts.
        static EMPTY_DENIALS: VecDeque<Ts> = VecDeque::new();
        BridgeView {
            sys,
            temporal: Box::leak(Box::default()),
            constraints: Box::leak(Box::default()),
            privacy: Box::leak(Box::default()),
            context: Box::leak(Box::default()),
            denials: &EMPTY_DENIALS,
            external: Box::leak(Box::default()),
        }
    }

    #[test]
    fn queries_map_to_monitor() {
        let mut sys = System::new();
        let u = sys.add_user("bob").unwrap();
        let r = sys.add_role("clerk").unwrap();
        sys.assign_user(u, r).unwrap();
        let s = sys.create_session(u, &[r]).unwrap();
        let v = view(&mut sys);
        assert!(v.user_exists(i64::from(u.0)));
        assert!(!v.user_exists(99));
        assert!(!v.user_exists(-1), "negative ids fail closed");
        assert!(v.session_owned_by(i64::from(s.0), i64::from(u.0)));
        assert!(v.role_active(i64::from(s.0), i64::from(r.0)));
        assert!(v.assigned(i64::from(u.0), i64::from(r.0)));
        assert!(v.role_active_anywhere(i64::from(r.0)));
        assert_eq!(v.active_users_of_role(i64::from(r.0)), 1);
    }

    #[test]
    fn mutations_report_rejections() {
        let mut sys = System::new();
        let u = sys.add_user("bob").unwrap();
        let r = sys.add_role("clerk").unwrap();
        let s = sys.create_session(u, &[]).unwrap();
        let mut v = view(&mut sys);
        // Not assigned: the monitor rejects activation.
        let out = v.add_session_role(i64::from(u.0), i64::from(s.0), i64::from(r.0));
        assert!(matches!(out, ActionOutcome::Rejected(_)));
        assert!(matches!(
            v.add_session_role(-1, 0, 0),
            ActionOutcome::Rejected(_)
        ));
        assert!(matches!(
            v.assign_user(i64::from(u.0), i64::from(r.0)),
            ActionOutcome::Done
        ));
    }

    #[test]
    fn denials_window_check() {
        let mut sys = System::new();
        let denials: VecDeque<Ts> =
            [Ts::from_secs(10), Ts::from_secs(50), Ts::from_secs(55)].into();
        let v = BridgeView {
            sys: &mut sys,
            temporal: Box::leak(Box::default()),
            constraints: Box::leak(Box::default()),
            privacy: Box::leak(Box::default()),
            context: Box::leak(Box::default()),
            denials: &denials,
            external: Box::leak(Box::default()),
        };
        // At t=60 with a 20s window: denials at 50 and 55 count.
        let occ = occ_at(Ts::from_secs(60));
        assert!(v.custom_check("denials_at_least", &[2, 20], &occ));
        assert!(!v.custom_check("denials_at_least", &[3, 20], &occ));
        assert!(v.custom_check("denials_at_least", &[3, 60], &occ));
        assert!(!v.custom_check("no_such_check", &[], &occ));
    }

    #[test]
    fn external_counts_bias_cross_user_reads() {
        let mut sys = System::new();
        let u = sys.add_user("bob").unwrap();
        let r = sys.add_role("clerk").unwrap();
        sys.assign_user(u, r).unwrap();
        static EMPTY_DENIALS: VecDeque<Ts> = VecDeque::new();
        let external: std::collections::BTreeMap<RoleId, usize> = [(r, 2)].into();
        let v = BridgeView {
            sys: &mut sys,
            temporal: Box::leak(Box::default()),
            constraints: Box::leak(Box::default()),
            privacy: Box::leak(Box::default()),
            context: Box::leak(Box::default()),
            denials: &EMPTY_DENIALS,
            external: &external,
        };
        // No local session, but two remote users are active in the role.
        assert_eq!(v.active_users_of_role(i64::from(r.0)), 2);
        assert!(v.role_active_anywhere(i64::from(r.0)));
    }

    #[test]
    fn deactivate_everywhere_preserves_enablement() {
        let mut sys = System::new();
        let u = sys.add_user("bob").unwrap();
        let r = sys.add_role("clerk").unwrap();
        sys.assign_user(u, r).unwrap();
        sys.create_session(u, &[r]).unwrap();
        let mut v = view(&mut sys);
        assert_eq!(
            v.deactivate_role_everywhere(i64::from(r.0)),
            ActionOutcome::Done
        );
        assert!(!v.role_active_anywhere(i64::from(r.0)));
        assert!(v.role_enabled(i64::from(r.0)), "still enabled");
    }
}
