//! Privacy-aware RBAC (He, TR-2003-09; §4.4 of the paper): purposes,
//! purpose hierarchies and object policies.
//!
//! A privacy *purpose* is "the purpose for which an operation is executed".
//! Object policies bind (operation, object, role) triples to a required
//! purpose; an access carrying purpose `p` satisfies a policy requiring `q`
//! iff `p` is `q` or a descendant of `q` in the purpose hierarchy. The
//! paper notes privacy-aware RBAC "also follows the Entity Relationship
//! model described before" — purposes are just one more entity whose
//! relationships become rule conditions (the generated `purpose_ok` check).

use policy::{Binding, PolicyGraph};
use rbac::{ObjId, OpId, RoleId, System};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PurposeId(pub u32);

/// An object policy: performing `op` on `obj` through `role` requires an
/// access purpose at or under `purpose`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectPolicy {
    /// The operation.
    pub op: OpId,
    /// The object.
    pub obj: ObjId,
    /// The role the policy binds.
    pub role: RoleId,
    /// The required purpose.
    pub purpose: PurposeId,
}

/// Purpose registry + hierarchy + object policies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrivacyState {
    names: Vec<String>,
    by_name: HashMap<String, PurposeId>,
    parent: Vec<Option<PurposeId>>,
    policies: Vec<ObjectPolicy>,
}

impl PrivacyState {
    /// No purposes, no policies (all accesses purpose-unconstrained).
    pub fn new() -> PrivacyState {
        PrivacyState::default()
    }

    /// Build from a policy graph and its bindings.
    pub fn from_policy(graph: &PolicyGraph, binding: &Binding) -> PrivacyState {
        let mut p = PrivacyState::new();
        for spec in &graph.purposes {
            let parent = spec.parent.as_deref().map(|n| p.by_name[n]);
            p.add_purpose(&spec.name, parent);
        }
        for op in &graph.object_policies {
            // Consistency checking validated these names; ops/objs exist in
            // the binding because the permission statements introduced them.
            // Object policies may reference op/obj names that no permission
            // used; skip those (they can never be exercised).
            let (Some(&opid), Some(&objid)) = (binding.ops.get(&op.op), binding.objs.get(&op.obj))
            else {
                continue;
            };
            p.policies.push(ObjectPolicy {
                op: opid,
                obj: objid,
                role: binding.role(&op.role),
                purpose: p.by_name[&op.purpose],
            });
        }
        p
    }

    /// Register a purpose under an optional parent.
    pub fn add_purpose(&mut self, name: &str, parent: Option<PurposeId>) -> PurposeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = PurposeId(u32::try_from(self.names.len()).expect("purpose count fits u32"));
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        self.parent.push(parent);
        id
    }

    /// Add an object policy.
    pub fn add_policy(&mut self, policy: ObjectPolicy) {
        self.policies.push(policy);
    }

    /// Look up a purpose by name.
    pub fn purpose_by_name(&self, name: &str) -> Option<PurposeId> {
        self.by_name.get(name).copied()
    }

    /// A purpose's name.
    pub fn purpose_name(&self, id: PurposeId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of registered purposes.
    pub fn purpose_count(&self) -> usize {
        self.names.len()
    }

    /// Number of object policies.
    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    /// The object policies (read-only; the read-path snapshot replicates
    /// the purpose decision over these).
    pub fn policies(&self) -> &[ObjectPolicy] {
        &self.policies
    }

    /// Is `child` equal to or a descendant of `ancestor`?
    pub fn satisfies(&self, child: PurposeId, ancestor: PurposeId) -> bool {
        let mut cur = Some(child);
        let mut steps = 0;
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.parent.get(c.0 as usize).copied().flatten();
            steps += 1;
            if steps > self.parent.len() {
                return false; // defensive: malformed hierarchy
            }
        }
        false
    }

    /// The privacy check behind the generated `purpose_ok` condition: given
    /// the session's active roles, is the access purpose acceptable for
    /// (op, obj)?
    ///
    /// Semantics: each object policy whose role is active (directly or as a
    /// junior of an active role) *constrains* the access; the stated
    /// purpose must satisfy at least one applicable policy when any apply.
    /// Accesses with no applicable policy are purpose-unconstrained.
    pub fn check(
        &self,
        sys: &System,
        session: rbac::SessionId,
        op: OpId,
        obj: ObjId,
        purpose: Option<PurposeId>,
    ) -> bool {
        let Ok(active) = sys.session_roles(session) else {
            return false;
        };
        let mut applicable = false;
        for p in &self.policies {
            if p.op != op || p.obj != obj {
                continue;
            }
            let role_applies = active.contains(&p.role)
                || active
                    .iter()
                    .any(|&a| sys.dominates(a, p.role).unwrap_or(false));
            if !role_applies {
                continue;
            }
            applicable = true;
            if let Some(given) = purpose {
                if self.satisfies(given, p.purpose) {
                    return true;
                }
            }
        }
        !applicable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (
        System,
        PrivacyState,
        rbac::SessionId,
        OpId,
        ObjId,
        PurposeId,
        PurposeId,
    ) {
        let mut sys = System::new();
        let nurse = sys.add_role("Nurse").unwrap();
        let u = sys.add_user("u").unwrap();
        sys.assign_user(u, nurse).unwrap();
        let read = sys.add_operation("read").unwrap();
        let rec = sys.add_object("patient_record").unwrap();
        sys.grant_permission(nurse, read, rec).unwrap();
        let session = sys.create_session(u, &[nurse]).unwrap();

        let mut privacy = PrivacyState::new();
        let treatment = privacy.add_purpose("treatment", None);
        let billing = privacy.add_purpose("billing", Some(treatment));
        privacy.add_policy(ObjectPolicy {
            op: read,
            obj: rec,
            role: nurse,
            purpose: treatment,
        });
        (sys, privacy, session, read, rec, treatment, billing)
    }

    #[test]
    fn purpose_hierarchy_satisfaction() {
        let (_, p, _, _, _, treatment, billing) = setup();
        assert!(p.satisfies(treatment, treatment));
        assert!(
            p.satisfies(billing, treatment),
            "descendant satisfies ancestor"
        );
        assert!(!p.satisfies(treatment, billing), "not the other way");
    }

    #[test]
    fn policy_constrains_matching_access() {
        let (sys, p, session, read, rec, treatment, billing) = setup();
        // Correct purpose: allowed.
        assert!(p.check(&sys, session, read, rec, Some(treatment)));
        // Descendant purpose: allowed.
        assert!(p.check(&sys, session, read, rec, Some(billing)));
        // No purpose stated but a policy applies: denied.
        assert!(!p.check(&sys, session, read, rec, None));
        // Unrelated purpose: denied.
        let mut p2 = p.clone();
        let marketing = p2.add_purpose("marketing", None);
        assert!(!p2.check(&sys, session, read, rec, Some(marketing)));
    }

    #[test]
    fn unconstrained_access_needs_no_purpose() {
        let (mut sys, p, session, read, _, _, _) = setup();
        let other = sys.add_object("cafeteria_menu").unwrap();
        assert!(p.check(&sys, session, read, other, None));
    }

    #[test]
    fn policy_applies_via_role_dominance() {
        // A senior role activating inherits the junior's privacy constraint.
        let (mut sys, p, _, read, rec, treatment, _) = setup();
        let nurse = sys.role_by_name("Nurse").unwrap();
        let head = sys.add_ascendant("HeadNurse", nurse).unwrap();
        let boss = sys.add_user("boss").unwrap();
        sys.assign_user(boss, head).unwrap();
        let s2 = sys.create_session(boss, &[head]).unwrap();
        assert!(!p.check(&sys, s2, read, rec, None));
        assert!(p.check(&sys, s2, read, rec, Some(treatment)));
    }

    #[test]
    fn registry_basics() {
        let mut p = PrivacyState::new();
        let a = p.add_purpose("a", None);
        let a2 = p.add_purpose("a", None);
        assert_eq!(a, a2, "idempotent");
        assert_eq!(p.purpose_by_name("a"), Some(a));
        assert_eq!(p.purpose_name(a), Some("a"));
        assert_eq!(p.purpose_count(), 1);
    }
}
