//! A thread-safe handle over the engine.
//!
//! The OWTE engine is intentionally a single-threaded state machine (every
//! event is a serializable transaction over the rule pool and the monitor).
//! Real deployments have many client threads, so [`SharedEngine`] provides
//! the obvious concurrency model: clonable handles serializing operations
//! through a mutex. The per-operation cost is microseconds (see the E5
//! benchmarks), so a single lock sustains hundreds of thousands of
//! decisions per second — contention, not the lock, is the limit.

use crate::engine::{Engine, EngineError};
use parking_lot::Mutex;
use rbac::{ObjId, OpId, RoleId, SessionId, UserId};
use sentinel::ExecReport;
use snoop::{Dur, Ts};
use std::sync::Arc;

/// A clonable, `Send + Sync` handle to a shared [`Engine`].
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<Mutex<Engine>>,
}

impl SharedEngine {
    /// Wrap an engine.
    pub fn new(engine: Engine) -> SharedEngine {
        SharedEngine {
            inner: Arc::new(Mutex::new(engine)),
        }
    }

    /// Run an arbitrary closure under the lock (escape hatch for compound
    /// read-modify-write sequences that must be atomic).
    pub fn with<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Like [`SharedEngine::with`], but gives up after `timeout` instead of
    /// blocking indefinitely behind a stuck compound operation. Returns
    /// `None` (without running `f`) if the lock was not acquired in time.
    pub fn try_with<R>(
        &self,
        timeout: std::time::Duration,
        f: impl FnOnce(&mut Engine) -> R,
    ) -> Option<R> {
        let mut guard = self.inner.try_lock_for(timeout)?;
        Some(f(&mut guard))
    }

    /// See [`Engine::user_id`].
    pub fn user_id(&self, name: &str) -> Result<UserId, EngineError> {
        self.inner.lock().user_id(name)
    }

    /// See [`Engine::role_id`].
    pub fn role_id(&self, name: &str) -> Result<RoleId, EngineError> {
        self.inner.lock().role_id(name)
    }

    /// See [`Engine::create_session`].
    pub fn create_session(
        &self,
        user: UserId,
        initial: &[RoleId],
    ) -> Result<SessionId, EngineError> {
        self.inner.lock().create_session(user, initial)
    }

    /// See [`Engine::delete_session`].
    pub fn delete_session(&self, user: UserId, session: SessionId) -> Result<(), EngineError> {
        self.inner.lock().delete_session(user, session)
    }

    /// See [`Engine::add_active_role`].
    pub fn add_active_role(
        &self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        self.inner.lock().add_active_role(user, session, role)
    }

    /// See [`Engine::drop_active_role`].
    pub fn drop_active_role(
        &self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        self.inner.lock().drop_active_role(user, session, role)
    }

    /// See [`Engine::check_access`].
    pub fn check_access(
        &self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
    ) -> Result<bool, EngineError> {
        self.inner.lock().check_access(session, op, obj)
    }

    /// See [`Engine::set_context`].
    pub fn set_context(&self, key: &str, value: &str) -> Result<ExecReport, EngineError> {
        self.inner.lock().set_context(key, value)
    }

    /// See [`Engine::advance`].
    pub fn advance(&self, d: Dur) -> Result<ExecReport, EngineError> {
        self.inner.lock().advance(d)
    }

    /// Current logical time.
    pub fn now(&self) -> Ts {
        self.inner.lock().now()
    }

    /// Snapshot of the alert list.
    pub fn alerts(&self) -> Vec<String> {
        self.inner.lock().alerts()
    }

    /// Total denials in the audit log.
    pub fn denial_count(&self) -> usize {
        self.inner.lock().log().denial_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy::PolicyGraph;
    use std::thread;

    fn shared() -> SharedEngine {
        let mut g = PolicyGraph::new("shared");
        g.role("worker");
        for i in 0..8 {
            let name = format!("u{i}");
            g.user(&name);
            g.assign(&name, "worker");
        }
        SharedEngine::new(Engine::from_policy(&g, Ts::ZERO).unwrap())
    }

    #[test]
    fn handles_are_send_and_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<SharedEngine>();
    }

    #[test]
    fn concurrent_sessions_from_many_threads() {
        let engine = shared();
        let role = engine.role_id("worker").unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let e = engine.clone();
            handles.push(thread::spawn(move || {
                let u = e.user_id(&format!("u{i}")).unwrap();
                for _ in 0..50 {
                    let s = e.create_session(u, &[role]).unwrap();
                    e.drop_active_role(u, s, role).unwrap();
                    e.add_active_role(u, s, role).unwrap();
                    e.delete_session(u, s).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        engine.with(|e| {
            assert_eq!(e.system().session_count(), 0, "all sessions closed");
            assert_eq!(e.log().denial_count(), 0, "no spurious denials");
        });
    }

    #[test]
    fn try_with_succeeds_on_uncontended_lock() {
        let engine = shared();
        let n = engine.try_with(std::time::Duration::from_millis(10), |e| {
            e.system().session_count()
        });
        assert_eq!(n, Some(0));
    }

    #[test]
    fn try_with_times_out_behind_a_stuck_holder() {
        let engine = shared();
        let other = engine.clone();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let holder = thread::spawn(move || {
            other.with(|_| {
                // Hold the lock until the main thread has observed the
                // timeout.
                rx.recv().unwrap();
            });
        });
        // Wait until the holder actually has the lock.
        while engine
            .try_with(std::time::Duration::from_millis(1), |_| ())
            .is_some()
        {
            std::thread::yield_now();
        }
        let res = engine.try_with(std::time::Duration::from_millis(5), |_| ());
        assert!(res.is_none(), "lock is held; try_with must give up");
        tx.send(()).unwrap();
        holder.join().unwrap();
    }

    #[test]
    fn atomic_compound_operations() {
        let engine = shared();
        let role = engine.role_id("worker").unwrap();
        let u = engine.user_id("u0").unwrap();
        // A compound invariant: session creation + first access decision
        // must observe the same state.
        let allowed = engine.with(|e| {
            let s = e.create_session(u, &[role]).unwrap();
            e.system().session_roles(s).unwrap().contains(&role)
        });
        assert!(allowed);
    }
}
