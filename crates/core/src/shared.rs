//! A thread-safe handle over the engine: serialized writes, lock-free
//! reads.
//!
//! The OWTE engine is intentionally a single-threaded state machine (every
//! event is a serializable transaction over the rule pool and the
//! monitor), so [`SharedEngine`] serializes every state-changing operation
//! through one mutex. Reads are different: `checkAccess` is the hot path
//! and is usually decision-only, so the handle keeps an immutable
//! [`AuthSnapshot`] published per write epoch and answers **grants**
//! straight from it — no mutex, readers scale with cores (see the E10
//! benchmark).
//!
//! # Read-path protocol
//!
//! * Every write bumps the engine's `state_version`; the handle mirrors it
//!   in an atomic after each lock release. A published snapshot is used
//!   only while its epoch equals the mirror.
//! * Only a **grant** is taken from the snapshot. Anything else — denials,
//!   unknown sessions, stale or missing snapshots, reads at or past the
//!   snapshot's [`valid_until`](AuthSnapshot::valid_until) horizon — falls
//!   back to the locked engine, which runs the full OWTE machinery
//!   (denial audit entry, `accessDenied` feed into active security). The
//!   one relaxation: fast-path grants skip the `Fired`/`Allowed` audit
//!   entries a locked grant would append.
//! * The first slow read after a write rebuilds and republishes the
//!   snapshot under the mutex; concurrent readers keep hitting the old
//!   epoch's snapshot until then, which is linearizable (those reads order
//!   before the write).
//!
//! # Re-entrancy contract
//!
//! The engine mutex is **not** re-entrant. Calling any `SharedEngine`
//! method from inside a [`SharedEngine::with`] closure (or any other
//! method) **on the same thread** would self-deadlock; the handle detects
//! this and panics with a clear message instead of hanging. Perform
//! compound operations on the `&mut Engine` the closure receives, not on
//! the handle. [`SharedEngine::try_with`] returns `None` instead of
//! panicking on same-thread re-entry.
//!
//! # Poisoning
//!
//! A panic inside a `with`/`try_with` closure (or any locked operation)
//! can leave the engine holding a torn half-transaction. The parking_lot
//! mutex does not poison, so the handle tracks this itself: the panicking
//! release marks the handle poisoned, after which every locked path fails
//! closed — the `Result`-returning methods yield
//! [`EngineError::Poisoned`], `try_with` returns `None`, and the
//! infallible conveniences panic with a clear message instead of touching
//! torn state. The version mirror is left at the last pre-panic epoch, so
//! the published snapshot (captured from consistent state) keeps
//! answering fast-path grant reads: a wedged writer does not take reads
//! down with it. Recovery is process restart (or rebuilding the
//! `SharedEngine` from durable state); there is no in-place un-poison.

use crate::engine::{Engine, EngineError};
use crate::snapshot::AuthSnapshot;
use parking_lot::{Mutex, RwLock};
use rbac::{ObjId, OpId, RoleId, SessionId, UserId};
use sentinel::ExecReport;
use snoop::{Dur, Ts};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A unique, never-zero id for the current thread (0 = "no owner").
fn thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    TOKEN.with(|t| {
        if t.get() == 0 {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

struct Shared {
    engine: Mutex<Engine>,
    /// The published read-path snapshot for the current write epoch.
    published: RwLock<Option<Arc<AuthSnapshot>>>,
    /// Mirror of the engine's `state_version`, updated on lock release, so
    /// readers can check snapshot currency without the mutex.
    version: AtomicU64,
    /// Thread token currently holding the engine mutex (re-entry guard).
    lock_owner: AtomicU64,
    /// Reads answered from the published snapshot.
    fast_hits: AtomicU64,
    /// Reads that took the locked path.
    slow_hits: AtomicU64,
    /// Set when a writer panicked mid-closure: the engine state may be
    /// torn, so every locked path fails closed with
    /// [`EngineError::Poisoned`] from then on. The version mirror is
    /// deliberately **not** advanced by the panicking release, so the
    /// last published (pre-panic, consistent) snapshot keeps serving
    /// fast-path reads.
    poisoned: AtomicBool,
}

/// A clonable, `Send + Sync` handle to a shared [`Engine`] with a
/// lock-free `checkAccess` read path. See the module docs for the
/// concurrency model and the re-entrancy contract.
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<Shared>,
}

/// Mutex guard that tracks the owning thread and refreshes the version
/// mirror on release.
struct EngineGuard<'a> {
    guard: parking_lot::MutexGuard<'a, Engine>,
    shared: &'a Shared,
}

impl Drop for EngineGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // The closure panicked mid-write: the engine may hold a torn
            // half-transaction. parking_lot releases the mutex without
            // std's PoisonError, so mark the poison explicitly and skip
            // the version-mirror update — the pre-panic snapshot stays
            // "current" and keeps answering fast-path reads while every
            // locked path fails closed (`EngineError::Poisoned`).
            self.shared.poisoned.store(true, Ordering::Release);
        } else {
            self.shared
                .version
                .store(self.guard.state_version(), Ordering::Release);
        }
        self.shared.lock_owner.store(0, Ordering::Release);
    }
}

impl std::ops::Deref for EngineGuard<'_> {
    type Target = Engine;
    fn deref(&self) -> &Engine {
        &self.guard
    }
}

impl std::ops::DerefMut for EngineGuard<'_> {
    fn deref_mut(&mut self) -> &mut Engine {
        &mut self.guard
    }
}

impl SharedEngine {
    /// Wrap an engine and publish its first read-path snapshot.
    pub fn new(engine: Engine) -> SharedEngine {
        let version = engine.state_version();
        let snapshot = Arc::new(engine.snapshot());
        SharedEngine {
            inner: Arc::new(Shared {
                engine: Mutex::new(engine),
                published: RwLock::new(Some(snapshot)),
                version: AtomicU64::new(version),
                lock_owner: AtomicU64::new(0),
                fast_hits: AtomicU64::new(0),
                slow_hits: AtomicU64::new(0),
                poisoned: AtomicBool::new(false),
            }),
        }
    }

    /// Acquire the engine mutex, panicking on same-thread re-entry (which
    /// would otherwise deadlock forever) and failing closed with
    /// [`EngineError::Poisoned`] once a writer has panicked mid-closure.
    fn lock(&self) -> Result<EngineGuard<'_>, EngineError> {
        if self.is_poisoned() {
            return Err(EngineError::Poisoned);
        }
        let me = thread_token();
        assert!(
            self.inner.lock_owner.load(Ordering::Acquire) != me,
            "SharedEngine re-entry: this thread already holds the engine lock \
             (a SharedEngine method was called from inside `with`/`try_with`, \
             which would deadlock); use the `&mut Engine` passed to the closure \
             for compound operations"
        );
        let guard = self.inner.engine.lock();
        // Re-check: the writer we queued behind may be the one that
        // panicked, setting the poison while we waited.
        if self.is_poisoned() {
            return Err(EngineError::Poisoned);
        }
        self.inner.lock_owner.store(me, Ordering::Release);
        Ok(EngineGuard {
            guard,
            shared: &self.inner,
        })
    }

    /// [`SharedEngine::lock`] for the infallible conveniences: panics with
    /// a clear message on a poisoned engine instead of returning an error.
    fn lock_or_panic(&self) -> EngineGuard<'_> {
        self.lock().unwrap_or_else(|_| {
            panic!(
                "SharedEngine is poisoned: a previous writer panicked mid-closure, \
                 so the engine fails closed (snapshot reads keep serving); use the \
                 Result-returning methods to observe EngineError::Poisoned"
            )
        })
    }

    /// Has a writer panicked inside the lock? Once set, every locked
    /// operation returns [`EngineError::Poisoned`] (or panics, for the
    /// infallible conveniences); fast-path snapshot reads keep serving
    /// the last consistent pre-panic state.
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Acquire)
    }

    /// The published snapshot, if it is current for the latest write epoch.
    fn current_snapshot(&self) -> Option<Arc<AuthSnapshot>> {
        let snap = self.inner.published.read().clone()?;
        (snap.epoch() == self.inner.version.load(Ordering::Acquire)).then_some(snap)
    }

    /// Rebuild and publish the snapshot if the published one is stale.
    /// Caller holds the engine lock, so the capture is consistent.
    fn republish_if_stale(&self, engine: &Engine) {
        let current = engine.state_version();
        let stale = self
            .inner
            .published
            .read()
            .as_ref()
            .is_none_or(|s| s.epoch() != current);
        if stale {
            *self.inner.published.write() = Some(Arc::new(engine.snapshot()));
        }
    }

    /// `(fast, slow)` read counters: reads answered from the published
    /// snapshot vs. reads that took the locked path.
    pub fn read_stats(&self) -> (u64, u64) {
        (
            self.inner.fast_hits.load(Ordering::Relaxed),
            self.inner.slow_hits.load(Ordering::Relaxed),
        )
    }

    /// The currently published snapshot (may be stale; compare
    /// [`AuthSnapshot::epoch`] against a fresh write if that matters).
    pub fn snapshot(&self) -> Option<Arc<AuthSnapshot>> {
        self.inner.published.read().clone()
    }

    /// Run an arbitrary closure under the lock (escape hatch for compound
    /// read-modify-write sequences that must be atomic).
    ///
    /// # Panics
    ///
    /// Panics if called from a thread that already holds the engine lock —
    /// i.e. from inside another `with`/`try_with` closure or any
    /// `SharedEngine` method on the same thread. Such a call would
    /// deadlock: the mutex is not re-entrant. Use the provided
    /// `&mut Engine` instead of the handle inside the closure.
    pub fn with<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        let mut guard = self.lock_or_panic();
        let r = f(&mut guard);
        self.republish_if_stale(&guard);
        r
    }

    /// Like [`SharedEngine::with`], but gives up after `timeout` instead of
    /// blocking indefinitely behind a stuck compound operation. Returns
    /// `None` (without running `f`) if the lock was not acquired in time —
    /// including immediately on same-thread re-entry, which could never
    /// succeed, and on a poisoned engine, whose lock must not be used.
    pub fn try_with<R>(
        &self,
        timeout: std::time::Duration,
        f: impl FnOnce(&mut Engine) -> R,
    ) -> Option<R> {
        let me = thread_token();
        if self.is_poisoned() || self.inner.lock_owner.load(Ordering::Acquire) == me {
            return None;
        }
        let guard = self.inner.engine.try_lock_for(timeout)?;
        if self.is_poisoned() {
            return None;
        }
        self.inner.lock_owner.store(me, Ordering::Release);
        let mut guard = EngineGuard {
            guard,
            shared: &self.inner,
        };
        let r = f(&mut guard);
        self.republish_if_stale(&guard);
        Some(r)
    }

    /// See [`Engine::user_id`].
    pub fn user_id(&self, name: &str) -> Result<UserId, EngineError> {
        self.lock()?.user_id(name)
    }

    /// See [`Engine::role_id`].
    pub fn role_id(&self, name: &str) -> Result<RoleId, EngineError> {
        self.lock()?.role_id(name)
    }

    /// See [`Engine::create_session`].
    pub fn create_session(
        &self,
        user: UserId,
        initial: &[RoleId],
    ) -> Result<SessionId, EngineError> {
        let mut e = self.lock()?;
        let r = e.create_session(user, initial);
        self.republish_if_stale(&e);
        r
    }

    /// See [`Engine::delete_session`].
    pub fn delete_session(&self, user: UserId, session: SessionId) -> Result<(), EngineError> {
        let mut e = self.lock()?;
        let r = e.delete_session(user, session);
        self.republish_if_stale(&e);
        r
    }

    /// See [`Engine::add_active_role`].
    pub fn add_active_role(
        &self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        let mut e = self.lock()?;
        let r = e.add_active_role(user, session, role);
        self.republish_if_stale(&e);
        r
    }

    /// See [`Engine::drop_active_role`].
    pub fn drop_active_role(
        &self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        let mut e = self.lock()?;
        let r = e.drop_active_role(user, session, role);
        self.republish_if_stale(&e);
        r
    }

    /// See [`Engine::check_access`]. Grants are answered from the
    /// published snapshot when possible (no lock); everything else takes
    /// the locked path so OWTE denial semantics (audit entry +
    /// active-security feed) are preserved.
    pub fn check_access(
        &self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
    ) -> Result<bool, EngineError> {
        if let Some(snap) = self.current_snapshot() {
            if snap.grants(session, op, obj, None) {
                self.inner.fast_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(true);
            }
        }
        self.inner.slow_hits.fetch_add(1, Ordering::Relaxed);
        let mut e = self.lock()?;
        self.republish_if_stale(&e);
        e.check_access(session, op, obj)
    }

    /// See [`Engine::check_access_for_purpose`]; same fast path as
    /// [`SharedEngine::check_access`].
    pub fn check_access_for_purpose(
        &self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
        purpose: &str,
    ) -> Result<bool, EngineError> {
        if let Some(snap) = self.current_snapshot() {
            if let Some(pid) = snap.purpose_by_name(purpose) {
                if snap.grants(session, op, obj, Some(pid)) {
                    self.inner.fast_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(true);
                }
            }
        }
        self.inner.slow_hits.fetch_add(1, Ordering::Relaxed);
        let mut e = self.lock()?;
        self.republish_if_stale(&e);
        e.check_access_for_purpose(session, op, obj, purpose)
    }

    /// `checkAccess` at a future logical time `t`: answered from the
    /// snapshot only while `t` is strictly inside its validity interval
    /// `[from, valid_until)` — a read exactly at the horizon (or past it)
    /// takes the locked path, which first advances the clock to `t`,
    /// firing any timers due on the way (deactivation Δs, temporal
    /// enable/disable boundaries).
    pub fn check_access_at(
        &self,
        t: Ts,
        session: SessionId,
        op: OpId,
        obj: ObjId,
    ) -> Result<bool, EngineError> {
        if let Some(snap) = self.current_snapshot() {
            if snap.answers_at(t) && snap.grants(session, op, obj, None) {
                self.inner.fast_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(true);
            }
        }
        self.inner.slow_hits.fetch_add(1, Ordering::Relaxed);
        let mut e = self.lock()?;
        if t > e.now() {
            e.advance_to(t)?;
        }
        self.republish_if_stale(&e);
        e.check_access(session, op, obj)
    }

    /// See [`Engine::set_context`].
    pub fn set_context(&self, key: &str, value: &str) -> Result<ExecReport, EngineError> {
        let mut e = self.lock()?;
        let r = e.set_context(key, value);
        self.republish_if_stale(&e);
        r
    }

    /// See [`Engine::advance`].
    pub fn advance(&self, d: Dur) -> Result<ExecReport, EngineError> {
        let mut e = self.lock()?;
        let r = e.advance(d);
        self.republish_if_stale(&e);
        r
    }

    /// Current logical time.
    pub fn now(&self) -> Ts {
        self.lock_or_panic().now()
    }

    /// Snapshot of the alert list.
    pub fn alerts(&self) -> Vec<String> {
        self.lock_or_panic().alerts()
    }

    /// Total denials in the audit log.
    pub fn denial_count(&self) -> usize {
        self.lock_or_panic().log().denial_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy::PolicyGraph;
    use std::thread;

    fn shared() -> SharedEngine {
        let mut g = PolicyGraph::new("shared");
        g.role("worker");
        for i in 0..8 {
            let name = format!("u{i}");
            g.user(&name);
            g.assign(&name, "worker");
        }
        SharedEngine::new(Engine::from_policy(&g, Ts::ZERO).unwrap())
    }

    fn xyz() -> SharedEngine {
        let mut g = PolicyGraph::enterprise_xyz();
        g.user("alice");
        g.assign("alice", "PM");
        SharedEngine::new(Engine::from_policy(&g, Ts::ZERO).unwrap())
    }

    #[test]
    fn handles_are_send_and_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<SharedEngine>();
    }

    #[test]
    fn concurrent_sessions_from_many_threads() {
        let engine = shared();
        let role = engine.role_id("worker").unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let e = engine.clone();
            handles.push(thread::spawn(move || {
                let u = e.user_id(&format!("u{i}")).unwrap();
                for _ in 0..50 {
                    let s = e.create_session(u, &[role]).unwrap();
                    e.drop_active_role(u, s, role).unwrap();
                    e.add_active_role(u, s, role).unwrap();
                    e.delete_session(u, s).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        engine.with(|e| {
            assert_eq!(e.system().session_count(), 0, "all sessions closed");
            assert_eq!(e.log().denial_count(), 0, "no spurious denials");
        });
    }

    #[test]
    fn grants_come_from_the_snapshot() {
        let engine = xyz();
        let alice = engine.user_id("alice").unwrap();
        let pm = engine.role_id("PM").unwrap();
        let s = engine.create_session(alice, &[pm]).unwrap();
        let (create, po) = engine.with(|e| {
            (
                e.system().op_by_name("create").unwrap(),
                e.system().obj_by_name("purchase_order").unwrap(),
            )
        });
        let (fast0, _) = engine.read_stats();
        for _ in 0..10 {
            assert!(engine.check_access(s, create, po).unwrap());
        }
        let (fast1, _) = engine.read_stats();
        assert!(
            fast1 >= fast0 + 9,
            "repeated grants are served lock-free (fast {fast0} -> {fast1})"
        );
        // Fast-path grants leave no audit residue; the locked replay of
        // the same decision would (documented relaxation).
        engine.with(|e| assert_eq!(e.log().denial_count(), 0));
    }

    #[test]
    fn mutation_invalidates_published_snapshot() {
        let engine = xyz();
        let alice = engine.user_id("alice").unwrap();
        let pm = engine.role_id("PM").unwrap();
        let s = engine.create_session(alice, &[pm]).unwrap();
        let (create, po) = engine.with(|e| {
            (
                e.system().op_by_name("create").unwrap(),
                e.system().obj_by_name("purchase_order").unwrap(),
            )
        });
        assert!(engine.check_access(s, create, po).unwrap());
        // Drop the role: the old snapshot would still grant; the handle
        // must not use it.
        engine.drop_active_role(alice, s, pm).unwrap();
        assert!(
            !engine.check_access(s, create, po).unwrap(),
            "stale snapshot must not leak a grant"
        );
        assert_eq!(engine.denial_count(), 1, "denial went through the lock");
    }

    #[test]
    #[should_panic(expected = "SharedEngine re-entry")]
    fn with_reentry_panics_instead_of_deadlocking() {
        let engine = shared();
        let inner = engine.clone();
        engine.with(|_| {
            // Same thread, lock already held: must panic, not hang.
            let _ = inner.now();
        });
    }

    #[test]
    fn try_with_refuses_reentry_without_running() {
        let engine = shared();
        let inner = engine.clone();
        let out = engine.with(|_| {
            inner.try_with(std::time::Duration::from_millis(100), |_| {
                unreachable!("closure must not run on re-entry")
            })
        });
        assert!(out.is_none(), "same-thread re-entry can never succeed");
    }

    #[test]
    fn try_with_succeeds_on_uncontended_lock() {
        let engine = shared();
        let n = engine.try_with(std::time::Duration::from_millis(10), |e| {
            e.system().session_count()
        });
        assert_eq!(n, Some(0));
    }

    #[test]
    fn try_with_times_out_behind_a_stuck_holder() {
        let engine = shared();
        let other = engine.clone();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let holder = thread::spawn(move || {
            other.with(|_| {
                // Hold the lock until the main thread has observed the
                // timeout.
                rx.recv().unwrap();
            });
        });
        // Wait until the holder actually has the lock.
        while engine
            .try_with(std::time::Duration::from_millis(1), |_| ())
            .is_some()
        {
            std::thread::yield_now();
        }
        let res = engine.try_with(std::time::Duration::from_millis(5), |_| ());
        assert!(res.is_none(), "lock is held; try_with must give up");
        tx.send(()).unwrap();
        holder.join().unwrap();
    }

    #[test]
    fn panicking_writer_poisons_instead_of_wedging() {
        let engine = xyz();
        let alice = engine.user_id("alice").unwrap();
        let pm = engine.role_id("PM").unwrap();
        let s = engine.create_session(alice, &[pm]).unwrap();
        let (create, po) = engine.with(|e| {
            (
                e.system().op_by_name("create").unwrap(),
                e.system().obj_by_name("purchase_order").unwrap(),
            )
        });
        // Prime the fast path with a published grant.
        assert!(engine.check_access(s, create, po).unwrap());
        assert!(!engine.is_poisoned());

        // A writer panics mid-closure on another thread.
        let poisoner = engine.clone();
        let joined = thread::spawn(move || {
            poisoner.with(|_| panic!("writer bug"));
        })
        .join();
        assert!(joined.is_err(), "closure panic propagates to its thread");
        assert!(engine.is_poisoned());

        // Writes fail closed with the typed error — no deadlock, no panic.
        assert!(matches!(
            engine.create_session(alice, &[pm]),
            Err(EngineError::Poisoned)
        ));
        assert!(matches!(
            engine.add_active_role(alice, s, pm),
            Err(EngineError::Poisoned)
        ));
        assert!(matches!(
            engine.advance(Dur::from_secs(1)),
            Err(EngineError::Poisoned)
        ));
        assert!(matches!(
            engine.user_id("alice"),
            Err(EngineError::Poisoned)
        ));

        // try_with refuses without running the closure.
        let ran = engine.try_with(std::time::Duration::from_millis(10), |_| {
            unreachable!("closure must not run on a poisoned engine")
        });
        assert!(ran.is_none());

        // Snapshot reads keep serving the last consistent pre-panic state.
        let (fast0, _) = engine.read_stats();
        assert!(engine.check_access(s, create, po).unwrap());
        let (fast1, _) = engine.read_stats();
        assert_eq!(fast1, fast0 + 1, "grant came from the snapshot, lock-free");

        // Anything that would need the lock fails closed too.
        assert!(matches!(
            engine.check_access_for_purpose(s, create, po, "no-such-purpose"),
            Err(EngineError::Poisoned)
        ));
    }

    #[test]
    #[should_panic(expected = "SharedEngine is poisoned")]
    fn infallible_conveniences_panic_once_poisoned() {
        let engine = shared();
        let poisoner = engine.clone();
        let _ = thread::spawn(move || poisoner.with(|_| panic!("writer bug"))).join();
        let _ = engine.now();
    }

    #[test]
    fn atomic_compound_operations() {
        let engine = shared();
        let role = engine.role_id("worker").unwrap();
        let u = engine.user_id("u0").unwrap();
        // A compound invariant: session creation + first access decision
        // must observe the same state.
        let allowed = engine.with(|e| {
            let s = e.create_session(u, &[role]).unwrap();
            e.system().session_roles(s).unwrap().contains(&role)
        });
        assert!(allowed);
    }
}
