//! The baseline comparator: a conventional, hard-coded RBAC enforcement
//! engine with **no** rules, events or detector.
//!
//! §1/§6 of the paper argue against "custom-implemented, domain-specific"
//! systems whose enforcement logic is compiled in. [`DirectEngine`] is that
//! strawman built honestly: the same policy, the same monitor, the same
//! decisions — but every check is hand-written, temporal behaviour is
//! polled on clock advance, and a policy change means rebuilding. It serves
//! two purposes: the performance baseline for the E5 benchmarks, and the
//! semantic oracle for the OWTE ≡ Direct equivalence property tests.

use crate::context::ContextState;
use crate::engine::EngineError;
use crate::privacy::PrivacyState;
use gtrbac::{
    RoleAction, RoleEvent, RoleTrigger, StatusPred, TemporalConstraints, TemporalPolicies,
};
use policy::{Binding, InstantiateError, PolicyGraph, SecurityAction, SecuritySpec};
use rbac::{ObjId, OpId, RoleId, SessionId, System, UserId};
use snoop::{Dur, Ts};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// One scheduled Δ-expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Expiry {
    user: UserId,
    session: SessionId,
    role: RoleId,
}

/// The hard-coded enforcement engine.
pub struct DirectEngine {
    /// The reference monitor (with built-in cap enforcement on).
    pub sys: System,
    temporal: TemporalPolicies,
    constraints: TemporalConstraints,
    privacy: PrivacyState,
    context: ContextState,
    binding: Binding,
    security: Vec<SecuritySpec>,
    triggers: Vec<RoleTrigger>,
    now: Ts,
    /// Δ-expiry timers, keyed by (when, sequence).
    timers: BTreeMap<(Ts, u64), Expiry>,
    /// Delayed trigger actions, keyed by (when, sequence).
    trigger_timers: BTreeMap<(Ts, u64), RoleAction>,
    timer_seq: u64,
    /// Recursion guard for trigger cascades (mirrors the OWTE executor's
    /// cascade depth limit).
    cascade_depth: usize,
    denials: VecDeque<Ts>,
    /// Alerts raised by security policies.
    pub alerts: Vec<String>,
    tripped: HashSet<String>,
    /// Lockdown flag (the DisableActivityRules response).
    pub locked_down: bool,
}

impl DirectEngine {
    /// Build from a policy (same instantiation path as the OWTE engine, so
    /// both enforce an identical monitor state; rules and events are simply
    /// not constructed).
    pub fn from_policy(graph: &PolicyGraph, start: Ts) -> Result<DirectEngine, InstantiateError> {
        let inst = policy::instantiate(graph, start)?;
        let mut sys = inst.system;
        sys.set_enforce_caps(true);
        let privacy = PrivacyState::from_policy(graph, &inst.binding);
        let context = ContextState::from_policy(graph, &inst.binding);
        let triggers = graph
            .triggers
            .iter()
            .map(|t| {
                let role = |n: &str| inst.binding.role(n);
                let to_event = |k, r| match k {
                    policy::StatusKind::Enabled => RoleEvent::Enabled(r),
                    policy::StatusKind::Disabled => RoleEvent::Disabled(r),
                };
                RoleTrigger {
                    name: t.name.clone(),
                    on: to_event(t.on_kind, role(&t.on_role)),
                    conditions: t
                        .when
                        .iter()
                        .map(|(r, enabled)| {
                            if *enabled {
                                StatusPred::IsEnabled(role(r))
                            } else {
                                StatusPred::IsDisabled(role(r))
                            }
                        })
                        .collect(),
                    action: match t.action_kind {
                        policy::StatusKind::Enabled => RoleAction::Enable(role(&t.action_role)),
                        policy::StatusKind::Disabled => RoleAction::Disable(role(&t.action_role)),
                    },
                    delay: t.after,
                }
            })
            .collect();
        Ok(DirectEngine {
            sys,
            temporal: inst.temporal,
            constraints: inst.constraints,
            privacy,
            context,
            binding: inst.binding,
            security: graph.security.clone(),
            triggers,
            now: start,
            timers: BTreeMap::new(),
            trigger_timers: BTreeMap::new(),
            timer_seq: 0,
            cascade_depth: 0,
            denials: VecDeque::new(),
            alerts: Vec::new(),
            tripped: HashSet::new(),
            locked_down: false,
        })
    }

    /// Current logical time.
    pub fn now(&self) -> Ts {
        self.now
    }

    /// Name ↔ id bindings.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// Resolve a user name.
    pub fn user_id(&self, name: &str) -> Result<UserId, EngineError> {
        self.binding
            .users
            .get(name)
            .copied()
            .ok_or_else(|| EngineError::UnknownName(name.to_string()))
    }

    /// Resolve a role name.
    pub fn role_id(&self, name: &str) -> Result<RoleId, EngineError> {
        self.binding
            .roles
            .get(name)
            .copied()
            .ok_or_else(|| EngineError::UnknownName(name.to_string()))
    }

    fn deny(&mut self, msg: String) -> EngineError {
        self.note_denial();
        EngineError::Denied(vec![msg])
    }

    fn note_denial(&mut self) {
        self.denials.push_back(self.now);
        if self.denials.len() > 65_536 {
            self.denials.pop_front();
        }
        let now = self.now;
        let mut actions = Vec::new();
        for s in &self.security {
            if self.tripped.contains(&s.name) {
                continue;
            }
            let since = now - s.window;
            let hits = self.denials.iter().filter(|&&t| t >= since).count();
            if hits >= s.threshold {
                self.tripped.insert(s.name.clone());
                actions.push(s.clone());
            }
        }
        for s in actions {
            for a in &s.actions {
                match a {
                    SecurityAction::Alert => self.alerts.push(format!(
                        "internal security alert `{}`: more than {} denials within {}",
                        s.name, s.threshold, s.window
                    )),
                    SecurityAction::DisableActivityRules => self.locked_down = true,
                    SecurityAction::DisableRole(r) => {
                        if let Some(&rid) = self.binding.roles.get(r) {
                            if self.constraints.check_disable(&self.sys, rid, now).is_ok() {
                                let _ = self.sys.disable_role(rid, true);
                            }
                        }
                    }
                }
            }
        }
    }

    // ---- the RBAC functional surface, hard-coded ---------------------------

    /// `CreateSession` with an initial active set.
    pub fn create_session(
        &mut self,
        user: UserId,
        initial: &[RoleId],
    ) -> Result<SessionId, EngineError> {
        let session = self
            .sys
            .create_session(user, &[])
            .map_err(|e| EngineError::Denied(vec![e.to_string()]))?;
        for &r in initial {
            if let Err(e) = self.add_active_role(user, session, r) {
                let _ = self.sys.delete_session(user, session);
                return Err(e);
            }
        }
        Ok(session)
    }

    /// `DeleteSession`.
    pub fn delete_session(&mut self, user: UserId, session: SessionId) -> Result<(), EngineError> {
        self.sys
            .delete_session(user, session)
            .map_err(|e| EngineError::Denied(vec![e.to_string()]))
    }

    /// `AddActiveRole`: every check the generated rules perform, inlined.
    pub fn add_active_role(
        &mut self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        if self.locked_down {
            return Err(EngineError::Unhandled(
                "no rule handled the request (activity rules disabled?)".into(),
            ));
        }
        if let Err(v) = self.constraints.check_activate(&self.sys, role) {
            return Err(self.deny(v.to_string()));
        }
        if !self.context.check(role) {
            return Err(self.deny(format!(
                "Access Denied Cannot Activate (context constraint on {role})"
            )));
        }
        if let Err(e) = self.sys.add_active_role(user, session, role) {
            return Err(self.deny(e.to_string()));
        }
        // Δ-expiry scheduling (paper Rule 7).
        if let Some(limit) = self.temporal.activation_limit(role, user) {
            let key = (self.now + limit, self.timer_seq);
            self.timer_seq += 1;
            self.timers.insert(
                key,
                Expiry {
                    user,
                    session,
                    role,
                },
            );
        }
        Ok(())
    }

    /// `DropActiveRole`, with prerequisite cascade and Δ-timer cancel.
    pub fn drop_active_role(
        &mut self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        if self.sys.session_user(session) != Ok(user) {
            return Err(self.deny(format!("Cannot Deactivate {role}: not active")));
        }
        if let Err(e) = self.sys.drop_active_role(user, session, role) {
            return Err(self.deny(e.to_string()));
        }
        self.timers
            .retain(|_, e| !(e.session == session && e.role == role));
        self.cascade_dropped(role);
        Ok(())
    }

    /// Rule 9's ASEC₂ side: when a prerequisite role stops being active
    /// anywhere, its dependents are deactivated everywhere.
    fn cascade_dropped(&mut self, role: RoleId) {
        let still_active = self
            .sys
            .all_sessions()
            .any(|s| self.sys.session_roles(s).is_ok_and(|rs| rs.contains(&role)));
        if still_active {
            return;
        }
        for dep in self.constraints.dependents_of(role) {
            let was_enabled = self.sys.is_enabled(dep).unwrap_or(false);
            let _ = self.sys.disable_role(dep, true);
            if was_enabled {
                let _ = self.sys.enable_role(dep);
            }
        }
    }

    /// `CheckAccess`.
    pub fn check_access(
        &mut self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
    ) -> Result<bool, EngineError> {
        self.check_access_inner(session, op, obj, None)
    }

    /// Privacy-aware `CheckAccess`.
    pub fn check_access_for_purpose(
        &mut self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
        purpose: &str,
    ) -> Result<bool, EngineError> {
        let pid = self
            .privacy
            .purpose_by_name(purpose)
            .ok_or_else(|| EngineError::UnknownName(purpose.to_string()))?;
        self.check_access_inner(session, op, obj, Some(pid))
    }

    fn check_access_inner(
        &mut self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
        purpose: Option<crate::privacy::PurposeId>,
    ) -> Result<bool, EngineError> {
        if self.locked_down {
            return Ok(false);
        }
        let ok = self.sys.session_user(session).is_ok()
            && self.sys.check_access(session, op, obj).unwrap_or(false)
            && self.privacy.check(&self.sys, session, op, obj, purpose);
        if !ok {
            self.note_denial();
        }
        Ok(ok)
    }

    /// `AssignUser`.
    pub fn assign_user(&mut self, user: UserId, role: RoleId) -> Result<(), EngineError> {
        if self.locked_down {
            return Err(EngineError::Unhandled("activity rules disabled".into()));
        }
        match self.sys.assign_user(user, role) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.deny(e.to_string())),
        }
    }

    /// `DeassignUser`.
    pub fn deassign_user(&mut self, user: UserId, role: RoleId) -> Result<(), EngineError> {
        match self.sys.deassign_user(user, role) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.deny(e.to_string())),
        }
    }

    /// Request enabling a role (post-condition cascade, Rule 8; guarded by
    /// enabling-time SoD like the generated ENR rules).
    pub fn enable_role(&mut self, role: RoleId) -> Result<(), EngineError> {
        if !self.temporal.should_be_enabled(role, self.now) {
            let name = self.binding.role_name(role).unwrap_or_default().to_string();
            return Err(self.deny(format!("Cannot Enable {name}")));
        }
        if let Err(v) = self.constraints.check_enable(&self.sys, role, self.now) {
            return Err(self.deny(v.to_string()));
        }
        self.sys
            .enable_role(role)
            .map_err(|e| EngineError::Denied(vec![e.to_string()]))?;
        self.run_triggers(RoleEvent::Enabled(role));
        // Cascade post-conditions; a failing requirement rolls us back.
        let required: Vec<RoleId> = self
            .constraints
            .post_conditions
            .iter()
            .filter(|pc| pc.role == role)
            .map(|pc| pc.required)
            .collect();
        for req in required {
            if let Err(e) = self.enable_role(req) {
                let _ = self.sys.disable_role(role, true);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Request disabling a role (disabling-time SoD guarded, Rule 6).
    pub fn disable_role(&mut self, role: RoleId) -> Result<(), EngineError> {
        if let Err(v) = self.constraints.check_disable(&self.sys, role, self.now) {
            return Err(self.deny(v.to_string()));
        }
        self.sys
            .disable_role(role, true)
            .map(|_| ())
            .map_err(|e| EngineError::Denied(vec![e.to_string()]))?;
        self.run_triggers(RoleEvent::Disabled(role));
        Ok(())
    }

    /// Interpret the TRBAC triggers for a role-status event — the direct
    /// analogue of the generated `TRIG_*` rules on `roleEnabled_*` /
    /// `roleDisabled_*`. Actions go through the guarded request paths;
    /// cascade depth is bounded like the OWTE executor's.
    fn run_triggers(&mut self, event: RoleEvent) {
        if self.cascade_depth >= 16 {
            return;
        }
        let fired: Vec<(RoleAction, snoop::Dur)> = self
            .triggers
            .iter()
            .filter_map(|t| gtrbac::fire(t, event, &self.sys))
            .collect();
        for (action, delay) in fired {
            if delay.is_zero() {
                self.cascade_depth += 1;
                self.apply_trigger_action(action);
                self.cascade_depth -= 1;
            } else {
                let key = (self.now + delay, self.timer_seq);
                self.timer_seq += 1;
                self.trigger_timers.insert(key, action);
            }
        }
    }

    fn apply_trigger_action(&mut self, action: RoleAction) {
        // Guarded request path; refusals (windows, SoD) are simply denials.
        let result = match action {
            RoleAction::Enable(r) => self.enable_role(r),
            RoleAction::Disable(r) => self.disable_role(r),
        };
        let _ = result;
    }

    // ---- polled temporal behaviour -------------------------------------------

    /// An external context change: update the environment, then deactivate
    /// every constrained role whose requirements no longer hold.
    pub fn set_context(&mut self, key: &str, value: &str) {
        self.context.set(key, value);
        let violated: Vec<RoleId> = self
            .context
            .constrained_roles()
            .filter(|&r| !self.context.check(r))
            .collect();
        for r in violated {
            let was_enabled = self.sys.is_enabled(r).unwrap_or(false);
            let _ = self.sys.disable_role(r, true);
            if was_enabled {
                let _ = self.sys.enable_role(r);
            }
        }
    }

    /// Advance the clock, applying shift boundaries and Δ-expiries in time
    /// order — the hand-rolled equivalent of the detector's timer queue.
    pub fn advance_to(&mut self, ts: Ts) -> Result<(), EngineError> {
        if ts < self.now {
            return Err(EngineError::Unhandled("clock regression".into()));
        }
        #[derive(Debug)]
        enum Evt {
            Boundary(RoleId, bool),
            Expire(Expiry),
            Trigger(RoleAction),
        }
        // Collect every due event, including *simultaneous* boundaries of
        // different roles (the detector's timer queue delivers those too).
        // At equal instants, shift boundaries apply before Δ-expiries —
        // matching the OWTE engine, whose calendar timers are scheduled at
        // instantiation, before any Δ timer.
        let mut due: Vec<(Ts, u8, u64, Evt)> = Vec::new();
        let mut roles: Vec<RoleId> = self.temporal.constrained_roles().collect();
        roles.sort();
        for role in roles {
            let Some(window) = self
                .temporal
                .get(role)
                .and_then(|p| p.enabling.as_ref())
                .and_then(|b| b.window.as_ref())
            else {
                continue;
            };
            let mut t = self.now;
            while let Some((bt, open)) = window.next_boundary(t) {
                if bt > ts {
                    break;
                }
                due.push((bt, 0, 0, Evt::Boundary(role, open)));
                t = bt;
            }
        }
        let expired: Vec<((Ts, u64), Expiry)> = self
            .timers
            .range(..=(ts, u64::MAX))
            .map(|(&k, &v)| (k, v))
            .collect();
        for ((t, seq), exp) in expired {
            self.timers.remove(&(t, seq));
            due.push((t, 1, seq, Evt::Expire(exp)));
        }
        let delayed: Vec<((Ts, u64), RoleAction)> = self
            .trigger_timers
            .range(..=(ts, u64::MAX))
            .map(|(&k, &v)| (k, v))
            .collect();
        for ((t, seq), action) in delayed {
            self.trigger_timers.remove(&(t, seq));
            due.push((t, 2, seq, Evt::Trigger(action)));
        }
        due.sort_by_key(|(t, kind, seq, _)| (*t, *kind, *seq));
        for (t, _, _, evt) in due {
            self.now = t;
            match evt {
                Evt::Boundary(role, open) => {
                    if open {
                        let _ = self.sys.enable_role(role);
                        self.run_triggers(RoleEvent::Enabled(role));
                    } else {
                        let _ = self.sys.disable_role(role, true);
                        self.run_triggers(RoleEvent::Disabled(role));
                    }
                }
                Evt::Expire(e) => {
                    // Only if the very same activation is still in place.
                    if self
                        .sys
                        .session_roles(e.session)
                        .is_ok_and(|rs| rs.contains(&e.role))
                    {
                        let _ = self.sys.drop_active_role(e.user, e.session, e.role);
                        self.cascade_dropped(e.role);
                    }
                }
                Evt::Trigger(action) => {
                    self.apply_trigger_action(action);
                }
            }
        }
        self.now = ts;
        Ok(())
    }

    /// Advance by a duration.
    pub fn advance(&mut self, d: Dur) -> Result<(), EngineError> {
        self.advance_to(self.now + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy::graph::DailyWindow;
    use snoop::Civil;

    fn hospital() -> PolicyGraph {
        let mut g = PolicyGraph::new("hospital");
        g.role("Doctor");
        g.role("DayDoctor").enabling = Some(DailyWindow {
            start_h: 8,
            start_m: 0,
            end_h: 16,
            end_m: 0,
        });
        g.role("Nurse").max_activation = Some(Dur::from_hours(2));
        g.user("bob");
        g.assign("bob", "Doctor");
        g.assign("bob", "DayDoctor");
        g.assign("bob", "Nurse");
        g
    }

    #[test]
    fn shift_windows_polled_on_advance() {
        let g = hospital();
        let mut e = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
        let bob = e.user_id("bob").unwrap();
        let day = e.role_id("DayDoctor").unwrap();
        let s = e.create_session(bob, &[]).unwrap();
        // Midnight: disabled.
        assert!(e.add_active_role(bob, s, day).is_err());
        // 9 a.m.: enabled.
        e.advance_to(Civil::new(2000, 1, 1, 9, 0, 0).to_ts())
            .unwrap();
        e.add_active_role(bob, s, day).unwrap();
        // 5 p.m.: disabled again, and the activation was dropped.
        e.advance_to(Civil::new(2000, 1, 1, 17, 0, 0).to_ts())
            .unwrap();
        assert!(!e.sys.session_roles(s).unwrap().contains(&day));
    }

    #[test]
    fn delta_expiry_drops_activation() {
        let g = hospital();
        let mut e = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
        let bob = e.user_id("bob").unwrap();
        let nurse = e.role_id("Nurse").unwrap();
        let s = e.create_session(bob, &[nurse]).unwrap();
        e.advance(Dur::from_hours(1)).unwrap();
        assert!(e.sys.session_roles(s).unwrap().contains(&nurse));
        e.advance(Dur::from_hours(2)).unwrap();
        assert!(!e.sys.session_roles(s).unwrap().contains(&nurse));
        // Re-activation restarts the clock.
        e.add_active_role(bob, s, nurse).unwrap();
        e.advance(Dur::from_hours(1)).unwrap();
        assert!(e.sys.session_roles(s).unwrap().contains(&nurse));
    }

    #[test]
    fn manual_drop_cancels_delta_timer() {
        let g = hospital();
        let mut e = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
        let bob = e.user_id("bob").unwrap();
        let nurse = e.role_id("Nurse").unwrap();
        let s = e.create_session(bob, &[nurse]).unwrap();
        e.advance(Dur::from_hours(1)).unwrap();
        e.drop_active_role(bob, s, nurse).unwrap();
        e.add_active_role(bob, s, nurse).unwrap();
        // The stale timer (from the first activation) must not fire at 2h.
        e.advance(Dur::from_hours(1)).unwrap();
        assert!(e.sys.session_roles(s).unwrap().contains(&nurse));
        e.advance(Dur::from_hours(1)).unwrap();
        assert!(!e.sys.session_roles(s).unwrap().contains(&nurse));
    }

    #[test]
    fn security_threshold_trips_once() {
        let mut g = hospital();
        g.security.push(SecuritySpec {
            name: "storm".into(),
            threshold: 3,
            window: Dur::from_secs(60),
            actions: vec![SecurityAction::Alert],
        });
        let mut e = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
        let bob = e.user_id("bob").unwrap();
        let s = e.create_session(bob, &[]).unwrap();
        let doctor = e.role_id("Doctor").unwrap();
        let day = e.role_id("DayDoctor").unwrap();
        for _ in 0..5 {
            // DayDoctor is disabled at midnight: each attempt denies.
            let _ = e.add_active_role(bob, s, day);
            let _ = e.drop_active_role(bob, s, doctor);
        }
        assert_eq!(e.alerts.len(), 1, "tripped once, then latched");
    }

    #[test]
    fn lockdown_blocks_activity() {
        let mut g = hospital();
        g.security.push(SecuritySpec {
            name: "storm".into(),
            threshold: 2,
            window: Dur::from_secs(60),
            actions: vec![SecurityAction::Alert, SecurityAction::DisableActivityRules],
        });
        let mut e = DirectEngine::from_policy(&g, Ts::ZERO).unwrap();
        let bob = e.user_id("bob").unwrap();
        let day = e.role_id("DayDoctor").unwrap();
        let doctor = e.role_id("Doctor").unwrap();
        let s = e.create_session(bob, &[]).unwrap();
        let _ = e.add_active_role(bob, s, day);
        let _ = e.add_active_role(bob, s, day);
        assert!(e.locked_down);
        // Even a legitimate activation is now refused.
        assert!(matches!(
            e.add_active_role(bob, s, doctor),
            Err(EngineError::Unhandled(_))
        ));
    }
}
