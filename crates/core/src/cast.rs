//! Checked width conversions for log positions and counters.
//!
//! WAL offsets, commit indexes and history lengths travel as `u64`; they
//! index in-memory `Vec`s as `usize`. On 64-bit targets the bare `as`
//! cast is lossless, but on a 32-bit target it silently truncates — a
//! commit index past `u32::MAX` would wrap and slice the wrong prefix of
//! a replica's history. Every such conversion in the replication and
//! sharding layers goes through [`checked_index`], which fails loudly
//! instead of corrupting silently.

/// Convert a `u64` log position or count to `usize`, panicking (with the
/// offending value in the message) if this platform's `usize` cannot
/// represent it. Positions past `usize::MAX` mean the in-memory mirror of
/// the log could never have been built on this target in the first place,
/// so continuing with a wrapped index would corrupt state — failing is
/// the only sound option.
#[inline]
pub fn checked_index(v: u64) -> usize {
    usize::try_from(v)
        .unwrap_or_else(|_| panic!("log position {v} exceeds this platform's usize range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_in_range_values() {
        assert_eq!(checked_index(0), 0);
        assert_eq!(checked_index(123_456), 123_456);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn covers_the_full_range_on_64_bit() {
        assert_eq!(checked_index(u64::MAX), usize::MAX);
    }
}
