//! Journaling and replay: deterministic state-machine replication of the
//! engine — the primitive behind the paper's future-work direction
//! ("to provide *distributed* access control for enterprises").
//!
//! Because the engine is a deterministic function of (policy, operation
//! sequence) — the virtual clock removes all wall-time dependence — a
//! replica that applies the same journal reaches the same state. The
//! journal records exactly the *external* inputs (public API calls);
//! everything derived (cascaded events, `accessDenied` feeds, timer
//! firings) is reproduced by the rules during replay.

use crate::engine::{Engine, EngineError};
use policy::PolicyGraph;
use rbac::{ObjId, OpId, RoleId, SessionId, UserId};
use serde::{Deserialize, Serialize};
use snoop::{Params, Ts};

/// One externally-driven operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// `CreateSession(user, initial roles)`.
    CreateSession {
        /// The user.
        user: UserId,
        /// Initial active roles.
        initial: Vec<RoleId>,
    },
    /// `DeleteSession(user, session)`.
    DeleteSession {
        /// The owner.
        user: UserId,
        /// The session.
        session: SessionId,
    },
    /// `AddActiveRole(user, session, role)`.
    AddActiveRole {
        /// The user.
        user: UserId,
        /// The session.
        session: SessionId,
        /// The role.
        role: RoleId,
    },
    /// `DropActiveRole(user, session, role)`.
    DropActiveRole {
        /// The user.
        user: UserId,
        /// The session.
        session: SessionId,
        /// The role.
        role: RoleId,
    },
    /// `CheckAccess(session, op, obj, purpose)` — recorded because denials
    /// feed active security, so checks *are* state-changing.
    CheckAccess {
        /// The session.
        session: SessionId,
        /// The operation.
        op: OpId,
        /// The object.
        obj: ObjId,
        /// Purpose id, −1 for none.
        purpose: i64,
    },
    /// `AssignUser`.
    AssignUser {
        /// The user.
        user: UserId,
        /// The role.
        role: RoleId,
    },
    /// `DeassignUser`.
    DeassignUser {
        /// The user.
        user: UserId,
        /// The role.
        role: RoleId,
    },
    /// `EnableRole` request.
    EnableRole {
        /// The role.
        role: RoleId,
    },
    /// `DisableRole` request.
    DisableRole {
        /// The role.
        role: RoleId,
    },
    /// External context event.
    SetContext {
        /// Context key.
        key: String,
        /// Context value.
        value: String,
    },
    /// Clock advance to an absolute instant.
    AdvanceTo {
        /// The target time.
        to: Ts,
    },
    /// A raw external event (escape hatch for custom primitives).
    RawEvent {
        /// Event name.
        event: String,
        /// Parameters.
        params: Params,
    },
}

/// An append-only, serializable operation log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Journal {
    /// The policy the journal starts from.
    pub policy: PolicyGraph,
    /// The logical start time.
    pub start: Ts,
    /// Operations in application order.
    pub ops: Vec<JournalOp>,
}

impl Journal {
    /// An empty journal rooted at (policy, start).
    pub fn new(policy: PolicyGraph, start: Ts) -> Journal {
        Journal {
            policy,
            start,
            ops: Vec::new(),
        }
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the journal empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A recording façade over an engine: every public operation is applied
/// *and* journaled, so a replica can be brought to the same state with
/// [`replay`].
pub struct RecordingEngine {
    engine: Engine,
    journal: Journal,
}

impl RecordingEngine {
    /// Build engine + empty journal from a policy.
    pub fn from_policy(
        graph: &PolicyGraph,
        start: Ts,
    ) -> Result<RecordingEngine, policy::InstantiateError> {
        Ok(RecordingEngine {
            engine: Engine::from_policy(graph, start)?,
            journal: Journal::new(graph.clone(), start),
        })
    }

    /// The wrapped engine (read-only access; mutations must go through the
    /// recording methods or the journal would be incomplete).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The journal so far.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// See [`Engine::create_session`]. Failed operations are journaled too:
    /// denials change state (audit log, security windows).
    pub fn create_session(
        &mut self,
        user: UserId,
        initial: &[RoleId],
    ) -> Result<SessionId, EngineError> {
        self.journal.ops.push(JournalOp::CreateSession {
            user,
            initial: initial.to_vec(),
        });
        self.engine.create_session(user, initial)
    }

    /// See [`Engine::delete_session`].
    pub fn delete_session(&mut self, user: UserId, session: SessionId) -> Result<(), EngineError> {
        self.journal
            .ops
            .push(JournalOp::DeleteSession { user, session });
        self.engine.delete_session(user, session)
    }

    /// See [`Engine::add_active_role`].
    pub fn add_active_role(
        &mut self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        self.journal.ops.push(JournalOp::AddActiveRole {
            user,
            session,
            role,
        });
        self.engine.add_active_role(user, session, role)
    }

    /// See [`Engine::drop_active_role`].
    pub fn drop_active_role(
        &mut self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        self.journal.ops.push(JournalOp::DropActiveRole {
            user,
            session,
            role,
        });
        self.engine.drop_active_role(user, session, role)
    }

    /// See [`Engine::check_access`].
    pub fn check_access(
        &mut self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
    ) -> Result<bool, EngineError> {
        self.journal.ops.push(JournalOp::CheckAccess {
            session,
            op,
            obj,
            purpose: -1,
        });
        self.engine.check_access(session, op, obj)
    }

    /// See [`Engine::assign_user`].
    pub fn assign_user(&mut self, user: UserId, role: RoleId) -> Result<(), EngineError> {
        self.journal.ops.push(JournalOp::AssignUser { user, role });
        self.engine.assign_user(user, role)
    }

    /// See [`Engine::deassign_user`].
    pub fn deassign_user(&mut self, user: UserId, role: RoleId) -> Result<(), EngineError> {
        self.journal
            .ops
            .push(JournalOp::DeassignUser { user, role });
        self.engine.deassign_user(user, role)
    }

    /// See [`Engine::enable_role`].
    pub fn enable_role(&mut self, role: RoleId) -> Result<(), EngineError> {
        self.journal.ops.push(JournalOp::EnableRole { role });
        self.engine.enable_role(role)
    }

    /// See [`Engine::disable_role`].
    pub fn disable_role(&mut self, role: RoleId) -> Result<(), EngineError> {
        self.journal.ops.push(JournalOp::DisableRole { role });
        self.engine.disable_role(role)
    }

    /// See [`Engine::set_context`].
    pub fn set_context(&mut self, key: &str, value: &str) -> Result<(), EngineError> {
        self.journal.ops.push(JournalOp::SetContext {
            key: key.to_string(),
            value: value.to_string(),
        });
        self.engine.set_context(key, value).map(|_| ())
    }

    /// See [`Engine::advance_to`].
    pub fn advance_to(&mut self, to: Ts) -> Result<(), EngineError> {
        self.journal.ops.push(JournalOp::AdvanceTo { to });
        self.engine.advance_to(to).map(|_| ())
    }

    /// Resolve names through the engine.
    pub fn user_id(&self, name: &str) -> Result<UserId, EngineError> {
        self.engine.user_id(name)
    }

    /// Resolve a role name.
    pub fn role_id(&self, name: &str) -> Result<RoleId, EngineError> {
        self.engine.role_id(name)
    }
}

/// Apply one journaled operation to an engine.
///
/// Errors are part of the recorded history (a denied request still counted
/// toward security windows), so most are expected and swallowed exactly as
/// the original caller observed them. The exception is `AdvanceTo`: the
/// virtual clock going backwards means the journal itself is malformed, so
/// that error propagates.
pub fn apply_op(e: &mut Engine, op: &JournalOp) -> Result<(), EngineError> {
    match op {
        JournalOp::CreateSession { user, initial } => {
            let _ = e.create_session(*user, initial);
        }
        JournalOp::DeleteSession { user, session } => {
            let _ = e.delete_session(*user, *session);
        }
        JournalOp::AddActiveRole {
            user,
            session,
            role,
        } => {
            let _ = e.add_active_role(*user, *session, *role);
        }
        JournalOp::DropActiveRole {
            user,
            session,
            role,
        } => {
            let _ = e.drop_active_role(*user, *session, *role);
        }
        JournalOp::CheckAccess {
            session, op, obj, ..
        } => {
            let _ = e.check_access(*session, *op, *obj);
        }
        JournalOp::AssignUser { user, role } => {
            let _ = e.assign_user(*user, *role);
        }
        JournalOp::DeassignUser { user, role } => {
            let _ = e.deassign_user(*user, *role);
        }
        JournalOp::EnableRole { role } => {
            let _ = e.enable_role(*role);
        }
        JournalOp::DisableRole { role } => {
            let _ = e.disable_role(*role);
        }
        JournalOp::SetContext { key, value } => {
            let _ = e.set_context(key, value);
        }
        JournalOp::AdvanceTo { to } => {
            e.advance_to(*to)?;
        }
        JournalOp::RawEvent { event, params } => {
            let _ = e.dispatch(event, params.clone());
        }
    }
    Ok(())
}

/// Rebuild an engine by replaying a journal. Deterministic: the result is
/// state-equal to the engine the journal was recorded from (the replication
/// property tests assert this).
pub fn replay(journal: &Journal) -> Result<Engine, EngineError> {
    let mut e = Engine::from_policy(&journal.policy, journal.start)
        .map_err(|err| EngineError::Unhandled(err.to_string()))?;
    for op in &journal.ops {
        apply_op(&mut e, op)?;
    }
    Ok(e)
}

/// Current on-the-wire version of the journal serde format.
///
/// Bump this when [`Journal`]'s shape changes incompatibly; old readers
/// then reject new journals with a clear error instead of misparsing them.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Versioned wire envelope for a journal: `{version, policy, start, ops}`.
///
/// Deserialization fails closed: a journal stamped with any version other
/// than [`JOURNAL_FORMAT_VERSION`] is rejected with an explanatory error
/// rather than parsed on a guess.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JournalEnvelope {
    version: u32,
    /// The enclosed journal.
    #[serde(flatten)]
    pub journal: Journal,
}

impl JournalEnvelope {
    /// Wrap `journal` in an envelope stamped with the current version.
    pub fn new(journal: Journal) -> JournalEnvelope {
        JournalEnvelope {
            version: JOURNAL_FORMAT_VERSION,
            journal,
        }
    }

    /// The stamped format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Unwrap the journal.
    pub fn into_journal(self) -> Journal {
        self.journal
    }
}

impl<'de> Deserialize<'de> for JournalEnvelope {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Shadow {
            version: u32,
            #[serde(flatten)]
            journal: Journal,
        }
        let s = Shadow::deserialize(d)?;
        if s.version != JOURNAL_FORMAT_VERSION {
            return Err(serde::de::Error::custom(format!(
                "unsupported journal format version {} (this build reads version {}); \
                 refusing to parse a format it might misinterpret",
                s.version, JOURNAL_FORMAT_VERSION
            )));
        }
        Ok(JournalEnvelope {
            version: s.version,
            journal: s.journal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop::Dur;

    fn policy() -> PolicyGraph {
        let mut g = PolicyGraph::new("replicated");
        g.role("clerk");
        g.role("night").enabling = Some(policy::DailyWindow {
            start_h: 22,
            start_m: 0,
            end_h: 6,
            end_m: 0,
        });
        g.role("timed").max_activation = Some(Dur::from_hours(1));
        g.user("ann");
        g.assign("ann", "clerk");
        g.assign("ann", "timed");
        g.permission("p", "read", "ledger");
        g.grant("p", "clerk");
        g
    }

    /// State equality: sessions, active roles, enabled flags, audit length.
    fn assert_state_equal(a: &Engine, b: &Engine) {
        let (sa, sb) = (a.system(), b.system());
        assert_eq!(
            sa.all_sessions().collect::<Vec<_>>(),
            sb.all_sessions().collect::<Vec<_>>()
        );
        for s in sa.all_sessions() {
            assert_eq!(sa.session_roles(s).unwrap(), sb.session_roles(s).unwrap());
        }
        for r in sa.all_roles() {
            assert_eq!(sa.is_enabled(r).unwrap(), sb.is_enabled(r).unwrap());
        }
        assert_eq!(a.log().entries(), b.log().entries(), "audit logs identical");
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn replica_converges_to_primary_state() {
        let g = policy();
        let mut primary = RecordingEngine::from_policy(&g, Ts::ZERO).unwrap();
        let ann = primary.user_id("ann").unwrap();
        let clerk = primary.role_id("clerk").unwrap();
        let timed = primary.role_id("timed").unwrap();
        let s = primary.create_session(ann, &[clerk]).unwrap();
        primary.add_active_role(ann, s, timed).unwrap();
        primary.advance_to(Ts::from_secs(30 * 60)).unwrap();
        let read = primary.engine().system().op_by_name("read").unwrap();
        let ledger = primary.engine().system().obj_by_name("ledger").unwrap();
        assert!(primary.check_access(s, read, ledger).unwrap());
        // Past the Δ expiry of `timed`.
        primary.advance_to(Ts::from_secs(2 * 3600)).unwrap();
        primary.set_context("zone", "z1").unwrap();

        let replica = replay(primary.journal()).unwrap();
        assert_state_equal(primary.engine(), &replica);
    }

    #[test]
    fn denied_operations_replay_identically() {
        let g = policy();
        let mut primary = RecordingEngine::from_policy(&g, Ts::ZERO).unwrap();
        let ann = primary.user_id("ann").unwrap();
        let night = primary.role_id("night").unwrap();
        let s = primary.create_session(ann, &[]).unwrap();
        // Denied twice (night shift closed at midnight... wait, 22–06 wraps:
        // midnight is inside; use an unassigned role instead).
        assert!(primary.add_active_role(ann, s, night).is_err());
        assert!(primary.add_active_role(ann, s, night).is_err());
        let replica = replay(primary.journal()).unwrap();
        assert_state_equal(primary.engine(), &replica);
        assert_eq!(replica.log().denial_count(), 2);
    }

    #[test]
    fn journal_serializes_round_trip() {
        let g = policy();
        let mut primary = RecordingEngine::from_policy(&g, Ts::ZERO).unwrap();
        let ann = primary.user_id("ann").unwrap();
        let clerk = primary.role_id("clerk").unwrap();
        primary.create_session(ann, &[clerk]).unwrap();
        primary.advance_to(Ts::from_secs(60)).unwrap();

        let json = serde_json::to_string(primary.journal()).unwrap();
        let back: Journal = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, primary.journal());
        // A replica built from the wire format is still state-equal.
        let replica = replay(&back).unwrap();
        assert_state_equal(primary.engine(), &replica);
    }

    #[test]
    fn envelope_round_trips_current_version() {
        let g = policy();
        let mut primary = RecordingEngine::from_policy(&g, Ts::ZERO).unwrap();
        let ann = primary.user_id("ann").unwrap();
        let clerk = primary.role_id("clerk").unwrap();
        primary.create_session(ann, &[clerk]).unwrap();
        let env = JournalEnvelope::new(primary.journal().clone());
        let json = serde_json::to_string(&env).unwrap();
        assert!(json.contains("\"version\":1"));
        let back: JournalEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back.version(), JOURNAL_FORMAT_VERSION);
        assert_eq!(&back.into_journal(), primary.journal());
    }

    #[test]
    fn envelope_rejects_unknown_future_version() {
        let g = policy();
        let env = JournalEnvelope::new(Journal::new(g, Ts::ZERO));
        let json = serde_json::to_string(&env).unwrap();
        let future = json.replacen("\"version\":1", "\"version\":99", 1);
        assert_ne!(json, future, "version field must be present to bump");
        let err = serde_json::from_str::<JournalEnvelope>(&future).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unsupported journal format version 99"),
            "error should name the offending version: {msg}"
        );
    }

    #[test]
    fn replay_is_idempotent() {
        let g = policy();
        let mut primary = RecordingEngine::from_policy(&g, Ts::ZERO).unwrap();
        let ann = primary.user_id("ann").unwrap();
        let clerk = primary.role_id("clerk").unwrap();
        primary.create_session(ann, &[clerk]).unwrap();
        let r1 = replay(primary.journal()).unwrap();
        let r2 = replay(primary.journal()).unwrap();
        assert_state_equal(&r1, &r2);
    }
}
