//! The write-ahead log: checksummed frames in rotating segments, plus
//! snapshots for `O(tail)` recovery.
//!
//! The WAL is payload-agnostic — it stores opaque byte records with a
//! global, contiguous record index — and is written entirely against the
//! [`Storage`] trait so the crash-recovery state machine can be exercised
//! under the deterministic fault injector.
//!
//! ## On-disk layout
//!
//! * **Segments** `wal-{seq:010}.seg` — a 28-byte header
//!   (`b"OWTEWAL1"` magic · format version `u32` · segment seq `u64` ·
//!   index of the segment's first record `u64`, all little-endian)
//!   followed by frames `[len: u32][hcrc: u32][crc: u32][payload]`.
//!   `hcrc` covers the length field alone, so a bit flip in `len` is
//!   detected as corruption instead of being misread as a torn tail (an
//!   enlarged `len` would otherwise look like a frame the file ends
//!   inside of); `crc` covers the length field and the payload, so a bit
//!   flip anywhere else in a complete frame is detected too.
//! * **Snapshots** `snap-{ops:010}.snap` — a 20-byte header
//!   (`b"OWTESNP1"` · version · covered record count `u64`) followed by a
//!   single frame holding the state blob.
//!
//! ## Crash rules
//!
//! Recovery distinguishes three situations, in line with the classical
//! WAL treatment:
//!
//! * **Torn tail** — the file ends inside a frame (fewer bytes than the
//!   frame claims). That is what an interrupted append looks like, so the
//!   partial record is dropped and recovery proceeds.
//! * **Unacknowledged overlap** — after a failed append or sync the writer
//!   rotates to a fresh segment that restarts at the last *acknowledged*
//!   index; recovery drops the overlapped (never-acknowledged) records of
//!   the earlier segment.
//! * **Mid-log corruption** — a *complete* frame whose checksum does not
//!   match, a gap in the record index between segments, or a damaged
//!   non-tail header. None of these can result from a crash mid-append;
//!   recovery fails closed rather than serve from damaged history.

use crate::storage::{Storage, StorageError};
use std::fmt;

/// Current on-storage format version of segments and snapshots.
/// Version 2 added the per-frame header CRC (version 1 frames had only
/// the combined length+payload CRC and could not tell an enlarged length
/// field apart from a torn tail).
pub const WAL_VERSION: u32 = 2;

const SEG_MAGIC: &[u8; 8] = b"OWTEWAL1";
const SNAP_MAGIC: &[u8; 8] = b"OWTESNP1";
const SEG_HEADER_LEN: usize = 28;
const SNAP_HEADER_LEN: usize = 20;
const FRAME_HEADER_LEN: usize = 12;

/// An error from the WAL layer.
#[derive(Debug)]
pub enum WalError {
    /// The storage backend failed.
    Storage(StorageError),
    /// The log is damaged in a way a crash cannot explain; recovery
    /// refuses to proceed.
    Corrupt(String),
    /// A segment or snapshot was written by a newer format version.
    UnsupportedVersion {
        /// Version found on storage.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// [`Wal::create`] was asked to initialize a log on storage that
    /// already holds files. Creating there would leave pre-existing
    /// snapshots behind and let a later recovery resurrect the old state;
    /// use [`Wal::open`] for existing logs, or clear the storage first.
    NotEmpty {
        /// Number of files already present.
        files: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Storage(e) => write!(f, "wal storage error: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
            WalError::UnsupportedVersion { found, supported } => write!(
                f,
                "wal format version {found} is not supported (this build reads {supported})"
            ),
            WalError::NotEmpty { files } => write!(
                f,
                "refusing to create a log on non-empty storage ({files} existing files); \
                 open it instead, or clear the storage first"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<StorageError> for WalError {
    fn from(e: StorageError) -> Self {
        WalError::Storage(e)
    }
}

/// Result alias for WAL operations.
pub type Result<T> = std::result::Result<T, WalError>;

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time so
/// the codec needs no external dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 over the concatenation of `parts`.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------------- framing

/// Encode one `[len][hcrc][crc][payload]` frame.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = (payload.len() as u32).to_le_bytes();
    let hcrc = crc32(&[&len]).to_le_bytes();
    let crc = crc32(&[&len, payload]).to_le_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&len);
    out.extend_from_slice(&hcrc);
    out.extend_from_slice(&crc);
    out.extend_from_slice(payload);
    out
}

/// Decode consecutive frames starting at global record index `first`.
///
/// Returns the decoded records and whether the byte stream ended inside a
/// frame (a torn tail). A complete frame with a bad checksum is corruption
/// and fails the decode — and because the length field carries its own
/// CRC, so is a complete frame *header* whose length cannot be trusted: a
/// torn append leaves a strict prefix of correct bytes, never a full
/// header that fails its own checksum, so `hcrc` mismatch means damage,
/// not a crash.
fn decode_frames(mut bytes: &[u8], first: u64) -> Result<(Vec<(u64, Vec<u8>)>, bool)> {
    let mut recs = Vec::new();
    let mut idx = first;
    loop {
        if bytes.is_empty() {
            return Ok((recs, false));
        }
        if bytes.len() < FRAME_HEADER_LEN {
            return Ok((recs, true));
        }
        let len_bytes: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes) as usize;
        let hcrc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if crc32(&[&len_bytes]) != hcrc {
            return Err(WalError::Corrupt(format!(
                "frame header checksum mismatch on record {idx}"
            )));
        }
        if bytes.len() - FRAME_HEADER_LEN < len {
            return Ok((recs, true));
        }
        let payload = &bytes[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        if crc32(&[&len_bytes, payload]) != crc {
            return Err(WalError::Corrupt(format!(
                "checksum mismatch on record {idx}"
            )));
        }
        recs.push((idx, payload.to_vec()));
        idx += 1;
        bytes = &bytes[FRAME_HEADER_LEN + len..];
    }
}

// ------------------------------------------------------- names & headers

fn segment_name(seq: u64) -> String {
    format!("wal-{seq:010}.seg")
}

fn snapshot_name(ops: u64) -> String {
    format!("snap-{ops:010}.snap")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn encode_segment_header(seq: u64, first_op: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(SEG_HEADER_LEN);
    h.extend_from_slice(SEG_MAGIC);
    h.extend_from_slice(&WAL_VERSION.to_le_bytes());
    h.extend_from_slice(&seq.to_le_bytes());
    h.extend_from_slice(&first_op.to_le_bytes());
    h
}

fn encode_snapshot_header(ops: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(SNAP_HEADER_LEN);
    h.extend_from_slice(SNAP_MAGIC);
    h.extend_from_slice(&WAL_VERSION.to_le_bytes());
    h.extend_from_slice(&ops.to_le_bytes());
    h
}

/// Validate a segment header; returns the first record index.
fn decode_segment_header(bytes: &[u8], expect_seq: u64) -> Result<u64> {
    if &bytes[0..8] != SEG_MAGIC {
        return Err(WalError::Corrupt(format!(
            "segment {expect_seq}: bad magic"
        )));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(WalError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if seq != expect_seq {
        return Err(WalError::Corrupt(format!(
            "segment file named {expect_seq} has header seq {seq}"
        )));
    }
    Ok(u64::from_le_bytes(
        bytes[20..28].try_into().expect("8 bytes"),
    ))
}

// ------------------------------------------------------------ recovery

/// What [`Wal::open`] found on storage.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// The newest intact snapshot blob, if any snapshot exists.
    pub snapshot: Option<Vec<u8>>,
    /// Number of records the snapshot covers (0 without a snapshot).
    pub snapshot_ops: u64,
    /// Records after the snapshot, in index order.
    pub tail: Vec<Vec<u8>>,
    /// A torn final record was dropped.
    pub truncated_tail: bool,
    /// Records dropped because a later segment superseded them (they were
    /// written but never acknowledged to the caller).
    pub dropped_unacked: usize,
}

/// The write-ahead log over a [`Storage`] backend.
///
/// `Clone` (for cloneable backends like [`crate::MemStorage`]) forks the
/// log together with its storage — the deterministic simulator uses this
/// to branch a world at a choice point and explore both futures.
#[derive(Debug, Clone)]
pub struct Wal<S: Storage> {
    storage: S,
    config: WalConfig,
    /// Sequence number of the segment currently being appended to.
    seq: u64,
    /// Bytes already in the current segment (header included).
    segment_bytes: usize,
    /// Global index of the next record to append.
    next_op: u64,
    /// A previous append/sync failed or the segment is full: the next
    /// append must start a fresh segment so recovery can disambiguate the
    /// unacknowledged bytes.
    needs_rotation: bool,
}

/// Tunables for the WAL.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_max_bytes: usize,
    /// Sync after every append (durable acknowledgements). Turning this
    /// off trades the durability of the latest records for throughput —
    /// recovery then restores some acknowledged-but-unsynced suffix as
    /// lost, exactly like a real page cache.
    pub sync_on_append: bool,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            segment_max_bytes: 256 * 1024,
            sync_on_append: true,
        }
    }
}

impl<S: Storage> Wal<S> {
    /// Initialize a fresh log on `storage`, which must be empty.
    ///
    /// Creating over existing files is refused ([`WalError::NotEmpty`]):
    /// truncating segment 0 while older snapshots survive would let a
    /// later [`Wal::open`] pick a stale snapshot as newest and silently
    /// resurrect the obsolete state. Open existing logs instead, or clear
    /// the storage deliberately before creating.
    pub fn create(storage: S, config: WalConfig) -> Result<Wal<S>> {
        let existing = storage.list()?;
        if !existing.is_empty() {
            return Err(WalError::NotEmpty {
                files: existing.len(),
            });
        }
        let mut wal = Wal {
            storage,
            config,
            seq: 0,
            segment_bytes: 0,
            next_op: 0,
            needs_rotation: false,
        };
        wal.start_segment(0)?;
        Ok(wal)
    }

    /// Open an existing log, running crash recovery.
    ///
    /// Always starts a fresh segment for subsequent appends, so torn or
    /// unacknowledged bytes left by a crash are never appended after.
    pub fn open(storage: S, config: WalConfig) -> Result<(Wal<S>, Recovered)> {
        let names = storage.list()?;
        let mut segs: Vec<(u64, String)> = names
            .iter()
            .filter_map(|n| parse_segment_name(n).map(|s| (s, n.clone())))
            .collect();
        segs.sort();
        let mut snaps: Vec<(u64, String)> = names
            .iter()
            .filter_map(|n| parse_snapshot_name(n).map(|s| (s, n.clone())))
            .collect();
        snaps.sort();

        // Newest intact snapshot wins. A torn snapshot (interrupted write)
        // is skipped; a complete-but-mismatched one is corruption.
        let mut snapshot: Option<Vec<u8>> = None;
        let mut snapshot_ops = 0u64;
        for (ops, name) in snaps.iter().rev() {
            match Self::read_snapshot(&storage, *ops, name)? {
                Some(blob) => {
                    snapshot = Some(blob);
                    snapshot_ops = *ops;
                    break;
                }
                None => continue, // torn: fall back to an older snapshot
            }
        }

        // Decode all segments under the contiguity rules.
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut reached: Option<u64> = None;
        let mut truncated_tail = false;
        let mut dropped_unacked = 0usize;
        let mut max_seq = 0u64;
        let last_i = segs.len().wrapping_sub(1);
        for (i, (seq, name)) in segs.iter().enumerate() {
            max_seq = max_seq.max(*seq);
            let is_last = i == last_i;
            let bytes = storage.read(name)?;
            if bytes.len() < SEG_HEADER_LEN {
                if is_last {
                    // Crash while creating this segment; it holds nothing.
                    continue;
                }
                return Err(WalError::Corrupt(format!(
                    "segment {seq}: header truncated mid-log"
                )));
            }
            let first_op = decode_segment_header(&bytes, *seq)?;
            match reached {
                None => {}
                Some(r) => {
                    if first_op > r {
                        // A gap is only a crash-explicable state when the
                        // missing records all lie under the snapshot: an
                        // interrupted compaction can leave stale-segment
                        // holes there (and only there), while a gap past
                        // the snapshot is lost acknowledged history.
                        if first_op > snapshot_ops {
                            return Err(WalError::Corrupt(format!(
                                "gap in record index: segment {seq} starts at {first_op}, \
                                 log only reaches {r}"
                            )));
                        }
                        // Everything before the gap is superseded by the
                        // snapshot; the records are filtered out below.
                    } else if first_op < r {
                        // The writer rotated after a failed append/sync:
                        // records at and past first_op were never
                        // acknowledged. Drop them.
                        let before = records.len();
                        records.retain(|(idx, _)| *idx < first_op);
                        dropped_unacked += before - records.len();
                    }
                }
            }
            let (recs, torn) = decode_frames(&bytes[SEG_HEADER_LEN..], first_op)?;
            reached = Some(first_op + recs.len() as u64);
            records.extend(recs);
            if torn && is_last {
                truncated_tail = true;
            }
        }
        let reached = reached.unwrap_or(0);

        // The tail must connect to the snapshot (or to genesis).
        if let Some((first_idx, _)) = records.first() {
            if *first_idx > snapshot_ops {
                return Err(WalError::Corrupt(format!(
                    "records before index {first_idx} are missing and the newest \
                     snapshot only covers {snapshot_ops}"
                )));
            }
        } else if snapshot.is_none() && !segs.is_empty() && reached > 0 {
            return Err(WalError::Corrupt(
                "no snapshot and no genesis segment".into(),
            ));
        }

        let next_op = reached.max(snapshot_ops);
        let tail: Vec<Vec<u8>> = records
            .into_iter()
            .filter(|(idx, _)| *idx >= snapshot_ops)
            .map(|(_, p)| p)
            .collect();

        let mut wal = Wal {
            storage,
            config,
            seq: max_seq,
            segment_bytes: 0,
            next_op,
            needs_rotation: false,
        };
        // Fresh segment: never append after recovered (possibly torn) bytes.
        let next_seq = if segs.is_empty() { 0 } else { max_seq + 1 };
        wal.start_segment(next_seq)?;

        Ok((
            wal,
            Recovered {
                snapshot,
                snapshot_ops,
                tail,
                truncated_tail,
                dropped_unacked,
            },
        ))
    }

    /// Read and validate one snapshot file. `Ok(None)` means torn (skip);
    /// `Err` means corrupt or version-incompatible (fail closed).
    fn read_snapshot(storage: &S, ops: u64, name: &str) -> Result<Option<Vec<u8>>> {
        let bytes = storage.read(name)?;
        if bytes.len() < SNAP_HEADER_LEN {
            return Ok(None);
        }
        if &bytes[0..8] != SNAP_MAGIC {
            return Err(WalError::Corrupt(format!("snapshot {ops}: bad magic")));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != WAL_VERSION {
            return Err(WalError::UnsupportedVersion {
                found: version,
                supported: WAL_VERSION,
            });
        }
        let header_ops = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        if header_ops != ops {
            return Err(WalError::Corrupt(format!(
                "snapshot file named {ops} has header count {header_ops}"
            )));
        }
        let (mut frames, torn) = decode_frames(&bytes[SNAP_HEADER_LEN..], 0)?;
        if torn || frames.is_empty() {
            return Ok(None);
        }
        if frames.len() != 1 {
            return Err(WalError::Corrupt(format!(
                "snapshot {ops}: expected one frame, found {}",
                frames.len()
            )));
        }
        Ok(Some(frames.remove(0).1))
    }

    /// Create (or truncate) and initialize segment `seq`; commits the
    /// state change only once the header is durable.
    fn start_segment(&mut self, seq: u64) -> Result<()> {
        let name = segment_name(seq);
        let header = encode_segment_header(seq, self.next_op);
        self.needs_rotation = true; // cleared only on full success
        self.storage.create(&name)?;
        self.storage.append(&name, &header)?;
        self.storage.sync(&name)?;
        self.seq = seq;
        self.segment_bytes = header.len();
        self.needs_rotation = false;
        Ok(())
    }

    /// Append one record; returns its global index once durable (or, with
    /// `sync_on_append` off, once written).
    ///
    /// On error the record is *not* acknowledged and the WAL arranges for
    /// the next append to start a fresh segment, so recovery can tell the
    /// failed bytes apart from real history.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if self.needs_rotation || self.segment_bytes >= self.config.segment_max_bytes {
            self.start_segment(self.seq + 1)?;
        }
        let name = segment_name(self.seq);
        let frame = encode_frame(payload);
        if let Err(e) = self.storage.append(&name, &frame) {
            self.needs_rotation = true;
            return Err(e.into());
        }
        if self.config.sync_on_append {
            if let Err(e) = self.storage.sync(&name) {
                self.needs_rotation = true;
                return Err(e.into());
            }
        }
        let idx = self.next_op;
        self.next_op += 1;
        self.segment_bytes += frame.len();
        Ok(idx)
    }

    /// Make everything appended so far durable (used with
    /// `sync_on_append = false` as an explicit group-commit point).
    pub fn sync(&mut self) -> Result<()> {
        let name = segment_name(self.seq);
        if let Err(e) = self.storage.sync(&name) {
            self.needs_rotation = true;
            return Err(e.into());
        }
        Ok(())
    }

    /// Write a snapshot covering every record appended so far, then
    /// compact: rotate to a fresh segment and delete the history the
    /// snapshot supersedes.
    ///
    /// Crash-safe by ordering — the snapshot is durable before anything is
    /// deleted, so recovery always has either the new snapshot or the old
    /// chain.
    pub fn snapshot(&mut self, blob: &[u8]) -> Result<()> {
        let ops = self.next_op;
        let name = snapshot_name(ops);
        let mut bytes = encode_snapshot_header(ops);
        bytes.extend_from_slice(&encode_frame(blob));
        self.storage.create(&name)?;
        self.storage.append(&name, &bytes)?;
        self.storage.sync(&name)?;

        // Cut over to a fresh segment; every older segment is now covered
        // by the snapshot.
        self.start_segment(self.seq + 1)?;

        // Best-effort space reclamation: a crash here leaves stale files
        // that recovery handles (and the next snapshot retries deleting).
        // Segments are deleted oldest-first, and deletion stops at the
        // first failure, so the surviving segments always form a
        // contiguous suffix of the log — an interrupted compaction must
        // never open a gap in the record index between survivors.
        if let Ok(names) = self.storage.list() {
            let mut stale_segs: Vec<u64> = names
                .iter()
                .filter_map(|n| parse_segment_name(n))
                .filter(|s| *s < self.seq)
                .collect();
            stale_segs.sort_unstable();
            for s in stale_segs {
                if self.storage.delete(&segment_name(s)).is_err() {
                    break;
                }
            }
            let mut stale_snaps: Vec<u64> = names
                .iter()
                .filter_map(|n| parse_snapshot_name(n))
                .filter(|s| *s < ops)
                .collect();
            stale_snaps.sort_unstable();
            for s in stale_snaps {
                if self.storage.delete(&snapshot_name(s)).is_err() {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Global index of the next record to be appended.
    pub fn next_op(&self) -> u64 {
        self.next_op
    }

    /// Read back the acknowledged records with global index `>= from`,
    /// in index order, from storage.
    ///
    /// This is the leader's (re-)shipping read in the replication layer: a
    /// follower acknowledges a prefix, and the leader serves everything
    /// past it straight from its own durable log. Unacknowledged bytes
    /// (failed appends awaiting rotation, torn frames) are excluded — the
    /// scan applies the same supersede rule as [`Wal::open`] and caps at
    /// the acknowledged record count.
    ///
    /// The result starts at `from` only if the log still holds that
    /// record: compaction may have deleted segments the newest snapshot
    /// covers, in which case the first returned index is later than
    /// `from` and the caller must fall back to state transfer.
    pub fn records_from(&self, from: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let names = self.storage.list()?;
        let mut segs: Vec<(u64, String)> = names
            .iter()
            .filter_map(|n| parse_segment_name(n).map(|s| (s, n.clone())))
            .collect();
        segs.sort();
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        for (seq, name) in &segs {
            let bytes = self.storage.read(name)?;
            if bytes.len() < SEG_HEADER_LEN {
                continue; // freshly created segment, no records yet
            }
            let first_op = decode_segment_header(&bytes, *seq)?;
            if let Some(reach) = records.last().map(|(idx, _)| idx + 1) {
                if first_op < reach {
                    // Rotation after a failed append/sync: the overlapped
                    // records were never acknowledged.
                    records.retain(|(idx, _)| *idx < first_op);
                }
            }
            let (recs, _torn) = decode_frames(&bytes[SEG_HEADER_LEN..], first_op)?;
            records.extend(recs);
        }
        records.retain(|(idx, _)| *idx >= from && *idx < self.next_op);
        Ok(records)
    }

    /// Sequence number of the active segment.
    pub fn segment_seq(&self) -> u64 {
        self.seq
    }

    /// Borrow the storage backend.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Borrow the storage backend mutably (test hook).
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Take the storage backend back (e.g. to crash and reopen it).
    pub fn into_storage(self) -> S {
        self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn recs(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("record-{i}").into_bytes()).collect()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32 of "123456789" is the classic check value 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        for r in recs(5) {
            wal.append(&r).unwrap();
        }
        let (wal2, rec) = Wal::open(wal.into_storage(), WalConfig::default()).unwrap();
        assert_eq!(rec.tail, recs(5));
        assert!(!rec.truncated_tail);
        assert_eq!(rec.snapshot, None);
        assert_eq!(wal2.next_op(), 5);
    }

    #[test]
    fn rotation_preserves_order_across_segments() {
        let config = WalConfig {
            segment_max_bytes: 64, // tiny: force many segments
            sync_on_append: true,
        };
        let mut wal = Wal::create(MemStorage::new(), config.clone()).unwrap();
        for r in recs(20) {
            wal.append(&r).unwrap();
        }
        assert!(wal.segment_seq() > 0, "should have rotated");
        let (_, rec) = Wal::open(wal.into_storage(), config).unwrap();
        assert_eq!(rec.tail, recs(20));
    }

    #[test]
    fn torn_tail_is_truncated() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        for r in recs(3) {
            wal.append(&r).unwrap();
        }
        let mut storage = wal.into_storage();
        let name = segment_name(0);
        let len = storage.raw(&name).unwrap().len();
        storage.truncate(&name, len - 3); // cut into the last frame
        let (_, rec) = Wal::open(storage, WalConfig::default()).unwrap();
        assert_eq!(rec.tail, recs(2));
        assert!(rec.truncated_tail);
    }

    #[test]
    fn midlog_corruption_fails_closed() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        for r in recs(3) {
            wal.append(&r).unwrap();
        }
        let mut storage = wal.into_storage();
        // Flip a bit inside the first record's payload.
        storage.corrupt(&segment_name(0), SEG_HEADER_LEN + FRAME_HEADER_LEN + 2);
        match Wal::open(storage, WalConfig::default()) {
            Err(WalError::Corrupt(m)) => assert!(m.contains("checksum")),
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_compacts_and_recovers_tail_only() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        for r in recs(10) {
            wal.append(&r).unwrap();
        }
        wal.snapshot(b"state-at-10").unwrap();
        wal.append(b"post-snap").unwrap();
        let storage = wal.into_storage();
        assert_eq!(
            storage
                .list()
                .unwrap()
                .iter()
                .filter(|n| parse_snapshot_name(n).is_some())
                .count(),
            1
        );
        let (_, rec) = Wal::open(storage, WalConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(b"state-at-10".as_ref()));
        assert_eq!(rec.snapshot_ops, 10);
        assert_eq!(rec.tail, vec![b"post-snap".to_vec()]);
    }

    #[test]
    fn torn_snapshot_falls_back_to_older_chain() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        for r in recs(4) {
            wal.append(&r).unwrap();
        }
        wal.snapshot(b"good").unwrap();
        wal.append(b"tail-1").unwrap();
        // Simulate a snapshot interrupted mid-write: header only, no frame.
        let mut storage = wal.into_storage();
        storage.create(&snapshot_name(5)).unwrap();
        storage
            .append(&snapshot_name(5), &encode_snapshot_header(5))
            .unwrap();
        storage.sync(&snapshot_name(5)).unwrap();
        let (_, rec) = Wal::open(storage, WalConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(b"good".as_ref()));
        assert_eq!(rec.snapshot_ops, 4);
        assert_eq!(rec.tail, vec![b"tail-1".to_vec()]);
    }

    #[test]
    fn corrupt_snapshot_fails_closed() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        for r in recs(4) {
            wal.append(&r).unwrap();
        }
        wal.snapshot(b"state").unwrap();
        let mut storage = wal.into_storage();
        storage.corrupt(&snapshot_name(4), SNAP_HEADER_LEN + FRAME_HEADER_LEN + 1);
        assert!(matches!(
            Wal::open(storage, WalConfig::default()),
            Err(WalError::Corrupt(_))
        ));
    }

    #[test]
    fn future_version_segment_is_rejected() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        wal.append(b"r").unwrap();
        let mut storage = wal.into_storage();
        // Bump the version field (second byte, so the result is > 1).
        storage.corrupt(&segment_name(0), 9);
        match Wal::open(storage, WalConfig::default()) {
            Err(WalError::UnsupportedVersion { found, supported }) => {
                assert_ne!(found, supported);
                assert_eq!(supported, WAL_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn rotation_after_failed_sync_supersedes_unacked_record() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        for r in recs(3) {
            wal.append(&r).unwrap();
        }
        // Write a record that will never be acknowledged, then rotate the
        // way the writer does after a failed sync.
        let name = segment_name(wal.segment_seq());
        wal.storage_mut()
            .append(&name, &encode_frame(b"unacked"))
            .unwrap();
        wal.storage_mut().sync(&name).unwrap();
        wal.needs_rotation = true;
        wal.append(b"acked-after-rotation").unwrap();

        let (_, rec) = Wal::open(wal.into_storage(), WalConfig::default()).unwrap();
        let mut expect = recs(3);
        expect.push(b"acked-after-rotation".to_vec());
        assert_eq!(rec.tail, expect);
        assert_eq!(rec.dropped_unacked, 1);
    }

    #[test]
    fn create_on_nonempty_storage_is_refused() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        wal.append(b"r").unwrap();
        wal.snapshot(b"state").unwrap();
        let storage = wal.into_storage();
        match Wal::create(storage, WalConfig::default()) {
            Err(WalError::NotEmpty { files }) => assert!(files > 0),
            other => panic!("expected NotEmpty, got {other:?}"),
        }
    }

    #[test]
    fn enlarged_len_field_is_corruption_not_torn_tail() {
        let mut wal = Wal::create(MemStorage::new(), WalConfig::default()).unwrap();
        for r in recs(3) {
            wal.append(&r).unwrap();
        }
        let mut storage = wal.into_storage();
        let name = segment_name(0);
        // Flip a bit in the *length field* of the last frame so it claims
        // more payload than the file holds. Without the header CRC this
        // read as a torn tail and silently dropped the acknowledged
        // record; it must fail closed instead.
        let last_payload_len = recs(3).last().unwrap().len();
        let offset = storage.raw(&name).unwrap().len() - (FRAME_HEADER_LEN + last_payload_len);
        storage.corrupt(&name, offset);
        match Wal::open(storage, WalConfig::default()) {
            Err(WalError::Corrupt(m)) => assert!(m.contains("header"), "got: {m}"),
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn interrupted_compaction_gap_under_snapshot_recovers() {
        let config = WalConfig {
            segment_max_bytes: 64, // tiny: force several segments
            sync_on_append: true,
        };
        let mut wal = Wal::create(MemStorage::new(), config.clone()).unwrap();
        for r in recs(8) {
            wal.append(&r).unwrap();
        }
        let ops = wal.next_op();
        assert!(wal.segment_seq() >= 2, "need at least three segments");
        let mut storage = wal.into_storage();
        // Hand-write a snapshot covering the whole log, then delete a
        // *middle* stale segment: the state an unordered (or partially
        // failed) compaction could have left behind after a crash.
        let name = snapshot_name(ops);
        let mut bytes = encode_snapshot_header(ops);
        bytes.extend_from_slice(&encode_frame(b"covers-all"));
        storage.create(&name).unwrap();
        storage.append(&name, &bytes).unwrap();
        storage.sync(&name).unwrap();
        storage.delete(&segment_name(1)).unwrap();

        let (wal2, rec) = Wal::open(storage, config).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(b"covers-all".as_ref()));
        assert_eq!(rec.snapshot_ops, ops);
        assert!(rec.tail.is_empty(), "everything is under the snapshot");
        assert_eq!(wal2.next_op(), ops);
    }

    #[test]
    fn gap_past_snapshot_still_fails_closed() {
        let config = WalConfig {
            segment_max_bytes: 64,
            sync_on_append: true,
        };
        let mut wal = Wal::create(MemStorage::new(), config.clone()).unwrap();
        for r in recs(8) {
            wal.append(&r).unwrap();
        }
        assert!(wal.segment_seq() >= 2, "need at least three segments");
        let mut storage = wal.into_storage();
        // No snapshot covers the hole: deleting a middle segment loses
        // acknowledged history and recovery must refuse.
        storage.delete(&segment_name(1)).unwrap();
        match Wal::open(storage, config) {
            Err(WalError::Corrupt(m)) => assert!(m.contains("gap"), "got: {m}"),
            other => panic!("expected gap error, got {other:?}"),
        }
    }

    #[test]
    fn open_on_empty_storage_is_a_fresh_log() {
        let (wal, rec) = Wal::open(MemStorage::new(), WalConfig::default()).unwrap();
        assert_eq!(wal.next_op(), 0);
        assert!(rec.snapshot.is_none());
        assert!(rec.tail.is_empty());
    }

    #[test]
    fn reopen_after_crash_keeps_only_synced_prefix() {
        let config = WalConfig {
            segment_max_bytes: 1 << 20,
            sync_on_append: false, // appends live only in the page cache
        };
        let mut wal = Wal::create(MemStorage::new(), config.clone()).unwrap();
        for r in recs(3) {
            wal.append(&r).unwrap();
        }
        wal.sync().unwrap();
        wal.append(b"lost-1").unwrap();
        wal.append(b"lost-2").unwrap();
        let mut storage = wal.into_storage();
        storage.crash();
        let (_, rec) = Wal::open(storage, config).unwrap();
        assert_eq!(rec.tail, recs(3));
    }
}
