//! The OWTE access-control engine — the paper's contribution, assembled.
//!
//! [`Engine`] owns an instantiated policy (monitor, event graph, generated
//! rule pool) and exposes the RBAC functional-specification surface. Every
//! operation is raised as a primitive event and *enforced by the generated
//! rules*: the engine itself contains no authorization logic beyond
//! interpreting the executor's report. Denials feed the `accessDenied`
//! event, driving the active-security rules.

use crate::bridge::BridgeView;
use crate::context::ContextState;
use crate::privacy::PrivacyState;
use policy::{
    events, CompiledPolicy, InstantiateError, Instantiated, PolicyGraph, RegenReport, VerifyGate,
};
use rbac::{ObjId, OpId, RoleId, SessionId, UserId};
use sentinel::{AuditLog, ExecReport, Executor, RuleTouch, Runtime};
use serde::{Deserialize, Serialize};
use snoop::{DetectorError, Dur, EventId, Params, Ts};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Why an engine operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The rules denied the request (messages from `raise error` actions
    /// and monitor rejections).
    Denied(Vec<String>),
    /// A name could not be resolved.
    UnknownName(String),
    /// The detector rejected the operation (unknown event, clock
    /// regression).
    Detector(DetectorError),
    /// No rule handled the request, or a rule was malformed.
    Unhandled(String),
    /// The shared engine was poisoned by a panic mid-write and fails
    /// closed: state may be torn, so mutations and locked reads are
    /// refused until the process restarts (snapshot reads keep serving).
    Poisoned,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Denied(msgs) => write!(f, "denied: {}", msgs.join("; ")),
            EngineError::UnknownName(n) => write!(f, "unknown name {n:?}"),
            EngineError::Detector(e) => write!(f, "detector: {e}"),
            EngineError::Unhandled(m) => write!(f, "unhandled: {m}"),
            EngineError::Poisoned => {
                write!(f, "engine poisoned by a panicking writer; failing closed")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DetectorError> for EngineError {
    fn from(e: DetectorError) -> Self {
        EngineError::Detector(e)
    }
}

/// The rule-driven access-control engine.
///
/// Serializable so the durable layer can snapshot the complete running
/// state (detector graph, timers, monitor, audit log) and restore it
/// without replaying history.
#[derive(Clone, Serialize, Deserialize)]
pub struct Engine {
    inst: Instantiated,
    privacy: PrivacyState,
    context: ContextState,
    denials: VecDeque<Ts>,
    log: AuditLog,
    exec: Executor,
    /// Re-entrancy guard for the denial → `accessDenied` cascade.
    in_denial_cascade: bool,
    /// Cap on remembered denial timestamps.
    denial_history: usize,
    /// Monotonic write epoch: bumped by every state-changing operation
    /// (applied mutations, clock movement, session churn, policy or rule
    /// changes). Published read-path snapshots are current iff their epoch
    /// equals this. Decision-only dispatches do not bump it.
    #[serde(default)]
    state_version: u64,
    /// High-water mark of [`ExecReport::max_depth`] over every dispatch —
    /// the deepest synchronous cascade ever observed, checkable against
    /// the static analyzer's proved bound
    /// ([`policy::AnalysisReport::max_sync_depth`]).
    #[serde(default)]
    deepest_cascade: usize,
    /// Every distinct (rule, access, region) the executor actually
    /// touched, accumulated while [`Engine::record_effects`] is armed.
    /// Pure monitoring state: never consulted by any decision, so two
    /// engines differing only here are behaviourally identical. The model
    /// checker asserts each entry is covered by the analyzer's declared
    /// footprint for that rule (`FootprintViolated`).
    #[serde(default)]
    observed_touches: BTreeSet<RuleTouch>,
    /// The compiled execution plan, when the pool is licensed (proved
    /// terminating, zero analyzer errors). Pure derived state — rebuilt
    /// from the instantiation on demand, never persisted; a restored
    /// engine recompiles lazily on its first dispatch, which the sim's
    /// crash-restart schedules exercise.
    #[serde(skip)]
    compiled: Option<CompiledPolicy>,
    /// Has a (re)compile been attempted for the current pool? Prevents
    /// re-running the analyzer per dispatch when compilation is refused.
    #[serde(skip)]
    compile_checked: bool,
    /// Operator kill-switch ([`Engine::set_compiled`]): when set, the
    /// engine stays on the interpreter regardless of the license.
    #[serde(skip)]
    compile_disabled: bool,
    /// Per-role count of users active in that role **outside** this
    /// engine, injected by a sharding front so cross-user reads
    /// (cardinality caps, `RoleActiveAnywhere`) see the global picture.
    /// Volatile front-state: not journaled; a recovered shard gets a
    /// fresh push from its coordinator.
    #[serde(skip)]
    external_active: BTreeMap<RoleId, usize>,
}

/// An event to dispatch: pre-resolved (compiled fast path) or by name.
#[derive(Clone, Copy)]
enum EventRef<'a> {
    /// A pre-resolved event id (from the compiled plan's tables).
    Id(EventId),
    /// An event name, resolved by the detector at dispatch time.
    Name(&'a str),
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("policy", &self.inst.graph.name)
            .field("now", &self.now())
            .field("rules", &self.inst.pool.len())
            .field("log_entries", &self.log.len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Instantiate a policy and build the engine over it, with the logical
    /// clock starting at `start`.
    ///
    /// The generated pool is statically verified first
    /// ([`VerifyGate::DenyOnError`]): pools with `Error`-severity
    /// diagnostics are refused, and a proved-terminating pool lets the
    /// executor skip its per-dispatch cascade-depth bookkeeping. Use
    /// [`Engine::from_policy_gated`] to change the gate.
    pub fn from_policy(graph: &PolicyGraph, start: Ts) -> Result<Engine, InstantiateError> {
        Engine::from_policy_gated(graph, start, VerifyGate::DenyOnError)
    }

    /// [`Engine::from_policy`] with an explicit verification gate.
    pub fn from_policy_gated(
        graph: &PolicyGraph,
        start: Ts,
        gate: VerifyGate,
    ) -> Result<Engine, InstantiateError> {
        let (inst, report) = policy::instantiate_verified(graph, start, gate)?;
        let privacy = PrivacyState::from_policy(graph, &inst.binding);
        let context = ContextState::from_policy(graph, &inst.binding);
        // Only trust the termination proof and the per-event independence
        // certificates when the gate actually verified the pool: with the
        // gate off, the cascade-depth guard and per-rule conflict
        // re-checks stay armed. The certificates stay valid across manual
        // rule enable/disable (they are computed over disabled rules too)
        // and are recomputed on `apply_policy`.
        let verified = gate != VerifyGate::Off;
        let exec = Executor {
            assume_acyclic: verified && report.proved_terminating(),
            assume_independent: verified,
            independent_events: if verified {
                report.effects.independent_event_ids(&inst.pool)
            } else {
                BTreeSet::new()
            },
            ..Executor::new()
        };
        // Eagerly lower the verified pool into the compiled plan; an
        // unlicensed pool (or an ungated build) keeps the interpreter.
        let compiled = if verified {
            policy::compile_pool(&inst, &report).ok()
        } else {
            None
        };
        Ok(Engine {
            inst,
            privacy,
            context,
            denials: VecDeque::new(),
            log: AuditLog::new(),
            exec,
            in_denial_cascade: false,
            denial_history: 65_536,
            state_version: 0,
            deepest_cascade: 0,
            observed_touches: BTreeSet::new(),
            compiled,
            compile_checked: true,
            compile_disabled: false,
            external_active: BTreeMap::new(),
        })
    }

    /// Parse a DSL policy text and build the engine.
    pub fn from_source(src: &str, start: Ts) -> Result<Engine, Box<dyn std::error::Error>> {
        let graph = policy::parse(src)?;
        Ok(Engine::from_policy(&graph, start)?)
    }

    // ---- introspection ------------------------------------------------------

    /// The underlying monitor (read-only).
    pub fn system(&self) -> &rbac::System {
        &self.inst.system
    }

    /// The generated rule pool (read-only).
    pub fn pool(&self) -> &sentinel::RulePool {
        &self.inst.pool
    }

    /// Name ↔ id bindings.
    pub fn binding(&self) -> &policy::Binding {
        &self.inst.binding
    }

    /// The high-level policy this engine was generated from.
    pub fn policy(&self) -> &PolicyGraph {
        &self.inst.graph
    }

    /// Generation statistics.
    pub fn stats(&self) -> policy::GenStats {
        self.inst.stats
    }

    /// The audit log.
    pub fn log(&self) -> &AuditLog {
        &self.log
    }

    /// Cap the audit log's retention (`None` = unbounded). Eviction keeps
    /// running totals correct — see [`AuditLog::set_cap`]. Size the cap
    /// above the largest active-security window so `denials_since`
    /// queries stay complete.
    pub fn set_log_cap(&mut self, cap: Option<usize>) {
        self.log.set_cap(cap);
    }

    /// Purposes and object policies.
    pub fn privacy(&self) -> &PrivacyState {
        &self.privacy
    }

    /// The environment context (read-only; mutate via
    /// [`Engine::set_context`]).
    pub fn context(&self) -> &ContextState {
        &self.context
    }

    /// Current logical time.
    pub fn now(&self) -> Ts {
        self.inst.detector.now()
    }

    /// The write epoch (see the field docs): compare against a captured
    /// [`crate::AuthSnapshot::epoch`] to decide whether the snapshot is
    /// still current.
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    fn bump_version(&mut self) {
        self.state_version = self.state_version.wrapping_add(1);
    }

    /// Deepest synchronous rule cascade any dispatch has reached (see the
    /// field docs). The model checker asserts this never exceeds the
    /// analyzer's proved bound.
    pub fn deepest_cascade(&self) -> usize {
        self.deepest_cascade
    }

    /// Inject the per-role counts of users active **outside** this engine
    /// (see the field docs). Cross-user rule reads — cardinality caps,
    /// `RoleActiveAnywhere` — add these to the local counts, so a shard
    /// makes the same decision (and writes the same audit entries) a
    /// single global engine would. A changed map bumps the write epoch:
    /// published snapshots may answer differently once remote activations
    /// move.
    pub fn set_external_active(&mut self, map: BTreeMap<RoleId, usize>) {
        if self.external_active != map {
            self.external_active = map;
            self.bump_version();
        }
    }

    /// The externally-injected per-role activation counts (empty outside a
    /// sharded deployment).
    pub fn external_active(&self) -> &BTreeMap<RoleId, usize> {
        &self.external_active
    }

    /// Record a denial that happened on a **different** shard so
    /// `denials_at_least` windows (active-security rules) see the global
    /// denial stream. History-only: no `accessDenied` event is raised here
    /// — the home shard already ran that cascade.
    pub fn note_external_denial(&mut self, at: Ts) {
        self.denials.push_back(at);
        while self.denials.len() > self.denial_history {
            self.denials.pop_front();
        }
        self.bump_version();
    }

    /// Capture an immutable read-path snapshot of the current
    /// authorization state (see [`crate::AuthSnapshot`]).
    pub fn snapshot(&self) -> crate::snapshot::AuthSnapshot {
        crate::snapshot::AuthSnapshot::capture(self)
    }

    /// The event detector (read-only; snapshot capture needs timer state).
    pub(crate) fn detector_ref(&self) -> &snoop::Detector {
        &self.inst.detector
    }

    /// When the earliest pending detector timer fires, if any. A virtual-
    /// time scheduler advances to exactly this instant to fire it.
    pub fn next_timer_at(&self) -> Option<Ts> {
        self.inst.detector.next_timer_at()
    }

    /// Deadlines of all pending detector timers, sorted and deduplicated
    /// (see [`snoop::Detector::pending_timer_deadlines`]).
    pub fn pending_timer_deadlines(&self) -> Vec<Ts> {
        self.inst.detector.pending_timer_deadlines()
    }

    /// The temporal policies (read-only; snapshot capture needs the
    /// next-transition horizon).
    pub(crate) fn temporal_ref(&self) -> &gtrbac::TemporalPolicies {
        &self.inst.temporal
    }

    /// The earliest instant at which deferred machinery (a pending
    /// detector timer or a GTRBAC periodic enable/disable boundary) may
    /// change an authorization decision — the validity horizon a
    /// [`crate::AuthSnapshot`] captured now would carry. `None` means no
    /// deferred transition is scheduled. Replica monitors recompute this
    /// from engine state to cross-check a published snapshot's horizon.
    pub fn validity_horizon(&self) -> Option<Ts> {
        let next_timer = self.inst.detector.next_timer_at();
        let next_temporal = self.inst.temporal.next_transition_after(self.now());
        match (next_timer, next_temporal) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Run the static rule-pool analyzer over the current instantiation.
    pub fn analyze(&self) -> policy::AnalysisReport {
        policy::analyze(&self.inst)
    }

    /// Is the executor running with the proved-acyclic fast path (set when
    /// the analyzer proved the pool terminating at build/apply time)?
    pub fn proved_acyclic(&self) -> bool {
        self.exec.assume_acyclic
    }

    /// How many events carry an analyzer independence certificate (the
    /// executor's `assume_independent` snapshot fast path applies to
    /// them).
    pub fn independent_event_count(&self) -> usize {
        self.exec.independent_events.len()
    }

    /// Arm or disarm effect recording: while armed, every state region
    /// the executor's checks and actions touch is accumulated into
    /// [`Engine::observed_touches`] (with runtime-resolved targets). Off
    /// by default — recording costs an allocation per evaluated check.
    pub fn record_effects(&mut self, on: bool) {
        self.exec.record_effects = on;
    }

    /// Is effect recording armed?
    pub fn effects_recorded(&self) -> bool {
        self.exec.record_effects
    }

    /// Every distinct (rule, access, region) observed while
    /// [`Engine::record_effects`] was armed.
    pub fn observed_touches(&self) -> &BTreeSet<RuleTouch> {
        &self.observed_touches
    }

    /// Render the rule-interference graph in Graphviz DOT form: nodes
    /// colored by commutativity class, solid red edges write-write
    /// conflicts, dashed orange edges read-write.
    pub fn effect_graph_dot(&self) -> String {
        policy::effect_dot(&self.analyze().effects)
    }

    /// Alerts raised so far (active security).
    pub fn alerts(&self) -> Vec<String> {
        self.log
            .of_kind(&sentinel::AuditKind::Alert)
            .map(|e| e.message.clone())
            .collect()
    }

    /// Resolve entity names.
    pub fn user_id(&self, name: &str) -> Result<UserId, EngineError> {
        self.inst
            .binding
            .users
            .get(name)
            .copied()
            .ok_or_else(|| EngineError::UnknownName(name.to_string()))
    }

    /// Resolve a role name.
    pub fn role_id(&self, name: &str) -> Result<RoleId, EngineError> {
        self.inst
            .binding
            .roles
            .get(name)
            .copied()
            .ok_or_else(|| EngineError::UnknownName(name.to_string()))
    }

    fn role_name(&self, role: RoleId) -> Result<String, EngineError> {
        self.inst
            .binding
            .role_name(role)
            .map(str::to_string)
            .ok_or_else(|| EngineError::UnknownName(role.to_string()))
    }

    // ---- the event pump ------------------------------------------------------

    /// Raise a primitive event through the rule system and post-process
    /// denials (active-security feed).
    pub fn dispatch(&mut self, event: &str, params: Params) -> Result<ExecReport, EngineError> {
        self.dispatch_ref(EventRef::Name(event), params)
    }

    /// Dispatch an event, routed through the compiled plan when one is
    /// armed (and effect recording — which only the interpreter supports —
    /// is off). Both paths are decision- and audit-identical by
    /// construction; the equivalence proptests and the simulator's
    /// `CompiledDivergence` invariant enforce it.
    fn dispatch_ref(
        &mut self,
        ev: EventRef<'_>,
        params: Params,
    ) -> Result<ExecReport, EngineError> {
        self.ensure_compiled();
        let report = {
            let mut view = BridgeView {
                sys: &mut self.inst.system,
                temporal: &self.inst.temporal,
                constraints: &self.inst.constraints,
                privacy: &self.privacy,
                context: &self.context,
                denials: &self.denials,
                external: &self.external_active,
            };
            let mut rt = Runtime {
                detector: &mut self.inst.detector,
                pool: &mut self.inst.pool,
                state: &mut view,
                log: &mut self.log,
            };
            let plan = match &self.compiled {
                Some(c) if !self.exec.record_effects => Some(&c.plan),
                _ => None,
            };
            match (ev, plan) {
                (EventRef::Id(id), Some(plan)) => {
                    self.exec.dispatch_compiled(&mut rt, plan, id, params)?
                }
                (EventRef::Id(id), None) => self.exec.dispatch(&mut rt, id, params)?,
                (EventRef::Name(event), Some(plan)) => match rt.detector.lookup(event) {
                    Some(id) => self.exec.dispatch_compiled(&mut rt, plan, id, params)?,
                    // Unknown name: the interpreter path produces the
                    // canonical detector error.
                    None => self.exec.dispatch_named(&mut rt, event, params)?,
                },
                (EventRef::Name(event), None) => {
                    self.exec.dispatch_named(&mut rt, event, params)?
                }
            }
        };
        if report.mutations > 0 {
            self.bump_version();
        }
        self.deepest_cascade = self.deepest_cascade.max(report.max_depth);
        self.observed_touches.extend(report.touches.iter().cloned());
        self.after_dispatch(&report)?;
        Ok(report)
    }

    /// Advance the logical clock, firing temporal rules on the way.
    pub fn advance_to(&mut self, ts: Ts) -> Result<ExecReport, EngineError> {
        self.ensure_compiled();
        let before = self.now();
        let report = {
            let mut view = BridgeView {
                sys: &mut self.inst.system,
                temporal: &self.inst.temporal,
                constraints: &self.inst.constraints,
                privacy: &self.privacy,
                context: &self.context,
                denials: &self.denials,
                external: &self.external_active,
            };
            let mut rt = Runtime {
                detector: &mut self.inst.detector,
                pool: &mut self.inst.pool,
                state: &mut view,
                log: &mut self.log,
            };
            match &self.compiled {
                Some(c) if !self.exec.record_effects => {
                    self.exec.advance_to_compiled(&mut rt, &c.plan, ts)?
                }
                _ => self.exec.advance_to(&mut rt, ts)?,
            }
        };
        // Clock movement alone invalidates snapshots: their `from` anchor
        // is stale even when no timer fired.
        if self.now() != before || report.mutations > 0 {
            self.bump_version();
        }
        self.deepest_cascade = self.deepest_cascade.max(report.max_depth);
        self.observed_touches.extend(report.touches.iter().cloned());
        self.after_dispatch(&report)?;
        Ok(report)
    }

    /// Advance the clock by a duration.
    pub fn advance(&mut self, d: Dur) -> Result<ExecReport, EngineError> {
        self.advance_to(self.now() + d)
    }

    /// Record denials and feed the `accessDenied` event (once per dispatch;
    /// re-entrancy guarded so security rules cannot recurse).
    fn after_dispatch(&mut self, report: &ExecReport) -> Result<(), EngineError> {
        if report.denials.is_empty() || self.in_denial_cascade {
            return Ok(());
        }
        let now = self.now();
        for _ in &report.denials {
            self.denials.push_back(now);
        }
        while self.denials.len() > self.denial_history {
            self.denials.pop_front();
        }
        self.in_denial_cascade = true;
        let ev = match self.compiled.as_ref().and_then(|c| c.access_denied) {
            Some(id) => EventRef::Id(id),
            None => EventRef::Name(events::ACCESS_DENIED),
        };
        let result = self.dispatch_ref(ev, Params::new().with("time", now));
        self.in_denial_cascade = false;
        result.map(|_| ())
    }

    // ---- compiled-plan lifecycle ----------------------------------------------

    /// Lazily (re)build the compiled plan: runs at most once per pool
    /// (guarded by `compile_checked`), only when the executor holds a
    /// termination proof — which is exactly when the analyzer can license
    /// compilation. Restored (deserialized) engines recompile here on
    /// their first dispatch.
    fn ensure_compiled(&mut self) {
        if self.compiled.is_some()
            || self.compile_checked
            || self.compile_disabled
            || !self.exec.assume_acyclic
        {
            return;
        }
        self.compile_checked = true;
        let report = policy::analyze(&self.inst);
        self.compiled = policy::compile_pool(&self.inst, &report).ok();
    }

    /// Turn the compiled fast path on or off at runtime. Turning it off
    /// drops the plan and pins the interpreter (the A/B lever the
    /// equivalence tests and benches use); turning it back on recompiles
    /// lazily under the usual license.
    pub fn set_compiled(&mut self, on: bool) {
        if on {
            self.compile_disabled = false;
            self.compile_checked = false;
            self.ensure_compiled();
        } else {
            self.compile_disabled = true;
            self.compiled = None;
        }
    }

    /// Is a compiled plan currently armed?
    pub fn compiled_active(&self) -> bool {
        self.compiled.is_some()
    }

    /// Deterministic listing of the compiled plan (dispatch tables,
    /// condition bytecode, pre-bound actions), compiling first if needed.
    /// `None` when the pool is not licensed or compilation is disabled.
    pub fn plan_text(&mut self) -> Option<String> {
        self.ensure_compiled();
        self.compiled
            .as_ref()
            .map(|c| c.plan.dump(&self.inst.detector))
    }

    /// Dispatch a per-role operation event: by pre-resolved id on a table
    /// hit, else by constructed name (also the path that reports unknown
    /// roles).
    fn dispatch_role_event(
        &mut self,
        table: fn(&CompiledPolicy) -> &[Option<EventId>],
        named: fn(&str) -> String,
        role: RoleId,
        params: Params,
    ) -> Result<ExecReport, EngineError> {
        self.ensure_compiled();
        let hit = self
            .compiled
            .as_ref()
            .and_then(|c| CompiledPolicy::role_event(table(c), role));
        match hit {
            Some(id) => self.dispatch_ref(EventRef::Id(id), params),
            None => {
                let name = self.role_name(role)?;
                self.dispatch(&named(&name), params)
            }
        }
    }

    /// Dispatch a fixed administrative event by pre-resolved id when the
    /// plan is armed.
    fn dispatch_admin_event(
        &mut self,
        resolved: fn(&CompiledPolicy) -> Option<EventId>,
        name: &str,
        params: Params,
    ) -> Result<ExecReport, EngineError> {
        self.ensure_compiled();
        match self.compiled.as_ref().and_then(resolved) {
            Some(id) => self.dispatch_ref(EventRef::Id(id), params),
            None => self.dispatch(name, params),
        }
    }

    fn expect_granted(report: ExecReport) -> Result<(), EngineError> {
        if report.denied() {
            return Err(EngineError::Denied(report.denials));
        }
        if !report.errors.is_empty() {
            return Err(EngineError::Unhandled(report.errors.join("; ")));
        }
        if report.fired == 0 {
            return Err(EngineError::Unhandled(
                "no rule handled the request (activity rules disabled?)".into(),
            ));
        }
        Ok(())
    }

    // ---- the RBAC functional surface, rule-enforced ---------------------------

    /// `CreateSession`: opened directly on the monitor; the initial role
    /// set is activated through the rules, and a rule denial rolls the
    /// session back (matching `rbac::System::create_session`).
    pub fn create_session(
        &mut self,
        user: UserId,
        initial: &[RoleId],
    ) -> Result<SessionId, EngineError> {
        let session = self
            .inst
            .system
            .create_session(user, &[])
            .map_err(|e| EngineError::Denied(vec![e.to_string()]))?;
        self.bump_version();
        for &r in initial {
            if let Err(e) = self.add_active_role(user, session, r) {
                let _ = self.inst.system.delete_session(user, session);
                return Err(e);
            }
        }
        Ok(session)
    }

    /// `DeleteSession`.
    pub fn delete_session(&mut self, user: UserId, session: SessionId) -> Result<(), EngineError> {
        self.inst
            .system
            .delete_session(user, session)
            .map_err(|e| EngineError::Denied(vec![e.to_string()]))?;
        self.bump_version();
        Ok(())
    }

    /// `AddActiveRole` — raises `addActiveRole_<role>`; the generated
    /// AAR/CC rules decide.
    pub fn add_active_role(
        &mut self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        let report = self.dispatch_role_event(
            |c| &c.add_active,
            events::add_active,
            role,
            Params::new()
                .with("user", i64::from(user.0))
                .with("session", i64::from(session.0))
                .with("role", i64::from(role.0)),
        )?;
        Self::expect_granted(report)?;
        debug_assert!(
            self.inst
                .system
                .session_roles(session)
                .is_ok_and(|rs| rs.contains(&role)),
            "granted activation must be visible in the monitor"
        );
        Ok(())
    }

    /// `DropActiveRole` — raises `dropActiveRole_<role>`.
    pub fn drop_active_role(
        &mut self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<(), EngineError> {
        let report = self.dispatch_role_event(
            |c| &c.drop_active,
            events::drop_active,
            role,
            Params::new()
                .with("user", i64::from(user.0))
                .with("session", i64::from(session.0))
                .with("role", i64::from(role.0)),
        )?;
        Self::expect_granted(report)
    }

    /// `CheckAccess` — raises `checkAccess`; the globalized CA rule
    /// decides. A denial is an `Ok(false)` (and feeds active security).
    pub fn check_access(
        &mut self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
    ) -> Result<bool, EngineError> {
        self.check_access_inner(session, op, obj, -1)
    }

    /// Privacy-aware `CheckAccess` with an explicit access purpose.
    pub fn check_access_for_purpose(
        &mut self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
        purpose: &str,
    ) -> Result<bool, EngineError> {
        let pid = self
            .privacy
            .purpose_by_name(purpose)
            .ok_or_else(|| EngineError::UnknownName(purpose.to_string()))?;
        self.check_access_inner(session, op, obj, i64::from(pid.0))
    }

    fn check_access_inner(
        &mut self,
        session: SessionId,
        op: OpId,
        obj: ObjId,
        purpose: i64,
    ) -> Result<bool, EngineError> {
        let report = self.dispatch_admin_event(
            |c| c.check_access,
            events::CHECK_ACCESS,
            Params::new()
                .with("session", i64::from(session.0))
                .with("op", i64::from(op.0))
                .with("obj", i64::from(obj.0))
                .with("purpose", purpose),
        )?;
        if !report.errors.is_empty() {
            return Err(EngineError::Unhandled(report.errors.join("; ")));
        }
        Ok(report.allows > 0 && !report.denied())
    }

    /// `AssignUser` via the administrative rule.
    pub fn assign_user(&mut self, user: UserId, role: RoleId) -> Result<(), EngineError> {
        let report = self.dispatch_admin_event(
            |c| c.assign_user,
            events::ASSIGN_USER,
            Params::new()
                .with("user", i64::from(user.0))
                .with("role", i64::from(role.0)),
        )?;
        Self::expect_granted(report)
    }

    /// `DeassignUser` via the administrative rule.
    pub fn deassign_user(&mut self, user: UserId, role: RoleId) -> Result<(), EngineError> {
        let report = self.dispatch_admin_event(
            |c| c.deassign_user,
            events::DEASSIGN_USER,
            Params::new()
                .with("user", i64::from(user.0))
                .with("role", i64::from(role.0)),
        )?;
        Self::expect_granted(report)
    }

    /// Request enabling a role (post-condition CFDs cascade).
    pub fn enable_role(&mut self, role: RoleId) -> Result<(), EngineError> {
        let report = self.dispatch_role_event(
            |c| &c.enable_role,
            events::enable_role,
            role,
            Params::new().with("role", i64::from(role.0)),
        )?;
        Self::expect_granted(report)
    }

    /// Request disabling a role (disabling-time SoD guarded).
    pub fn disable_role(&mut self, role: RoleId) -> Result<(), EngineError> {
        let report = self.dispatch_role_event(
            |c| &c.disable_role,
            events::disable_role,
            role,
            Params::new().with("role", i64::from(role.0)),
        )?;
        Self::expect_granted(report)
    }

    /// An external sensor reports a context change (§3's external events).
    /// Updates the environment and raises `contextChanged`; the generated
    /// `CTX_<role>` rules force-deactivate roles whose constraints no
    /// longer hold.
    pub fn set_context(&mut self, key: &str, value: &str) -> Result<ExecReport, EngineError> {
        self.context.set(key, value);
        self.bump_version();
        self.dispatch_admin_event(
            |c| c.context_changed,
            events::CONTEXT_CHANGED,
            Params::new().with("key", key).with("value", value),
        )
    }

    // ---- policy maintenance ----------------------------------------------------

    /// Apply a changed policy: incremental rule regeneration when possible,
    /// full rebuild otherwise (§5's shift-change scenario).
    ///
    /// The regenerated pool is analyzed before being committed; a pool with
    /// `Error`-severity diagnostics is refused with
    /// [`InstantiateError::Rejected`] and the running instantiation is left
    /// untouched. The executor's acyclic fast-path hint follows the new
    /// pool's termination verdict.
    pub fn apply_policy(&mut self, new: &PolicyGraph) -> Result<RegenReport, InstantiateError> {
        // A rejected regeneration returns here before the plan is touched:
        // the running pool is unchanged, so the existing compiled plan
        // (baked closures included) remains valid — invalidation and
        // rebuild are atomic with the pool swap below.
        let (report, analysis) =
            policy::regenerate_verified(&mut self.inst, new, VerifyGate::DenyOnError)?;
        self.compiled = if self.compile_disabled {
            None
        } else {
            policy::compile_pool(&self.inst, &analysis).ok()
        };
        self.compile_checked = true;
        self.exec.assume_acyclic = analysis.proved_terminating();
        // Independence certificates follow the regenerated pool.
        self.exec.assume_independent = true;
        self.exec.independent_events = analysis.effects.independent_event_ids(&self.inst.pool);
        self.privacy = PrivacyState::from_policy(new, &self.inst.binding);
        // Constraints follow the new policy; runtime environment values
        // (where the user *is*) are preserved.
        self.context = ContextState::from_policy(new, &self.inst.binding)
            .with_values(self.context.values().clone());
        self.bump_version();
        Ok(report)
    }

    /// Dump the rule pool in OWTE syntax, events shown by name (sorted by
    /// rule name; stable golden output).
    ///
    /// Errors (instead of panicking) if a listed rule cannot be resolved
    /// by name — which means the pool was mutated between listing and
    /// lookup, e.g. by a concurrent policy regeneration.
    pub fn dump_rules(&self) -> Result<String, EngineError> {
        let mut names: Vec<String> = self.inst.pool.iter().map(|(_, r)| r.name.clone()).collect();
        names.sort_unstable();
        let mut out = String::new();
        for n in names {
            let text = self
                .rule_text(&n)
                .ok_or_else(|| EngineError::UnknownName(format!("rule {n}")))?;
            out.push_str(&text);
            out.push_str("\n\n");
        }
        Ok(out)
    }

    /// Render the event graph in Graphviz DOT form.
    pub fn event_graph_dot(&self) -> String {
        self.inst.detector.to_dot()
    }

    /// Render the rule-dependency graph in Graphviz DOT form (solid edges
    /// synchronous, dashed edges delayed through timers).
    pub fn rule_graph_dot(&self) -> String {
        policy::rule_dependency_dot(&self.inst.detector, &self.inst.pool)
    }

    /// One rule in OWTE syntax, with the triggering event shown by name
    /// (or its operator label for unnamed composites).
    pub fn rule_text(&self, name: &str) -> Option<String> {
        let rule = self.inst.pool.get_by_name(name)?;
        Some(rule.to_owte_string_named(|id| {
            self.inst
                .detector
                .name_of(id)
                .map(str::to_string)
                .or_else(|| Some(self.inst.detector.label(id).to_string()))
        }))
    }

    /// Re-enable all rules of a class (administrator recovery after an
    /// active-security lockdown).
    pub fn enable_rule_class(&mut self, class: sentinel::RuleClass) -> usize {
        self.bump_version();
        self.inst.pool.set_class_enabled(class, true)
    }

    /// Disable all rules of a class (manual lockdown; the active-security
    /// rules do this automatically on threshold breaches).
    pub fn disable_rule_class(&mut self, class: sentinel::RuleClass) -> usize {
        self.bump_version();
        self.inst.pool.set_class_enabled(class, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy::PolicyGraph;

    fn xyz_engine() -> Engine {
        let mut g = PolicyGraph::enterprise_xyz();
        g.user("alice");
        g.user("bob");
        g.assign("alice", "PM");
        g.assign("bob", "AC");
        Engine::from_policy(&g, Ts::ZERO).unwrap()
    }

    #[test]
    fn activation_and_access_through_rules() {
        let mut e = xyz_engine();
        let alice = e.user_id("alice").unwrap();
        let pm = e.role_id("PM").unwrap();
        let pc = e.role_id("PC").unwrap();
        let s = e.create_session(alice, &[pm]).unwrap();
        // PM inherits PC's place_order permission.
        let create = e.system().op_by_name("create").unwrap();
        let po = e.system().obj_by_name("purchase_order").unwrap();
        assert!(e.check_access(s, create, po).unwrap());
        // Alice can also activate the junior role PC (AAR₂ authorization).
        e.add_active_role(alice, s, pc).unwrap();
        // But activating it twice is denied by the rules.
        let err = e.add_active_role(alice, s, pc).unwrap_err();
        assert!(matches!(err, EngineError::Denied(_)));
    }

    #[test]
    fn denial_when_not_authorized() {
        let mut e = xyz_engine();
        let bob = e.user_id("bob").unwrap();
        let pm = e.role_id("PM").unwrap();
        let s = e.create_session(bob, &[]).unwrap();
        let err = e.add_active_role(bob, s, pm).unwrap_err();
        let EngineError::Denied(msgs) = err else {
            panic!("expected denial");
        };
        assert!(msgs[0].contains("Access Denied Cannot Activate PM"));
        assert_eq!(e.log().denial_count(), 1);
    }

    #[test]
    fn check_access_denied_is_false_and_logged() {
        let mut e = xyz_engine();
        let bob = e.user_id("bob").unwrap();
        let s = e.create_session(bob, &[]).unwrap();
        let create = e.system().op_by_name("create").unwrap();
        let po = e.system().obj_by_name("purchase_order").unwrap();
        assert!(!e.check_access(s, create, po).unwrap());
        assert_eq!(e.log().denial_count(), 1);
    }

    #[test]
    fn assign_and_deassign_via_admin_rules() {
        let mut e = xyz_engine();
        let bob = e.user_id("bob").unwrap();
        let clerk = e.role_id("Clerk").unwrap();
        e.assign_user(bob, clerk).unwrap();
        assert!(e.system().assigned_roles(bob).unwrap().contains(&clerk));
        e.deassign_user(bob, clerk).unwrap();
        assert!(!e.system().assigned_roles(bob).unwrap().contains(&clerk));
        // SSD enforcement comes from the monitor via the rule action: bob
        // has AC, so PC must be rejected.
        let pc = e.role_id("PC").unwrap();
        let err = e.assign_user(bob, pc).unwrap_err();
        assert!(matches!(err, EngineError::Denied(_)));
    }

    #[test]
    fn session_rollback_on_denied_initial_role() {
        let mut e = xyz_engine();
        let bob = e.user_id("bob").unwrap();
        let pm = e.role_id("PM").unwrap();
        let before = e.system().session_count();
        assert!(e.create_session(bob, &[pm]).is_err());
        assert_eq!(e.system().session_count(), before);
    }

    #[test]
    fn analyzer_gates_construction_and_sets_fast_path() {
        let e = xyz_engine();
        assert!(e.proved_acyclic(), "XYZ pool is proved terminating");
        let report = e.analyze();
        assert!(report.is_clean(), "{report}");
        assert!(e.rule_graph_dot().contains("AAR2_PC"));

        // Mutual post-conditions generate a synchronous ENR loop: the
        // default gate refuses the policy outright.
        let mut g = PolicyGraph::new("loopy");
        g.role("a");
        g.role("b");
        g.post_conditions.push(policy::PostConditionSpec {
            role: "a".into(),
            requires: "b".into(),
        });
        g.post_conditions.push(policy::PostConditionSpec {
            role: "b".into(),
            requires: "a".into(),
        });
        let err = Engine::from_policy(&g, Ts::ZERO).unwrap_err();
        assert!(matches!(err, InstantiateError::Rejected(_)), "{err}");
        // Explicitly ungated, the engine runs with the depth guard on.
        let e2 = Engine::from_policy_gated(&g, Ts::ZERO, policy::VerifyGate::Off).unwrap();
        assert!(!e2.proved_acyclic());
    }

    #[test]
    fn independence_certificates_armed_and_behaviour_identical() {
        let e = xyz_engine();
        assert!(
            e.independent_event_count() > 0,
            "no XYZ rule toggles rules: events certify independent"
        );
        // Same workload through the certified fast path and through an
        // ungated engine (slow path, no certificates): identical
        // decisions and audit trail lengths.
        let run = |mut e: Engine| {
            let alice = e.user_id("alice").unwrap();
            let pm = e.role_id("PM").unwrap();
            let pc = e.role_id("PC").unwrap();
            let s = e.create_session(alice, &[pm]).unwrap();
            e.add_active_role(alice, s, pc).unwrap();
            let second = e.add_active_role(alice, s, pc);
            assert!(matches!(second, Err(EngineError::Denied(_))));
            (e.log().len(), e.log().denial_count())
        };
        let fast = run(e);
        let mut g = PolicyGraph::enterprise_xyz();
        g.user("alice");
        g.user("bob");
        g.assign("alice", "PM");
        g.assign("bob", "AC");
        let slow_engine = Engine::from_policy_gated(&g, Ts::ZERO, policy::VerifyGate::Off).unwrap();
        assert_eq!(slow_engine.independent_event_count(), 0);
        assert_eq!(run(slow_engine), fast);
    }

    #[test]
    fn observed_touches_stay_within_declared_footprints() {
        let mut e = xyz_engine();
        assert!(e.observed_touches().is_empty());
        e.record_effects(true);
        assert!(e.effects_recorded());
        let alice = e.user_id("alice").unwrap();
        let pm = e.role_id("PM").unwrap();
        let s = e.create_session(alice, &[pm]).unwrap();
        let create = e.system().op_by_name("create").unwrap();
        let po = e.system().obj_by_name("purchase_order").unwrap();
        e.check_access(s, create, po).unwrap();
        let touches = e.observed_touches().clone();
        assert!(!touches.is_empty());
        let effects = e.analyze().effects;
        for t in &touches {
            let declared = &effects
                .effect_of(&t.rule)
                .unwrap_or_else(|| panic!("rule {} missing from report", t.rule))
                .effective;
            assert!(
                declared.covers(t.access, &t.region),
                "{}: observed {} {} not covered by {declared:?}",
                t.rule,
                t.access,
                t.region
            );
        }
        assert!(e.effect_graph_dot().starts_with("digraph effects {"));
    }

    #[test]
    fn rejected_policy_change_leaves_engine_running() {
        let mut e = xyz_engine();
        let mut bad = e.policy().clone();
        bad.post_conditions.push(policy::PostConditionSpec {
            role: "PM".into(),
            requires: "AM".into(),
        });
        bad.post_conditions.push(policy::PostConditionSpec {
            role: "AM".into(),
            requires: "PM".into(),
        });
        let err = e.apply_policy(&bad).unwrap_err();
        assert!(matches!(err, InstantiateError::Rejected(_)), "{err}");
        assert!(e.proved_acyclic(), "old verdict still in force");
        assert!(e.compiled_active(), "rejected change keeps the old plan");
        // The engine still enforces the old policy.
        let alice = e.user_id("alice").unwrap();
        let pm = e.role_id("PM").unwrap();
        let s = e.create_session(alice, &[pm]).unwrap();
        let create = e.system().op_by_name("create").unwrap();
        let po = e.system().obj_by_name("purchase_order").unwrap();
        assert!(e.check_access(s, create, po).unwrap());
    }

    #[test]
    fn compiled_plan_armed_and_identical_to_interpreter() {
        let e = xyz_engine();
        assert!(e.compiled_active(), "verified pool compiles eagerly");
        // Ungated construction never compiles.
        let mut g = PolicyGraph::enterprise_xyz();
        g.user("alice");
        g.assign("alice", "PM");
        let ungated = Engine::from_policy_gated(&g, Ts::ZERO, policy::VerifyGate::Off).unwrap();
        assert!(!ungated.compiled_active());

        // Same workload on both paths: decisions, counters and the audit
        // trail must match byte for byte.
        let run = |mut e: Engine| {
            let alice = e.user_id("alice").unwrap();
            let pm = e.role_id("PM").unwrap();
            let pc = e.role_id("PC").unwrap();
            let s = e.create_session(alice, &[pm]).unwrap();
            e.add_active_role(alice, s, pc).unwrap();
            assert!(matches!(
                e.add_active_role(alice, s, pc),
                Err(EngineError::Denied(_))
            ));
            let create = e.system().op_by_name("create").unwrap();
            let po = e.system().obj_by_name("purchase_order").unwrap();
            assert!(e.check_access(s, create, po).unwrap());
            e.drop_active_role(alice, s, pc).unwrap();
            e.advance(Dur::from_secs(3600)).unwrap();
            e
        };
        let compiled = run(xyz_engine());
        let mut interp = xyz_engine();
        interp.set_compiled(false);
        assert!(!interp.compiled_active());
        let interp = run(interp);
        assert_eq!(
            compiled.log().entries(),
            interp.log().entries(),
            "audit trails diverge"
        );
        assert_eq!(compiled.now(), interp.now());
    }

    #[test]
    fn set_compiled_round_trips() {
        let mut e = xyz_engine();
        assert!(e.compiled_active());
        e.set_compiled(false);
        assert!(!e.compiled_active());
        e.set_compiled(true);
        assert!(e.compiled_active(), "license still holds, plan rebuilt");
    }

    #[test]
    fn record_effects_routes_to_interpreter() {
        // Effect recording only exists on the interpreter; with the plan
        // armed the engine must still accumulate touches.
        let mut e = xyz_engine();
        assert!(e.compiled_active());
        e.record_effects(true);
        let alice = e.user_id("alice").unwrap();
        let pm = e.role_id("PM").unwrap();
        let s = e.create_session(alice, &[pm]).unwrap();
        let _ = s;
        assert!(!e.observed_touches().is_empty());
    }

    #[test]
    fn plan_text_lists_dispatch_and_bytecode() {
        let mut e = xyz_engine();
        let plan = e.plan_text().unwrap();
        assert!(plan.starts_with("compiled plan:"), "{plan}");
        assert!(plan.contains("on checkAccess"), "{plan}");
        assert!(plan.contains("rule CA"), "{plan}");
        // Disabled -> no plan text; re-enabled -> identical text.
        e.set_compiled(false);
        assert_eq!(e.plan_text(), None);
        e.set_compiled(true);
        assert_eq!(e.plan_text().unwrap(), plan);
    }

    #[test]
    fn successful_policy_change_rebuilds_plan() {
        let mut e = xyz_engine();
        let before = e.plan_text().unwrap();
        assert!(!before.contains("Auditor"));
        let mut g2 = e.policy().clone();
        g2.role("Auditor");
        e.apply_policy(&g2).unwrap();
        assert!(e.compiled_active(), "regenerated pool recompiles");
        let after = e.plan_text().unwrap();
        assert!(
            after.contains("Auditor"),
            "plan follows the regenerated pool: {after}"
        );
    }

    #[test]
    fn unknown_names_rejected() {
        let e = xyz_engine();
        assert!(matches!(
            e.user_id("nobody"),
            Err(EngineError::UnknownName(_))
        ));
        assert!(matches!(
            e.role_id("Ghost"),
            Err(EngineError::UnknownName(_))
        ));
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use policy::PolicyGraph;
    use snoop::Ts;

    fn tiny() -> Engine {
        let mut g = PolicyGraph::new("tiny");
        g.role("r");
        g.user("u");
        g.assign("u", "r");
        Engine::from_policy(&g, Ts::ZERO).unwrap()
    }

    #[test]
    fn clock_regression_surfaces_as_detector_error() {
        let mut e = tiny();
        e.advance(snoop::Dur::from_secs(100)).unwrap();
        let err = e.advance_to(Ts::from_secs(10)).unwrap_err();
        assert!(matches!(err, EngineError::Detector(_)));
        assert_eq!(e.now(), Ts::from_secs(100), "clock unchanged");
    }

    #[test]
    fn dispatch_of_unknown_event_errors() {
        let mut e = tiny();
        assert!(matches!(
            e.dispatch("no_such_event", Params::new()),
            Err(EngineError::Detector(_))
        ));
    }

    #[test]
    fn error_display_forms() {
        assert!(EngineError::Denied(vec!["a".into(), "b".into()])
            .to_string()
            .contains("a; b"));
        assert!(EngineError::UnknownName("x".into())
            .to_string()
            .contains("x"));
        assert!(EngineError::Unhandled("m".into()).to_string().contains("m"));
    }

    #[test]
    fn bad_purpose_and_bad_ids() {
        let mut e = tiny();
        let u = e.user_id("u").unwrap();
        let r = e.role_id("r").unwrap();
        let s = e.create_session(u, &[r]).unwrap();
        // No purposes registered at all.
        assert!(matches!(
            e.check_access_for_purpose(s, rbac::OpId(0), rbac::ObjId(0), "ghost"),
            Err(EngineError::UnknownName(_))
        ));
        // Foreign session id: rules deny, nothing panics.
        let bogus = rbac::SessionId(999);
        assert!(e.add_active_role(u, bogus, r).is_err());
        assert!(!e
            .check_access(bogus, rbac::OpId(0), rbac::ObjId(0))
            .unwrap());
    }

    #[test]
    fn set_context_works_without_constraints() {
        let mut e = tiny();
        let rep = e.set_context("weather", "sunny").unwrap();
        assert!(!rep.denied());
        assert_eq!(e.context().get("weather"), Some("sunny"));
    }
}
