//! Crash-tolerant engine: write-ahead journaling over a [`Storage`]
//! backend, with snapshot recovery.
//!
//! [`DurableEngine`] is the durable counterpart of
//! [`crate::journal::RecordingEngine`]: every public operation is encoded
//! as a [`JournalOp`] and appended to the WAL *before* it touches the
//! in-memory engine, so the persisted history is always at least as long
//! as the applied one. An operation whose append fails is rejected without
//! being applied — the caller's acknowledgement and the log never
//! disagree, which is the invariant the crash-consistency property tests
//! pin down:
//!
//! > reopening after a crash at any point yields exactly the state of
//! > replaying the acknowledged prefix.
//!
//! Recovery ([`DurableEngine::open`]) loads the newest intact snapshot —
//! a full serialized [`Engine`], so restoring is `O(tail)`, not
//! `O(history)` — replays the tail records, and fails closed on anything
//! a crash cannot explain (checksum mismatches, index gaps, snapshots
//! from a future format version, a journal whose clock runs backwards).

use crate::engine::{Engine, EngineError};
use crate::journal::{apply_op, JournalOp};
use crate::storage::Storage;
use crate::wal::{Recovered, Wal, WalConfig, WalError};
use policy::PolicyGraph;
use rbac::{ObjId, OpId, RoleId, SessionId, UserId};
use snoop::{Params, Ts};
use std::fmt;

/// An error from the durable layer.
#[derive(Debug)]
pub enum DurableError {
    /// The WAL could not record or recover.
    Wal(WalError),
    /// The engine rejected the operation (after it was journaled — the
    /// rejection is part of history, exactly as with `RecordingEngine`).
    Engine(EngineError),
    /// The policy could not be instantiated on `create`.
    Instantiate(policy::InstantiateError),
    /// A snapshot or record failed to encode/decode.
    Codec(String),
    /// Recovery found no usable snapshot to restore from.
    NoSnapshot,
    /// The journal's virtual clock runs backwards; nothing was applied.
    ClockRegression {
        /// Index of the offending record within the recovered tail.
        record: usize,
        /// Clock value before the record.
        from: Ts,
        /// The (earlier) instant the record tries to advance to.
        to: Ts,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "durable: {e}"),
            DurableError::Engine(e) => write!(f, "durable: engine: {e}"),
            DurableError::Instantiate(e) => write!(f, "durable: instantiate: {e}"),
            DurableError::Codec(m) => write!(f, "durable: codec: {m}"),
            DurableError::NoSnapshot => {
                write!(f, "durable: recovery found no usable snapshot")
            }
            DurableError::ClockRegression { record, from, to } => write!(
                f,
                "durable: journal clock regresses at tail record {record}: \
                 {from} -> {to}; refusing to replay"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<EngineError> for DurableError {
    fn from(e: EngineError) -> Self {
        DurableError::Engine(e)
    }
}

/// Result alias for durable operations.
pub type Result<T> = std::result::Result<T, DurableError>;

/// Tunables for [`DurableEngine`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Segment rotation threshold (bytes).
    pub segment_max_bytes: usize,
    /// Sync the log on every append (durable acknowledgements).
    pub sync_on_append: bool,
    /// Write a snapshot (and compact the log) every this many operations.
    /// `None` disables automatic snapshots.
    pub snapshot_every: Option<u64>,
}

impl Default for DurableConfig {
    fn default() -> DurableConfig {
        DurableConfig {
            segment_max_bytes: 256 * 1024,
            sync_on_append: true,
            snapshot_every: Some(4096),
        }
    }
}

impl DurableConfig {
    fn wal(&self) -> WalConfig {
        WalConfig {
            segment_max_bytes: self.segment_max_bytes,
            sync_on_append: self.sync_on_append,
        }
    }
}

/// What the last recovery had to repair. All-zero after a fresh
/// [`DurableEngine::create`] or a clean reopen; callers that care about
/// data loss at the durability boundary (records written but never
/// acknowledged) should inspect this after [`DurableEngine::open`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// A torn final record (an interrupted, never-acknowledged append)
    /// was dropped during recovery.
    pub truncated_tail: bool,
    /// Records dropped because a later segment superseded them — written
    /// by a failed append/sync but never acknowledged to the caller.
    pub dropped_unacked: usize,
}

/// A crash-tolerant, journaled engine over a storage backend.
///
/// `Clone` (available when the backend is cloneable, e.g.
/// [`crate::MemStorage`]) forks the engine *and* its storage into an
/// independent world — the model checker branches states this way.
#[derive(Clone)]
pub struct DurableEngine<S: Storage> {
    engine: Engine,
    wal: Wal<S>,
    config: DurableConfig,
    /// Operation count covered by the last successful snapshot.
    snapshot_ops: u64,
    /// Automatic snapshots that failed (storage trouble); the operation
    /// itself stays acknowledged and the snapshot is retried later.
    snapshot_failures: u64,
    /// What [`DurableEngine::open`] had to repair.
    recovery: RecoveryStats,
}

impl<S: Storage> DurableEngine<S> {
    /// Instantiate `graph` and initialize a fresh durable log on
    /// `storage`, writing the genesis snapshot so recovery always has a
    /// restore point.
    pub fn create(
        storage: S,
        graph: &PolicyGraph,
        start: Ts,
        config: DurableConfig,
    ) -> Result<DurableEngine<S>> {
        let engine = Engine::from_policy(graph, start).map_err(DurableError::Instantiate)?;
        let mut wal = Wal::create(storage, config.wal())?;
        let blob = serde_json::to_vec(&engine).map_err(|e| DurableError::Codec(e.to_string()))?;
        wal.snapshot(&blob)?;
        Ok(DurableEngine {
            engine,
            wal,
            config,
            snapshot_ops: 0,
            snapshot_failures: 0,
            recovery: RecoveryStats::default(),
        })
    }

    /// Recover from `storage`: load the newest intact snapshot, validate
    /// the tail (fail closed on clock regression *before* applying
    /// anything), then replay it.
    pub fn open(storage: S, config: DurableConfig) -> Result<DurableEngine<S>> {
        let (wal, recovered) = Wal::open(storage, config.wal())?;
        let Recovered {
            snapshot,
            snapshot_ops,
            tail,
            truncated_tail,
            dropped_unacked,
        } = recovered;
        let blob = snapshot.ok_or(DurableError::NoSnapshot)?;
        let mut engine: Engine =
            serde_json::from_slice(&blob).map_err(|e| DurableError::Codec(e.to_string()))?;

        // Decode the whole tail up front …
        let ops: Vec<JournalOp> = tail
            .iter()
            .map(|bytes| {
                serde_json::from_slice(bytes)
                    .map_err(|e| DurableError::Codec(format!("tail record: {e}")))
            })
            .collect::<Result<_>>()?;

        // … and validate its clock before applying a single record: a
        // regressing journal must reject recovery with the engine
        // untouched, not half-applied.
        let mut clock = engine.now();
        for (record, op) in ops.iter().enumerate() {
            if let JournalOp::AdvanceTo { to } = op {
                if *to < clock {
                    return Err(DurableError::ClockRegression {
                        record,
                        from: clock,
                        to: *to,
                    });
                }
                clock = *to;
            }
        }

        for op in &ops {
            // Only `AdvanceTo` can error out of `apply_op`, and the
            // pre-scan above proved it cannot here.
            apply_op(&mut engine, op).map_err(DurableError::Engine)?;
        }

        Ok(DurableEngine {
            engine,
            wal,
            config,
            snapshot_ops,
            snapshot_failures: 0,
            recovery: RecoveryStats {
                truncated_tail,
                dropped_unacked,
            },
        })
    }

    /// Journal `op` durably; only then may it be applied.
    fn record(&mut self, op: &JournalOp) -> Result<()> {
        let bytes = serde_json::to_vec(op).map_err(|e| DurableError::Codec(e.to_string()))?;
        self.wal.append(&bytes)?;
        Ok(())
    }

    /// After an acknowledged operation: snapshot if the configured
    /// interval has passed. Snapshot failures never un-acknowledge the
    /// operation — the log still holds it — so they are counted and
    /// retried on the next operation instead of being propagated.
    fn maybe_snapshot(&mut self) {
        let Some(every) = self.config.snapshot_every else {
            return;
        };
        if self.wal.next_op() - self.snapshot_ops < every {
            return;
        }
        if self.snapshot_now().is_err() {
            self.snapshot_failures += 1;
        }
    }

    /// Write a snapshot of the current state and compact the log.
    pub fn snapshot_now(&mut self) -> Result<()> {
        let blob =
            serde_json::to_vec(&self.engine).map_err(|e| DurableError::Codec(e.to_string()))?;
        self.wal.snapshot(&blob)?;
        self.snapshot_ops = self.wal.next_op();
        Ok(())
    }

    /// See [`Engine::create_session`]. Failed operations are journaled
    /// too: denials change state (audit log, security windows).
    pub fn create_session(&mut self, user: UserId, initial: &[RoleId]) -> Result<SessionId> {
        self.record(&JournalOp::CreateSession {
            user,
            initial: initial.to_vec(),
        })?;
        let r = self.engine.create_session(user, initial);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::delete_session`].
    pub fn delete_session(&mut self, user: UserId, session: SessionId) -> Result<()> {
        self.record(&JournalOp::DeleteSession { user, session })?;
        let r = self.engine.delete_session(user, session);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::add_active_role`].
    pub fn add_active_role(
        &mut self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<()> {
        self.record(&JournalOp::AddActiveRole {
            user,
            session,
            role,
        })?;
        let r = self.engine.add_active_role(user, session, role);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::drop_active_role`].
    pub fn drop_active_role(
        &mut self,
        user: UserId,
        session: SessionId,
        role: RoleId,
    ) -> Result<()> {
        self.record(&JournalOp::DropActiveRole {
            user,
            session,
            role,
        })?;
        let r = self.engine.drop_active_role(user, session, role);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::check_access`] — recorded because denials feed the
    /// active-security rules, so checks are state-changing.
    pub fn check_access(&mut self, session: SessionId, op: OpId, obj: ObjId) -> Result<bool> {
        self.record(&JournalOp::CheckAccess {
            session,
            op,
            obj,
            purpose: -1,
        })?;
        let r = self.engine.check_access(session, op, obj);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::assign_user`].
    pub fn assign_user(&mut self, user: UserId, role: RoleId) -> Result<()> {
        self.record(&JournalOp::AssignUser { user, role })?;
        let r = self.engine.assign_user(user, role);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::deassign_user`].
    pub fn deassign_user(&mut self, user: UserId, role: RoleId) -> Result<()> {
        self.record(&JournalOp::DeassignUser { user, role })?;
        let r = self.engine.deassign_user(user, role);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::enable_role`].
    pub fn enable_role(&mut self, role: RoleId) -> Result<()> {
        self.record(&JournalOp::EnableRole { role })?;
        let r = self.engine.enable_role(role);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::disable_role`].
    pub fn disable_role(&mut self, role: RoleId) -> Result<()> {
        self.record(&JournalOp::DisableRole { role })?;
        let r = self.engine.disable_role(role);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// See [`Engine::set_context`].
    pub fn set_context(&mut self, key: &str, value: &str) -> Result<()> {
        self.record(&JournalOp::SetContext {
            key: key.to_string(),
            value: value.to_string(),
        })?;
        let r = self.engine.set_context(key, value);
        self.maybe_snapshot();
        r.map(|_| ()).map_err(DurableError::Engine)
    }

    /// See [`Engine::advance_to`].
    ///
    /// A regressing target is rejected *before* it is journaled: a
    /// recorded clock regression would poison the log (replay refuses
    /// it), so it must never reach storage.
    pub fn advance_to(&mut self, to: Ts) -> Result<()> {
        if to < self.engine.now() {
            return Err(DurableError::Engine(EngineError::Unhandled(format!(
                "clock regression: now {} -> {}",
                self.engine.now(),
                to
            ))));
        }
        self.record(&JournalOp::AdvanceTo { to })?;
        let r = self.engine.advance_to(to);
        self.maybe_snapshot();
        r.map(|_| ()).map_err(DurableError::Engine)
    }

    /// See [`Engine::dispatch`] (escape hatch for custom events).
    pub fn dispatch(&mut self, event: &str, params: Params) -> Result<()> {
        self.record(&JournalOp::RawEvent {
            event: event.to_string(),
            params: params.clone(),
        })?;
        let r = self.engine.dispatch(event, params);
        self.maybe_snapshot();
        r.map(|_| ()).map_err(DurableError::Engine)
    }

    /// Journal-before-apply a record replicated from a leader's log.
    ///
    /// This is the follower's write path: the op is journaled to the local
    /// WAL first, then applied, exactly like a client op — so a promoted
    /// follower recovers replicated history from its *own* durable log.
    /// The acknowledgement contract is the same as for client ops: if this
    /// returns an error before the journal append succeeded, nothing was
    /// applied and the follower must not acknowledge the record.
    ///
    /// A regressing `AdvanceTo` is rejected before it is journaled (it
    /// would poison the local log), mirroring [`DurableEngine::advance_to`].
    pub fn apply_replicated(&mut self, op: &JournalOp) -> Result<()> {
        if let JournalOp::AdvanceTo { to } = op {
            if *to < self.engine.now() {
                return Err(DurableError::Engine(EngineError::Unhandled(format!(
                    "replicated clock regression: now {} -> {}",
                    self.engine.now(),
                    to
                ))));
            }
        }
        self.record(op)?;
        let r = apply_op(&mut self.engine, op);
        self.maybe_snapshot();
        r.map_err(DurableError::Engine)
    }

    /// Decode the journaled operations with global index `>= from` from
    /// the local log (the leader's shipping read — see
    /// [`Wal::records_from`] for the compaction caveat).
    pub fn ops_from(&self, from: u64) -> Result<Vec<(u64, JournalOp)>> {
        self.wal
            .records_from(from)?
            .into_iter()
            .map(|(idx, bytes)| {
                serde_json::from_slice(&bytes)
                    .map(|op| (idx, op))
                    .map_err(|e| DurableError::Codec(format!("record {idx}: {e}")))
            })
            .collect()
    }

    /// Read back the raw journal records with global index `>= from` (the
    /// byte-level shipping read; see [`Wal::records_from`]).
    pub fn records_from(&self, from: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.wal.records_from(from).map_err(DurableError::Wal)
    }

    /// The wrapped engine (read-only; mutations must go through the
    /// journaling methods or the log would be incomplete).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the wrapped engine, for *monitoring* toggles
    /// only ([`Engine::record_effects`], log caps). Anything semantic
    /// changed through this handle bypasses the journal and will not
    /// survive recovery — re-apply such toggles after
    /// [`DurableEngine::open`].
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Resolve a user name through the engine.
    pub fn user_id(&self, name: &str) -> Result<UserId> {
        self.engine.user_id(name).map_err(DurableError::Engine)
    }

    /// Resolve a role name through the engine.
    pub fn role_id(&self, name: &str) -> Result<RoleId> {
        self.engine.role_id(name).map_err(DurableError::Engine)
    }

    /// Total operations ever journaled (the global record index).
    pub fn op_count(&self) -> u64 {
        self.wal.next_op()
    }

    /// Operations covered by the newest snapshot.
    pub fn snapshot_ops(&self) -> u64 {
        self.snapshot_ops
    }

    /// Automatic snapshots that failed and will be retried.
    pub fn snapshot_failures(&self) -> u64 {
        self.snapshot_failures
    }

    /// What recovery had to repair when this engine was opened (all-zero
    /// for a freshly created engine or a clean reopen).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Borrow the storage backend.
    pub fn storage(&self) -> &S {
        self.wal.storage()
    }

    /// Borrow the storage backend mutably. Intended for fault-injection
    /// harnesses (installing scripted faults on a live store); rewriting
    /// journal bytes underneath a live engine is undefined behaviour as
    /// far as recovery guarantees go.
    pub fn storage_mut(&mut self) -> &mut S {
        self.wal.storage_mut()
    }

    /// Take the storage backend back (e.g. to crash and reopen it).
    pub fn into_storage(self) -> S {
        self.wal.into_storage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn policy() -> PolicyGraph {
        let mut g = PolicyGraph::new("durable-test");
        g.role("clerk");
        g.user("ann");
        g.assign("ann", "clerk");
        g.permission("p", "read", "ledger");
        g.grant("p", "clerk");
        g
    }

    fn state_json(e: &Engine) -> serde_json::Value {
        serde_json::to_value(e).expect("engine serializes")
    }

    #[test]
    fn reopen_restores_identical_state() {
        let g = policy();
        let mut d =
            DurableEngine::create(MemStorage::new(), &g, Ts::ZERO, DurableConfig::default())
                .unwrap();
        let ann = d.user_id("ann").unwrap();
        let clerk = d.role_id("clerk").unwrap();
        let s = d.create_session(ann, &[clerk]).unwrap();
        let read = d.engine().system().op_by_name("read").unwrap();
        let ledger = d.engine().system().obj_by_name("ledger").unwrap();
        assert!(d.check_access(s, read, ledger).unwrap());
        d.advance_to(Ts::from_secs(60)).unwrap();
        let live = state_json(d.engine());

        let reopened = DurableEngine::open(d.into_storage(), DurableConfig::default()).unwrap();
        assert_eq!(state_json(reopened.engine()), live);
        assert_eq!(reopened.op_count(), 3);
        // A clean shutdown loses nothing and repairs nothing.
        assert_eq!(reopened.recovery_stats(), RecoveryStats::default());
    }

    #[test]
    fn snapshots_compact_and_preserve_state() {
        let g = policy();
        let config = DurableConfig {
            snapshot_every: Some(4),
            ..DurableConfig::default()
        };
        let mut d = DurableEngine::create(MemStorage::new(), &g, Ts::ZERO, config.clone()).unwrap();
        let ann = d.user_id("ann").unwrap();
        let clerk = d.role_id("clerk").unwrap();
        let s = d.create_session(ann, &[clerk]).unwrap();
        let read = d.engine().system().op_by_name("read").unwrap();
        let ledger = d.engine().system().obj_by_name("ledger").unwrap();
        for _ in 0..10 {
            d.check_access(s, read, ledger).unwrap();
        }
        assert!(d.snapshot_ops() >= 4, "automatic snapshot should have run");
        assert_eq!(d.snapshot_failures(), 0);
        let live = state_json(d.engine());
        let reopened = DurableEngine::open(d.into_storage(), config).unwrap();
        assert_eq!(state_json(reopened.engine()), live);
        // Snapshot compaction is not data loss: recovery must be clean.
        assert_eq!(reopened.recovery_stats(), RecoveryStats::default());
    }

    #[test]
    fn regressing_advance_is_rejected_without_journaling() {
        let g = policy();
        let mut d =
            DurableEngine::create(MemStorage::new(), &g, Ts::ZERO, DurableConfig::default())
                .unwrap();
        d.advance_to(Ts::from_secs(100)).unwrap();
        let before = d.op_count();
        assert!(d.advance_to(Ts::from_secs(50)).is_err());
        assert_eq!(d.op_count(), before, "rejected op must not be journaled");
        // And the log still replays cleanly, with nothing to repair: the
        // rejected op left no torn or unacknowledged record behind.
        let reopened = DurableEngine::open(d.into_storage(), DurableConfig::default()).unwrap();
        assert_eq!(reopened.recovery_stats(), RecoveryStats::default());
    }
}
