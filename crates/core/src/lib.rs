//! # owte-core — the OWTE access-control engine
//!
//! The paper's contribution assembled over the substrates:
//!
//! * [`engine::Engine`] — the rule-driven engine: a high-level policy
//!   ([`policy::PolicyGraph`]) is instantiated into the `rbac` monitor, an
//!   event graph (`snoop`) and a generated OWTE rule pool (`sentinel`);
//!   every RBAC operation is then raised as an event and enforced by the
//!   rules, with denials feeding the active-security rules;
//! * [`baseline::DirectEngine`] — the conventional hard-coded comparator
//!   (same policy, same monitor, no rules), used as benchmark baseline and
//!   as the semantic oracle in equivalence property tests;
//! * [`bridge::BridgeView`] — the [`sentinel::AuthState`] implementation
//!   resolving generated rule conditions against the monitor, temporal
//!   policies, privacy state and denial history;
//! * [`privacy::PrivacyState`] — privacy-aware RBAC (purposes, purpose
//!   hierarchies, object policies);
//! * [`snapshot::AuthSnapshot`] — the lock-free read path: an immutable,
//!   structurally-verified capture of the `checkAccess` decision state,
//!   published per write epoch by [`shared::SharedEngine`] so grants can
//!   be answered without the engine mutex;
//! * [`durable::DurableEngine`] — the crash-tolerant engine: a
//!   write-ahead journal ([`wal::Wal`]) of checksummed frames over a
//!   pluggable [`storage::Storage`] backend, with snapshot recovery and a
//!   deterministic fault injector ([`storage::FaultyStorage`]) for
//!   crash-consistency testing.
//!
//! ```
//! use owte_core::Engine;
//! use policy::PolicyGraph;
//! use snoop::Ts;
//!
//! let mut graph = PolicyGraph::enterprise_xyz();
//! graph.user("alice");
//! graph.assign("alice", "PM");
//!
//! let mut engine = Engine::from_policy(&graph, Ts::ZERO).unwrap();
//! let alice = engine.user_id("alice").unwrap();
//! let pm = engine.role_id("PM").unwrap();
//! let session = engine.create_session(alice, &[pm]).unwrap();
//!
//! let create = engine.system().op_by_name("create").unwrap();
//! let po = engine.system().obj_by_name("purchase_order").unwrap();
//! assert!(engine.check_access(session, create, po).unwrap());
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod bridge;
pub mod cast;
pub mod context;
pub mod durable;
pub mod engine;
pub mod journal;
pub mod privacy;
pub mod shared;
pub mod snapshot;
pub mod storage;
pub mod wal;

pub use baseline::DirectEngine;
pub use bridge::BridgeView;
pub use cast::checked_index;
pub use context::ContextState;
pub use durable::{DurableConfig, DurableEngine, DurableError, RecoveryStats};
pub use engine::{Engine, EngineError};
pub use journal::{
    apply_op, replay, Journal, JournalEnvelope, JournalOp, RecordingEngine, JOURNAL_FORMAT_VERSION,
};
pub use privacy::{ObjectPolicy, PrivacyState, PurposeId};
pub use shared::SharedEngine;
pub use snapshot::AuthSnapshot;
pub use storage::{
    FaultKind, FaultPlan, FaultyStorage, FileStorage, MemStorage, Scripted, ScriptedFault,
    SplitMix64, Storage, StorageError,
};
pub use wal::{Recovered, Wal, WalConfig, WalError, WAL_VERSION};
