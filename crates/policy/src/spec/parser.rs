//! Recursive-descent parser for the policy DSL.
//!
//! Grammar (one statement per `;`, inside `policy "Name" { … }`):
//!
//! ```text
//! policy "XYZ" {
//!   roles PM, PC, AC, AM, Clerk;
//!   users bob, alice;
//!   hierarchy PM -> PC -> Clerk;
//!   ssd "purchase-approval" { PC, AC } cardinality 2;
//!   dsd "exec" { A, B, C } cardinality 2;
//!   permission place_order = create on purchase_order;
//!   grant place_order -> PC;
//!   assign bob -> PM;
//!   cardinality PC max_active_users 5;
//!   cardinality bob max_active_roles 5;
//!   enable DayDoctor daily 08:00-16:00;
//!   max_activation R3 2h;
//!   max_activation R3 for bob 2h;
//!   disabling_sod "nurse-doctor" { Nurse, Doctor } daily 10:00-17:00;
//!   post_condition SysAdmin requires SysAudit;
//!   prerequisite JuniorEmp requires_active Manager;
//!   active_security "storm" threshold 10 within 60s actions alert, disable_activity;
//!   context Nurse requires location = ward;
//!   trigger "couple" on enable SysAdmin when enabled SysAudit then disable Backup after 10m;
//!   purpose marketing;
//!   purpose email under marketing;
//!   object_policy read on patient_record for Nurse requires treatment;
//! }
//! ```
//!
//! Referenced roles/users/permissions/purposes must be declared first —
//! forward references are reported with their source position.

use crate::graph::{
    ContextConstraintSpec, DailyWindow, DisablingSodSpec, ObjectPolicySpec, PolicyGraph,
    PostConditionSpec, PrerequisiteSpec, PurposeSpec, SecurityAction, SecuritySpec, SodSpec,
    StatusKind, TriggerSpec,
};
use crate::spec::lexer::{lex, Span, SpecError, Tok};
use snoop::Dur;

/// Parse a policy source text into a [`PolicyGraph`].
pub fn parse(src: &str) -> Result<PolicyGraph, SpecError> {
    let toks = lex(src)?;
    Parser {
        toks,
        pos: 0,
        graph: PolicyGraph::default(),
    }
    .run()
}

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
    graph: PolicyGraph,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn span(&self) -> Span {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, SpecError> {
        Err(SpecError {
            span: self.span(),
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Tok) -> Result<(), SpecError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{want}`, found `{}`", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, SpecError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), SpecError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found `{other}`")),
        }
    }

    fn string(&mut self) -> Result<String, SpecError> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected string, found `{other}`")),
        }
    }

    fn number(&mut self) -> Result<u64, SpecError> {
        match *self.peek() {
            Tok::Num(n) => {
                self.bump();
                Ok(n)
            }
            ref other => self.err(format!("expected number, found `{other}`")),
        }
    }

    fn duration(&mut self) -> Result<Dur, SpecError> {
        match *self.peek() {
            Tok::Duration(d) => {
                self.bump();
                Ok(d)
            }
            ref other => self.err(format!(
                "expected duration (e.g. 2h, 30m, 60s), found `{other}`"
            )),
        }
    }

    fn time(&mut self) -> Result<(u32, u32), SpecError> {
        match *self.peek() {
            Tok::Time(h, m, _) => {
                self.bump();
                Ok((h, m))
            }
            ref other => self.err(format!("expected time (HH:MM), found `{other}`")),
        }
    }

    /// `daily HH:MM - HH:MM`
    fn daily_window(&mut self) -> Result<DailyWindow, SpecError> {
        self.keyword("daily")?;
        let (start_h, start_m) = self.time()?;
        self.expect(&Tok::Dash)?;
        let (end_h, end_m) = self.time()?;
        Ok(DailyWindow {
            start_h,
            start_m,
            end_h,
            end_m,
        })
    }

    /// Comma-separated identifiers, each validated by `check`.
    fn ident_list(&mut self) -> Result<Vec<(String, Span)>, SpecError> {
        let mut out = Vec::new();
        loop {
            let span = self.span();
            out.push((self.ident()?, span));
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    /// `enable` | `disable` (trigger event/action keyword).
    fn status_kind(&mut self) -> Result<StatusKind, SpecError> {
        let span = self.span();
        match self.ident()?.as_str() {
            "enable" => Ok(StatusKind::Enabled),
            "disable" => Ok(StatusKind::Disabled),
            other => Err(SpecError {
                span,
                message: format!("expected `enable` or `disable`, found `{other}`"),
            }),
        }
    }

    /// `enabled` | `disabled` (trigger condition keyword).
    fn status_pred(&mut self) -> Result<bool, SpecError> {
        let span = self.span();
        match self.ident()?.as_str() {
            "enabled" => Ok(true),
            "disabled" => Ok(false),
            other => Err(SpecError {
                span,
                message: format!("expected `enabled` or `disabled`, found `{other}`"),
            }),
        }
    }

    fn known_role(&self, name: &str, span: Span) -> Result<(), SpecError> {
        if self.graph.role_node(name).is_some() {
            Ok(())
        } else {
            Err(SpecError {
                span,
                message: format!("unknown role `{name}` (declare it with `roles {name};` first)"),
            })
        }
    }

    fn known_user(&self, name: &str, span: Span) -> Result<(), SpecError> {
        if self.graph.user_node(name).is_some() {
            Ok(())
        } else {
            Err(SpecError {
                span,
                message: format!("unknown user `{name}`"),
            })
        }
    }

    fn run(mut self) -> Result<PolicyGraph, SpecError> {
        self.keyword("policy")?;
        self.graph.name = self.string()?;
        self.expect(&Tok::LBrace)?;
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return self.err("unexpected end of input: missing `}`");
            }
            self.statement()?;
        }
        self.expect(&Tok::RBrace)?;
        if *self.peek() != Tok::Eof {
            return self.err("trailing input after policy block");
        }
        Ok(self.graph)
    }

    fn statement(&mut self) -> Result<(), SpecError> {
        let span = self.span();
        let kw = self.ident()?;
        match kw.as_str() {
            "roles" | "role" => {
                for (name, _) in self.ident_list()? {
                    self.graph.role(&name);
                }
            }
            "users" | "user" => {
                for (name, _) in self.ident_list()? {
                    self.graph.user(&name);
                }
            }
            "hierarchy" => {
                let chain = {
                    let mut names = Vec::new();
                    loop {
                        let s = self.span();
                        names.push((self.ident()?, s));
                        if *self.peek() == Tok::Arrow {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    names
                };
                if chain.len() < 2 {
                    return Err(SpecError {
                        span,
                        message: "hierarchy needs at least two roles (A -> B)".into(),
                    });
                }
                for (name, s) in &chain {
                    self.known_role(name, *s)?;
                }
                for pair in chain.windows(2) {
                    self.graph.inherits(&pair[0].0, &pair[1].0);
                }
            }
            "ssd" | "dsd" => {
                let name = self.string()?;
                self.expect(&Tok::LBrace)?;
                let roles = self.ident_list()?;
                self.expect(&Tok::RBrace)?;
                for (r, s) in &roles {
                    self.known_role(r, *s)?;
                }
                let cardinality = if matches!(self.peek(), Tok::Ident(s) if s == "cardinality") {
                    self.bump();
                    self.number()? as usize
                } else {
                    2
                };
                let set = SodSpec {
                    name,
                    roles: roles.into_iter().map(|(r, _)| r).collect(),
                    cardinality,
                };
                if kw == "ssd" {
                    self.graph.ssd.push(set);
                } else {
                    self.graph.dsd.push(set);
                }
            }
            "permission" => {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let op = self.ident()?;
                self.keyword("on")?;
                let obj = self.ident()?;
                self.graph.permission(&name, &op, &obj);
            }
            "grant" => {
                let pspan = self.span();
                let perm = self.ident()?;
                if !self.graph.permissions.iter().any(|p| p.name == perm) {
                    return Err(SpecError {
                        span: pspan,
                        message: format!("unknown permission `{perm}`"),
                    });
                }
                self.expect(&Tok::Arrow)?;
                for (role, s) in self.ident_list()? {
                    self.known_role(&role, s)?;
                    self.graph.grant(&perm, &role);
                }
            }
            "assign" => {
                let uspan = self.span();
                let user = self.ident()?;
                self.known_user(&user, uspan)?;
                self.expect(&Tok::Arrow)?;
                for (role, s) in self.ident_list()? {
                    self.known_role(&role, s)?;
                    self.graph.assign(&user, &role);
                }
            }
            "cardinality" => {
                let nspan = self.span();
                let entity = self.ident()?;
                let kind = self.ident()?;
                let n = self.number()? as usize;
                match kind.as_str() {
                    "max_active_users" => {
                        self.known_role(&entity, nspan)?;
                        self.graph.role(&entity).max_active_users = Some(n);
                    }
                    "max_active_roles" => {
                        self.known_user(&entity, nspan)?;
                        self.graph.user(&entity).max_active_roles = Some(n);
                    }
                    other => {
                        return Err(SpecError {
                            span: nspan,
                            message: format!(
                                "expected `max_active_users` or `max_active_roles`, found `{other}`"
                            ),
                        })
                    }
                }
            }
            "enable" => {
                let rspan = self.span();
                let role = self.ident()?;
                self.known_role(&role, rspan)?;
                let w = self.daily_window()?;
                self.graph.role(&role).enabling = Some(w);
            }
            "max_activation" => {
                let rspan = self.span();
                let role = self.ident()?;
                self.known_role(&role, rspan)?;
                if matches!(self.peek(), Tok::Ident(s) if s == "for") {
                    self.bump();
                    let uspan = self.span();
                    let user = self.ident()?;
                    self.known_user(&user, uspan)?;
                    let d = self.duration()?;
                    self.graph.role(&role).per_user_activation.insert(user, d);
                } else {
                    let d = self.duration()?;
                    self.graph.role(&role).max_activation = Some(d);
                }
            }
            "disabling_sod" | "enabling_sod" => {
                let name = self.string()?;
                self.expect(&Tok::LBrace)?;
                let roles = self.ident_list()?;
                self.expect(&Tok::RBrace)?;
                for (r, s) in &roles {
                    self.known_role(r, *s)?;
                }
                let window = self.daily_window()?;
                let spec = DisablingSodSpec {
                    name,
                    roles: roles.into_iter().map(|(r, _)| r).collect(),
                    window,
                };
                if kw == "disabling_sod" {
                    self.graph.disabling_sod.push(spec);
                } else {
                    self.graph.enabling_sod.push(spec);
                }
            }
            "post_condition" => {
                let s1 = self.span();
                let role = self.ident()?;
                self.known_role(&role, s1)?;
                self.keyword("requires")?;
                let s2 = self.span();
                let requires = self.ident()?;
                self.known_role(&requires, s2)?;
                self.graph
                    .post_conditions
                    .push(PostConditionSpec { role, requires });
            }
            "prerequisite" => {
                let s1 = self.span();
                let role = self.ident()?;
                self.known_role(&role, s1)?;
                self.keyword("requires_active")?;
                let s2 = self.span();
                let requires_active = self.ident()?;
                self.known_role(&requires_active, s2)?;
                self.graph.prerequisites.push(PrerequisiteSpec {
                    role,
                    requires_active,
                });
            }
            "active_security" => {
                let name = self.string()?;
                self.keyword("threshold")?;
                let threshold = self.number()? as usize;
                self.keyword("within")?;
                let window = self.duration()?;
                let mut actions = vec![SecurityAction::Alert];
                if matches!(self.peek(), Tok::Ident(s) if s == "actions") {
                    self.bump();
                    actions.clear();
                    loop {
                        let aspan = self.span();
                        let a = self.ident()?;
                        match a.as_str() {
                            "alert" => actions.push(SecurityAction::Alert),
                            "disable_activity" => {
                                actions.push(SecurityAction::DisableActivityRules)
                            }
                            "disable_role" => {
                                let rspan = self.span();
                                let r = self.ident()?;
                                self.known_role(&r, rspan)?;
                                actions.push(SecurityAction::DisableRole(r));
                            }
                            other => {
                                return Err(SpecError {
                                    span: aspan,
                                    message: format!("unknown security action `{other}`"),
                                })
                            }
                        }
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.graph.security.push(SecuritySpec {
                    name,
                    threshold,
                    window,
                    actions,
                });
            }
            "trigger" => {
                let name = self.string()?;
                self.keyword("on")?;
                let on_kind = self.status_kind()?;
                let rspan = self.span();
                let on_role = self.ident()?;
                self.known_role(&on_role, rspan)?;
                let mut when = Vec::new();
                if matches!(self.peek(), Tok::Ident(s) if s == "when") {
                    self.bump();
                    loop {
                        let k = self.status_pred()?;
                        let cspan = self.span();
                        let r = self.ident()?;
                        self.known_role(&r, cspan)?;
                        when.push((r, k));
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.keyword("then")?;
                let action_kind = self.status_kind()?;
                let aspan = self.span();
                let action_role = self.ident()?;
                self.known_role(&action_role, aspan)?;
                let after = if matches!(self.peek(), Tok::Ident(s) if s == "after") {
                    self.bump();
                    self.duration()?
                } else {
                    snoop::Dur::ZERO
                };
                self.graph.triggers.push(TriggerSpec {
                    name,
                    on_role,
                    on_kind,
                    when,
                    action_role,
                    action_kind,
                    after,
                });
            }
            "context" => {
                let rspan = self.span();
                let role = self.ident()?;
                self.known_role(&role, rspan)?;
                self.keyword("requires")?;
                let key = self.ident()?;
                self.expect(&Tok::Eq)?;
                let value = self.ident()?;
                self.graph
                    .context_constraints
                    .push(ContextConstraintSpec { role, key, value });
            }
            "purpose" => {
                let name = self.ident()?;
                let parent = if matches!(self.peek(), Tok::Ident(s) if s == "under") {
                    self.bump();
                    let pspan = self.span();
                    let p = self.ident()?;
                    if !self.graph.purposes.iter().any(|x| x.name == p) {
                        return Err(SpecError {
                            span: pspan,
                            message: format!("unknown parent purpose `{p}`"),
                        });
                    }
                    Some(p)
                } else {
                    None
                };
                self.graph.purposes.push(PurposeSpec { name, parent });
            }
            "object_policy" => {
                let op = self.ident()?;
                self.keyword("on")?;
                let obj = self.ident()?;
                self.keyword("for")?;
                let rspan = self.span();
                let role = self.ident()?;
                self.known_role(&role, rspan)?;
                self.keyword("requires")?;
                let pspan = self.span();
                let purpose = self.ident()?;
                if !self.graph.purposes.iter().any(|x| x.name == purpose) {
                    return Err(SpecError {
                        span: pspan,
                        message: format!("unknown purpose `{purpose}`"),
                    });
                }
                self.graph.object_policies.push(ObjectPolicySpec {
                    op,
                    obj,
                    role,
                    purpose,
                });
            }
            other => {
                return Err(SpecError {
                    span,
                    message: format!("unknown statement `{other}`"),
                })
            }
        }
        self.expect(&Tok::Semi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-1 policy as DSL text.
    pub(crate) const XYZ: &str = r#"
        policy "XYZ" {
          roles PM, PC, AM, AC, Clerk;
          hierarchy PM -> PC -> Clerk;
          hierarchy AM -> AC -> Clerk;
          ssd "purchase-approval" { PC, AC } cardinality 2;
          permission place_order = create on purchase_order;
          permission approve_order = approve on purchase_order;
          permission read_order = read on purchase_order;
          grant place_order -> PC;
          grant approve_order -> AC;
          grant read_order -> Clerk;
        }
    "#;

    #[test]
    fn parses_enterprise_xyz_equal_to_builder() {
        let parsed = parse(XYZ).unwrap();
        let built = PolicyGraph::enterprise_xyz();
        assert_eq!(parsed, built);
    }

    #[test]
    fn full_feature_policy() {
        let src = r#"
            policy "hospital" {
              roles Doctor, Nurse, DayDoctor, SysAdmin, SysAudit, Manager, JuniorEmp;
              users bob, jane;
              assign bob -> Doctor, Nurse;
              cardinality Nurse max_active_users 5;
              cardinality jane max_active_roles 3;
              enable DayDoctor daily 08:00-16:00;
              max_activation Doctor 12h;
              max_activation Nurse for bob 2h;
              dsd "conflict" { Doctor, Nurse } cardinality 2;
              disabling_sod "availability" { Doctor, Nurse } daily 10:00-17:00;
              post_condition SysAdmin requires SysAudit;
              prerequisite JuniorEmp requires_active Manager;
              active_security "storm" threshold 10 within 60s actions alert, disable_activity;
              purpose treatment;
              purpose billing under treatment;
              permission read_rec = read on patient_record;
              grant read_rec -> Doctor;
              object_policy read on patient_record for Doctor requires treatment;
            }
        "#;
        let g = parse(src).unwrap();
        assert_eq!(g.name, "hospital");
        assert_eq!(g.roles.len(), 7);
        assert_eq!(g.role_node("Nurse").unwrap().max_active_users, Some(5));
        assert_eq!(g.user_node("jane").unwrap().max_active_roles, Some(3));
        assert_eq!(
            g.role_node("DayDoctor")
                .unwrap()
                .enabling
                .unwrap()
                .to_string(),
            "08:00-16:00"
        );
        assert_eq!(
            g.role_node("Nurse").unwrap().per_user_activation["bob"],
            Dur::from_hours(2)
        );
        assert_eq!(g.dsd.len(), 1);
        assert_eq!(g.disabling_sod[0].window.to_string(), "10:00-17:00");
        assert_eq!(g.post_conditions[0].requires, "SysAudit");
        assert_eq!(g.prerequisites[0].requires_active, "Manager");
        assert_eq!(g.security[0].threshold, 10);
        assert_eq!(
            g.security[0].actions,
            vec![SecurityAction::Alert, SecurityAction::DisableActivityRules]
        );
        assert_eq!(g.purposes.len(), 2);
        assert_eq!(g.object_policies.len(), 1);
    }

    #[test]
    fn forward_references_rejected() {
        let e = parse("policy \"p\" { hierarchy A -> B; }").unwrap_err();
        assert!(e.message.contains("unknown role `A`"), "{e}");
        let e = parse("policy \"p\" { roles A; assign bob -> A; }").unwrap_err();
        assert!(e.message.contains("unknown user `bob`"));
        let e = parse("policy \"p\" { roles A; users u; grant g -> A; }").unwrap_err();
        assert!(e.message.contains("unknown permission `g`"));
        let e = parse("policy \"p\" { purpose a under b; }").unwrap_err();
        assert!(e.message.contains("unknown parent purpose"));
    }

    #[test]
    fn syntax_errors_have_positions() {
        let e = parse("policy \"p\" { roles A\n  users B; }").unwrap_err();
        assert_eq!(e.span.line, 2, "error on the line of the unexpected token");
        let e = parse("policy \"p\" { bogus X; }").unwrap_err();
        assert!(e.message.contains("unknown statement"));
        let e = parse("policy \"p\" { roles A; ").unwrap_err();
        assert!(e.message.contains("missing `}`"));
    }

    #[test]
    fn default_ssd_cardinality_is_two() {
        let g = parse("policy \"p\" { roles A, B; ssd \"x\" { A, B }; }").unwrap();
        assert_eq!(g.ssd[0].cardinality, 2);
    }

    #[test]
    fn hierarchy_chain_expands_to_edges() {
        let g = parse("policy \"p\" { roles A, B, C; hierarchy A -> B -> C; }").unwrap();
        assert_eq!(
            g.hierarchy,
            vec![("A".into(), "B".into()), ("B".into(), "C".into())]
        );
    }
}
