//! Lexer for the policy-specification DSL.
//!
//! The DSL is this reproduction's stand-in for the paper's RBAC Manager GUI:
//! the graphical tool produced the Figure-1 policy graph; the DSL produces
//! the same [`crate::graph::PolicyGraph`] from text. Tokens carry line/column
//! spans for error reporting.

use snoop::Dur;
use std::fmt;

/// A token of the DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Quoted string.
    Str(String),
    /// Unsigned integer.
    Num(u64),
    /// A duration literal like `90s`, `30m`, `2h`, `1d`.
    Duration(Dur),
    /// A time-of-day literal `HH:MM` or `HH:MM:SS`.
    Time(u32, u32, u32),
    /// `->`
    Arrow,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `-`
    Dash,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Duration(d) => write!(f, "{d}"),
            Tok::Time(h, m, s) => write!(f, "{h:02}:{m:02}:{s:02}"),
            Tok::Arrow => write!(f, "->"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Eq => write!(f, "="),
            Tok::Dash => write!(f, "-"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// Source position of a token (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Line.
    pub line: u32,
    /// Column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexing/parsing error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Where it happened.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy spec error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Tokenize a policy source text.
pub fn lex(src: &str) -> Result<Vec<(Tok, Span)>, SpecError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! span {
        () => {
            Span { line, col }
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push((Tok::LBrace, span!()));
                i += 1;
                col += 1;
            }
            '}' => {
                out.push((Tok::RBrace, span!()));
                i += 1;
                col += 1;
            }
            ',' => {
                out.push((Tok::Comma, span!()));
                i += 1;
                col += 1;
            }
            ';' => {
                out.push((Tok::Semi, span!()));
                i += 1;
                col += 1;
            }
            '=' => {
                out.push((Tok::Eq, span!()));
                i += 1;
                col += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Tok::Arrow, span!()));
                    i += 2;
                    col += 2;
                } else {
                    out.push((Tok::Dash, span!()));
                    i += 1;
                    col += 1;
                }
            }
            '"' => {
                let start = span!();
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        None | Some(b'\n') => {
                            return Err(SpecError {
                                span: start,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(b'"') => break,
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                col += (j + 1 - i) as u32;
                i = j + 1;
                out.push((Tok::Str(s), start));
            }
            '0'..='9' => {
                let start = span!();
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let num: u64 = src[i..j].parse().map_err(|_| SpecError {
                    span: start,
                    message: "number too large".into(),
                })?;
                // Time literal HH:MM or HH:MM:SS?
                if bytes.get(j) == Some(&b':') {
                    let (time, consumed) = lex_time(src, i, start)?;
                    out.push((time, start));
                    col += consumed as u32;
                    i += consumed;
                    continue;
                }
                // Duration suffix?
                let (dur, suffix_len) = match bytes.get(j).map(|&b| b as char) {
                    Some('s') => (Some(Dur::from_secs(num)), 1),
                    Some('m') => (Some(Dur::from_mins(num)), 1),
                    Some('h') => (Some(Dur::from_hours(num)), 1),
                    Some('d') => (Some(Dur::from_hours(num * 24)), 1),
                    _ => (None, 0),
                };
                if let Some(d) = dur {
                    // Suffix must not continue into an identifier (e.g. `2hx`).
                    if bytes
                        .get(j + 1)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                    {
                        return Err(SpecError {
                            span: start,
                            message: format!("malformed duration literal {:?}", &src[i..j + 2]),
                        });
                    }
                    out.push((Tok::Duration(d), start));
                    col += (j + suffix_len - i) as u32;
                    i = j + suffix_len;
                } else {
                    out.push((Tok::Num(num), start));
                    col += (j - i) as u32;
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = span!();
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push((Tok::Ident(src[i..j].to_string()), start));
                col += (j - i) as u32;
                i = j;
            }
            other => {
                return Err(SpecError {
                    span: span!(),
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    out.push((Tok::Eof, span!()));
    Ok(out)
}

/// Lex `HH:MM` or `HH:MM:SS` starting at byte `i`. Returns the token and
/// the number of bytes consumed.
fn lex_time(src: &str, i: usize, span: Span) -> Result<(Tok, usize), SpecError> {
    let rest = &src[i..];
    let mut parts = Vec::new();
    let mut consumed = 0;
    for (k, chunk) in rest.splitn(3, ':').enumerate() {
        let digits: String = chunk.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() || digits.len() > 2 {
            return Err(SpecError {
                span,
                message: "malformed time literal".into(),
            });
        }
        parts.push(digits.parse::<u32>().expect("digits only"));
        consumed += digits.len();
        if k < 2 && rest.as_bytes().get(consumed) == Some(&b':') {
            consumed += 1;
        } else {
            break;
        }
    }
    if parts.len() < 2 {
        return Err(SpecError {
            span,
            message: "malformed time literal".into(),
        });
    }
    let (h, m, s) = (parts[0], parts[1], parts.get(2).copied().unwrap_or(0));
    if h > 23 || m > 59 || s > 59 {
        return Err(SpecError {
            span,
            message: format!("time {h:02}:{m:02}:{s:02} out of range"),
        });
    }
    Ok((Tok::Time(h, m, s), consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("roles PM, PC;"),
            vec![
                Tok::Ident("roles".into()),
                Tok::Ident("PM".into()),
                Tok::Comma,
                Tok::Ident("PC".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrows_and_braces() {
        assert_eq!(
            toks("hierarchy A -> B { }"),
            vec![
                Tok::Ident("hierarchy".into()),
                Tok::Ident("A".into()),
                Tok::Arrow,
                Tok::Ident("B".into()),
                Tok::LBrace,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn durations_and_numbers() {
        assert_eq!(
            toks("2h 30m 10s 1d 42"),
            vec![
                Tok::Duration(Dur::from_hours(2)),
                Tok::Duration(Dur::from_mins(30)),
                Tok::Duration(Dur::from_secs(10)),
                Tok::Duration(Dur::from_hours(24)),
                Tok::Num(42),
                Tok::Eof
            ]
        );
        assert!(lex("2hx").is_err());
    }

    #[test]
    fn times_and_ranges() {
        assert_eq!(
            toks("08:00-16:30"),
            vec![
                Tok::Time(8, 0, 0),
                Tok::Dash,
                Tok::Time(16, 30, 0),
                Tok::Eof
            ]
        );
        assert_eq!(toks("10:00:30"), vec![Tok::Time(10, 0, 30), Tok::Eof]);
        assert!(lex("25:00").is_err());
        assert!(lex("10:61").is_err());
    }

    #[test]
    fn strings_and_comments() {
        assert_eq!(
            toks("ssd \"purchase approval\" # trailing comment\n;"),
            vec![
                Tok::Ident("ssd".into()),
                Tok::Str("purchase approval".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let lexed = lex("a\n  b").unwrap();
        assert_eq!(lexed[0].1, Span { line: 1, col: 1 });
        assert_eq!(lexed[1].1, Span { line: 2, col: 3 });
    }

    #[test]
    fn unexpected_character() {
        let e = lex("@").unwrap_err();
        assert!(e.message.contains("unexpected"));
        assert!(e.to_string().contains("1:1"));
    }
}
