//! The textual policy-specification language (the RBAC-Manager stand-in).

pub mod lexer;
pub mod parser;
pub mod printer;

pub use lexer::{Span, SpecError, Tok};
pub use parser::parse;
pub use printer::print;
