//! Pretty-printer: render a [`PolicyGraph`] back into DSL text.
//!
//! The inverse of [`crate::spec::parse`]: `parse(print(g)) == g` for every
//! well-formed graph (property-tested). Lets administrators round-trip
//! between the programmatic builder, files on disk, and the textual form —
//! the "high level specification" stays the single source of truth.

use crate::graph::{PolicyGraph, SecurityAction, StatusKind};
use snoop::Dur;
use std::fmt::Write;

fn fmt_dur(d: Dur) -> String {
    let secs = d.as_secs();
    if secs.is_multiple_of(3600) && secs > 0 {
        format!("{}h", secs / 3600)
    } else if secs.is_multiple_of(60) && secs > 0 {
        format!("{}m", secs / 60)
    } else {
        format!("{secs}s")
    }
}

/// Render the policy as DSL source text.
pub fn print(g: &PolicyGraph) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "policy \"{}\" {{", g.name).expect("string write");

    if !g.roles.is_empty() {
        let names: Vec<&str> = g.roles.iter().map(|r| r.name.as_str()).collect();
        writeln!(w, "  roles {};", names.join(", ")).expect("string write");
    }
    if !g.users.is_empty() {
        let names: Vec<&str> = g.users.iter().map(|u| u.name.as_str()).collect();
        writeln!(w, "  users {};", names.join(", ")).expect("string write");
    }
    for (s, j) in &g.hierarchy {
        writeln!(w, "  hierarchy {s} -> {j};").expect("string write");
    }
    for set in &g.ssd {
        let roles: Vec<&str> = set.roles.iter().map(String::as_str).collect();
        writeln!(
            w,
            "  ssd \"{}\" {{ {} }} cardinality {};",
            set.name,
            roles.join(", "),
            set.cardinality
        )
        .expect("string write");
    }
    for set in &g.dsd {
        let roles: Vec<&str> = set.roles.iter().map(String::as_str).collect();
        writeln!(
            w,
            "  dsd \"{}\" {{ {} }} cardinality {};",
            set.name,
            roles.join(", "),
            set.cardinality
        )
        .expect("string write");
    }
    for p in &g.permissions {
        writeln!(w, "  permission {} = {} on {};", p.name, p.op, p.obj).expect("string write");
    }
    for (perm, role) in &g.grants {
        writeln!(w, "  grant {perm} -> {role};").expect("string write");
    }
    for (user, role) in &g.assignments {
        writeln!(w, "  assign {user} -> {role};").expect("string write");
    }
    for r in &g.roles {
        if let Some(n) = r.max_active_users {
            writeln!(w, "  cardinality {} max_active_users {n};", r.name).expect("string write");
        }
    }
    for u in &g.users {
        if let Some(n) = u.max_active_roles {
            writeln!(w, "  cardinality {} max_active_roles {n};", u.name).expect("string write");
        }
    }
    for r in &g.roles {
        if let Some(win) = &r.enabling {
            writeln!(
                w,
                "  enable {} daily {:02}:{:02}-{:02}:{:02};",
                r.name, win.start_h, win.start_m, win.end_h, win.end_m
            )
            .expect("string write");
        }
        if let Some(d) = r.max_activation {
            writeln!(w, "  max_activation {} {};", r.name, fmt_dur(d)).expect("string write");
        }
        for (user, d) in &r.per_user_activation {
            writeln!(w, "  max_activation {} for {user} {};", r.name, fmt_dur(*d))
                .expect("string write");
        }
    }
    for d in &g.disabling_sod {
        let roles: Vec<&str> = d.roles.iter().map(String::as_str).collect();
        writeln!(
            w,
            "  disabling_sod \"{}\" {{ {} }} daily {:02}:{:02}-{:02}:{:02};",
            d.name,
            roles.join(", "),
            d.window.start_h,
            d.window.start_m,
            d.window.end_h,
            d.window.end_m
        )
        .expect("string write");
    }
    for d in &g.enabling_sod {
        let roles: Vec<&str> = d.roles.iter().map(String::as_str).collect();
        writeln!(
            w,
            "  enabling_sod \"{}\" {{ {} }} daily {:02}:{:02}-{:02}:{:02};",
            d.name,
            roles.join(", "),
            d.window.start_h,
            d.window.start_m,
            d.window.end_h,
            d.window.end_m
        )
        .expect("string write");
    }
    for pc in &g.post_conditions {
        writeln!(w, "  post_condition {} requires {};", pc.role, pc.requires)
            .expect("string write");
    }
    for p in &g.prerequisites {
        writeln!(
            w,
            "  prerequisite {} requires_active {};",
            p.role, p.requires_active
        )
        .expect("string write");
    }
    for s in &g.security {
        let actions: Vec<String> = s
            .actions
            .iter()
            .map(|a| match a {
                SecurityAction::Alert => "alert".to_string(),
                SecurityAction::DisableActivityRules => "disable_activity".to_string(),
                SecurityAction::DisableRole(r) => format!("disable_role {r}"),
            })
            .collect();
        writeln!(
            w,
            "  active_security \"{}\" threshold {} within {} actions {};",
            s.name,
            s.threshold,
            fmt_dur(s.window),
            actions.join(", ")
        )
        .expect("string write");
    }
    for t in &g.triggers {
        let kind = |k: StatusKind| match k {
            StatusKind::Enabled => "enable",
            StatusKind::Disabled => "disable",
        };
        let mut line = format!(
            "  trigger \"{}\" on {} {}",
            t.name,
            kind(t.on_kind),
            t.on_role
        );
        if !t.when.is_empty() {
            let conds: Vec<String> = t
                .when
                .iter()
                .map(|(r, e)| format!("{} {r}", if *e { "enabled" } else { "disabled" }))
                .collect();
            line.push_str(&format!(" when {}", conds.join(", ")));
        }
        line.push_str(&format!(" then {} {}", kind(t.action_kind), t.action_role));
        if !t.after.is_zero() {
            line.push_str(&format!(" after {}", fmt_dur(t.after)));
        }
        line.push(';');
        writeln!(w, "{line}").expect("string write");
    }
    for c in &g.context_constraints {
        writeln!(w, "  context {} requires {} = {};", c.role, c.key, c.value)
            .expect("string write");
    }
    for p in &g.purposes {
        match &p.parent {
            Some(parent) => writeln!(w, "  purpose {} under {parent};", p.name),
            None => writeln!(w, "  purpose {};", p.name),
        }
        .expect("string write");
    }
    for op in &g.object_policies {
        writeln!(
            w,
            "  object_policy {} on {} for {} requires {};",
            op.op, op.obj, op.role, op.purpose
        )
        .expect("string write");
    }
    writeln!(w, "}}").expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse;

    #[test]
    fn xyz_round_trips() {
        let g = PolicyGraph::enterprise_xyz();
        let text = print(&g);
        let back = parse(&text).unwrap();
        assert_eq!(g, back, "printed:\n{text}");
    }

    #[test]
    fn full_feature_round_trip() {
        let src = r#"
            policy "hospital" {
              roles Doctor, Nurse, DayDoctor, SysAdmin, SysAudit, Manager, JuniorEmp;
              users bob, jane;
              assign bob -> Doctor;
              cardinality Nurse max_active_users 5;
              cardinality jane max_active_roles 3;
              enable DayDoctor daily 08:00-16:00;
              max_activation Doctor 12h;
              max_activation Nurse for bob 2h;
              dsd "conflict" { Doctor, Nurse } cardinality 2;
              disabling_sod "availability" { Doctor, Nurse } daily 10:00-17:00;
              post_condition SysAdmin requires SysAudit;
              prerequisite JuniorEmp requires_active Manager;
              active_security "storm" threshold 10 within 60s actions alert, disable_activity;
              purpose treatment;
              purpose billing under treatment;
              permission read_rec = read on patient_record;
              grant read_rec -> Doctor;
              object_policy read on patient_record for Doctor requires treatment;
            }
        "#;
        let g = parse(src).unwrap();
        let text = print(&g);
        let back = parse(&text).unwrap();
        assert_eq!(g, back, "printed:\n{text}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Dur::from_hours(2)), "2h");
        assert_eq!(fmt_dur(Dur::from_mins(90)), "90m");
        assert_eq!(fmt_dur(Dur::from_secs(45)), "45s");
        assert_eq!(fmt_dur(Dur::ZERO), "0s");
    }

    #[test]
    fn printing_is_deterministic() {
        let g = PolicyGraph::enterprise_xyz();
        assert_eq!(print(&g), print(&g));
    }
}
