//! Lowering a verified, instantiated policy into an execution plan.
//!
//! `sentinel::compile` is monitor-agnostic; this module supplies the
//! monitor-side closures — the RBAC hierarchy ancestor sets and DSD set
//! memberships baked into dense arrays — and enforces the **license**:
//! only a pool the static analyzer proved terminating with zero errors
//! may be lowered. The license is what makes baking sound: a licensed
//! pool only references registered events, and the baked closures are
//! invalidated with the plan whenever `regenerate_verified` rebuilds the
//! pool (hierarchy and SoD sets only change through regeneration).
//!
//! Beyond the rule plan itself, [`CompiledPolicy`] pre-resolves the
//! engine's operation entry points (per-role activation/enablement events
//! and the fixed administrative events) to [`EventId`]s, so the hot path
//! skips the `format!`-and-name-lookup on every operation.

use crate::analyze::AnalysisReport;
use crate::events;
use crate::generate::Instantiated;
use rbac::{RoleId, System};
use sentinel::{compile as compile_rules, CompileHost, CompiledPool};
use snoop::EventId;
use std::fmt;

/// Why a policy could not be lowered. Never fatal: the engine keeps the
/// interpreter when compilation is refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The analyzer verdict does not license compilation (not proved
    /// terminating, or error diagnostics present).
    NotLicensed(String),
    /// Rule lowering failed (unresolvable event name — implies the
    /// license check was bypassed).
    Rule(sentinel::CompileError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotLicensed(summary) => {
                write!(f, "pool not licensed for compilation: {summary}")
            }
            CompileError::Rule(e) => write!(f, "lowering failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Per-role operation events, indexed by `RoleId.0`. `None` entries mean
/// the role has no such event (or the id is out of range) — callers fall
/// back to the name path.
type RoleEventTable = Vec<Option<EventId>>;

/// A compiled policy: the rule-dispatch plan plus pre-resolved operation
/// entry events.
#[derive(Debug, Clone)]
pub struct CompiledPolicy {
    /// The lowered rule pool.
    pub plan: CompiledPool,
    /// `addActiveRole_<role>` per role.
    pub add_active: RoleEventTable,
    /// `dropActiveRole_<role>` per role.
    pub drop_active: RoleEventTable,
    /// `enableRole_<role>` per role.
    pub enable_role: RoleEventTable,
    /// `disableRole_<role>` per role.
    pub disable_role: RoleEventTable,
    /// `checkAccess`.
    pub check_access: Option<EventId>,
    /// `assignUser`.
    pub assign_user: Option<EventId>,
    /// `deassignUser`.
    pub deassign_user: Option<EventId>,
    /// `contextChanged`.
    pub context_changed: Option<EventId>,
    /// `accessDenied`.
    pub access_denied: Option<EventId>,
}

impl CompiledPolicy {
    /// Look up a per-role operation event.
    pub fn role_event(table: &[Option<EventId>], r: RoleId) -> Option<EventId> {
        table.get(r.index()).copied().flatten()
    }
}

/// [`CompileHost`] over the RBAC reference monitor.
struct SystemHost<'a> {
    sys: &'a System,
}

impl CompileHost for SystemHost<'_> {
    fn authorized_closure(&self, role: i64) -> Option<Vec<i64>> {
        let r = u32::try_from(role).ok().map(RoleId)?;
        let seniors = self.sys.seniors_closure(r).ok()?;
        let mut out = Vec::with_capacity(seniors.len() + 1);
        out.push(role);
        out.extend(seniors.into_iter().map(|s| i64::from(s.0)));
        Some(out)
    }

    fn dsd_sets(&self, role: i64) -> Option<Vec<(Vec<i64>, usize)>> {
        let r = u32::try_from(role).ok().map(RoleId)?;
        self.sys.role_name(r).ok()?;
        let mut out = Vec::new();
        for id in self.sys.all_dsd_sets() {
            let (_, roles, n) = self.sys.dsd_set_info(id).ok()?;
            if roles.contains(&r) {
                out.push((roles.iter().map(|x| i64::from(x.0)).collect(), n));
            }
        }
        Some(out)
    }
}

/// Lower an instantiated policy under the analyzer's license. Refuses —
/// with [`CompileError::NotLicensed`] — unless the report proves
/// termination with zero error diagnostics.
pub fn compile_pool(
    inst: &Instantiated,
    report: &AnalysisReport,
) -> Result<CompiledPolicy, CompileError> {
    if !report.proved_terminating() || report.error_count() > 0 {
        return Err(CompileError::NotLicensed(report.summary()));
    }
    let host = SystemHost { sys: &inst.system };
    let plan = compile_rules(&inst.pool, &inst.detector, &host).map_err(CompileError::Rule)?;

    let slots = inst
        .binding
        .roles
        .values()
        .map(|r| r.index() + 1)
        .max()
        .unwrap_or(0);
    let mut add_active = vec![None; slots];
    let mut drop_active = vec![None; slots];
    let mut enable_role = vec![None; slots];
    let mut disable_role = vec![None; slots];
    for (name, &rid) in &inst.binding.roles {
        let i = rid.index();
        add_active[i] = inst.detector.lookup(&events::add_active(name));
        drop_active[i] = inst.detector.lookup(&events::drop_active(name));
        enable_role[i] = inst.detector.lookup(&events::enable_role(name));
        disable_role[i] = inst.detector.lookup(&events::disable_role(name));
    }

    Ok(CompiledPolicy {
        plan,
        add_active,
        drop_active,
        enable_role,
        disable_role,
        check_access: inst.detector.lookup(events::CHECK_ACCESS),
        assign_user: inst.detector.lookup(events::ASSIGN_USER),
        deassign_user: inst.detector.lookup(events::DEASSIGN_USER),
        context_changed: inst.detector.lookup(events::CONTEXT_CHANGED),
        access_denied: inst.detector.lookup(events::ACCESS_DENIED),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::generate::instantiate;
    use crate::graph::PolicyGraph;
    use snoop::Ts;

    #[test]
    fn xyz_pool_compiles_under_license() {
        let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
        let report = analyze(&inst);
        let compiled = compile_pool(&inst, &report).unwrap();
        assert_eq!(compiled.plan.rules.len(), inst.pool.len());
        assert!(compiled.check_access.is_some());
        // Every bound role resolves its activation event.
        for (name, &rid) in &inst.binding.roles {
            assert_eq!(
                CompiledPolicy::role_event(&compiled.add_active, rid),
                inst.detector.lookup(&events::add_active(name)),
                "role {name}"
            );
        }
    }

    #[test]
    fn unlicensed_pool_is_refused() {
        let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
        let mut report = analyze(&inst);
        report.termination = crate::analyze::Termination::PotentialLoop { cycles: vec![] };
        assert!(matches!(
            compile_pool(&inst, &report),
            Err(CompileError::NotLicensed(_))
        ));
    }

    #[test]
    fn baked_closures_match_monitor_queries() {
        let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
        let host = SystemHost { sys: &inst.system };
        for &rid in inst.binding.roles.values() {
            let closure = host.authorized_closure(i64::from(rid.0)).unwrap();
            assert_eq!(closure[0], i64::from(rid.0), "role itself first");
            let seniors = inst.system.seniors_closure(rid).unwrap();
            assert_eq!(closure.len(), seniors.len() + 1);
            for s in seniors {
                assert!(closure.contains(&i64::from(s.0)));
            }
            let sets = host.dsd_sets(i64::from(rid.0)).unwrap();
            for (roles, n) in &sets {
                assert!(roles.contains(&i64::from(rid.0)));
                assert!(*n >= 2, "DSD cardinality is at least 2");
            }
        }
        // Unknown roles refuse to bake.
        assert_eq!(host.authorized_closure(-1), None);
        assert_eq!(host.dsd_sets(1_000_000), None);
    }
}
