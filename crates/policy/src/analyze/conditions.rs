//! Abstract interpretation of rule conditions.
//!
//! Conditions are evaluated over a three-valued domain (true / false /
//! unknown): state-dependent checks are unknown, constants and
//! event-structure facts (`SourceIs` against the triggering event's
//! constituents) are decided, and contradictory conjunctions (`c ∧ ¬c`)
//! are folded to false. A When-clause that is *false* makes the Then
//! branch dead; one that is *true* makes a non-empty Else branch dead.
//! Same-event shadowing is detected syntactically: a strictly
//! higher-priority denying rule whose conjunction is a subset of a lower
//! rule's conjunction fires (and short-circuits the dispatch) whenever the
//! lower rule could.

use super::{DiagCode, Diagnostic, Severity};
use sentinel::{ActionSpec, Check, CondExpr, Rule, RulePool};
use snoop::{Detector, EventId};
use std::collections::HashSet;

/// Three-valued verdict of the abstract evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Abs {
    True,
    False,
    Unknown,
}

fn not(a: Abs) -> Abs {
    match a {
        Abs::True => Abs::False,
        Abs::False => Abs::True,
        Abs::Unknown => Abs::Unknown,
    }
}

/// Facts about the triggering event the evaluation may use.
pub(crate) struct EventFacts {
    /// Primitive constituents of the triggering event.
    constituents: Vec<EventId>,
    /// The trigger is itself primitive (its occurrences have exactly one
    /// source), so `SourceIs` is fully decided.
    primitive: bool,
}

impl EventFacts {
    pub(crate) fn of(detector: &Detector, event: EventId) -> EventFacts {
        EventFacts {
            constituents: detector.constituent_primitives(event),
            primitive: detector.is_primitive(event),
        }
    }
}

/// Evaluate one atomic check.
fn eval_check(check: &Check, detector: &Detector, facts: &EventFacts) -> Abs {
    match check {
        Check::SourceIs(name) => match detector.lookup(name) {
            // Unregistered name: a runtime eval error (the coverage pass
            // reports it); don't additionally call the branch dead.
            None => Abs::Unknown,
            Some(id) if !facts.constituents.contains(&id) => Abs::False,
            Some(_) if facts.primitive => Abs::True,
            Some(_) => Abs::Unknown,
        },
        // Everything else depends on authorization state or parameters.
        _ => Abs::Unknown,
    }
}

/// Evaluate a condition; `literals` (rendered check strings seen positively
/// / negatively along the current conjunction) powers contradiction
/// detection across `All` branches.
pub(crate) fn eval(cond: &CondExpr, detector: &Detector, facts: &EventFacts) -> Abs {
    match cond {
        CondExpr::True => Abs::True,
        CondExpr::False => Abs::False,
        CondExpr::Check(c) => eval_check(c, detector, facts),
        CondExpr::All(cs) => {
            let mut pos: HashSet<String> = HashSet::new();
            let mut neg: HashSet<String> = HashSet::new();
            let mut result = Abs::True;
            for c in cs {
                match c {
                    CondExpr::Check(chk) => {
                        let key = chk.to_string();
                        if neg.contains(&key) {
                            return Abs::False;
                        }
                        pos.insert(key);
                    }
                    CondExpr::Not(inner) => {
                        if let CondExpr::Check(chk) = inner.as_ref() {
                            let key = chk.to_string();
                            if pos.contains(&key) {
                                return Abs::False;
                            }
                            neg.insert(key);
                        }
                    }
                    _ => {}
                }
                match eval(c, detector, facts) {
                    Abs::False => return Abs::False,
                    Abs::Unknown => result = Abs::Unknown,
                    Abs::True => {}
                }
            }
            result
        }
        CondExpr::Any(cs) => {
            let mut result = Abs::False;
            for c in cs {
                match eval(c, detector, facts) {
                    Abs::True => return Abs::True,
                    Abs::Unknown => result = Abs::Unknown,
                    Abs::False => {}
                }
            }
            result
        }
        CondExpr::Not(c) => not(eval(c, detector, facts)),
        CondExpr::If {
            guard,
            then,
            otherwise,
        } => match eval(guard, detector, facts) {
            Abs::True => eval(then, detector, facts),
            Abs::False => eval(otherwise, detector, facts),
            Abs::Unknown => {
                let t = eval(then, detector, facts);
                let o = eval(otherwise, detector, facts);
                if t == o {
                    t
                } else {
                    Abs::Unknown
                }
            }
        },
    }
}

/// The literal set of a pure conjunction: rendered checks, prefixed with
/// `!` when negated. `True` is the empty conjunction. Returns `None` for
/// conditions that are not plain conjunctions of (possibly negated)
/// atomic checks — those are excluded from subsumption.
fn conjunction_literals(cond: &CondExpr) -> Option<HashSet<String>> {
    fn literal(c: &CondExpr) -> Option<String> {
        match c {
            CondExpr::Check(chk) => Some(chk.to_string()),
            CondExpr::Not(inner) => match inner.as_ref() {
                CondExpr::Check(chk) => Some(format!("!{chk}")),
                _ => None,
            },
            _ => None,
        }
    }
    match cond {
        CondExpr::True => Some(HashSet::new()),
        CondExpr::All(cs) => cs.iter().map(literal).collect(),
        _ => literal(cond).map(|l| HashSet::from([l])),
    }
}

/// Does the rule deny (short-circuiting lower-priority rules) when its
/// condition holds?
fn denies_on_true(rule: &Rule) -> bool {
    rule.then
        .iter()
        .any(|a| matches!(a, ActionSpec::RaiseError(_)))
}

/// Run the condition analysis over every live rule.
pub(crate) fn check(detector: &Detector, pool: &RulePool, diagnostics: &mut Vec<Diagnostic>) {
    for (_, rule) in pool.iter() {
        let facts = EventFacts::of(detector, rule.event);
        match eval(&rule.when, detector, &facts) {
            Abs::False => {
                let (message, hint) = if rule.otherwise.is_empty() {
                    (
                        format!(
                            "rule `{}` is dead: its When-clause can never hold and it has \
                             no Else actions",
                            rule.name
                        ),
                        "remove the rule or fix the contradictory condition".to_string(),
                    )
                } else {
                    (
                        format!(
                            "rule `{}` always takes its Else branch: the When-clause can \
                             never hold",
                            rule.name
                        ),
                        "the Then actions are unreachable; fix the condition or move the \
                         Else actions into Then"
                            .to_string(),
                    )
                };
                diagnostics.push(Diagnostic {
                    severity: Severity::Warning,
                    code: DiagCode::UnsatisfiableWhen,
                    message,
                    rules: vec![rule.name.clone()],
                    roles: vec![],
                    events: vec![],
                    hint,
                });
            }
            Abs::True if !rule.otherwise.is_empty() => {
                diagnostics.push(Diagnostic {
                    severity: Severity::Warning,
                    code: DiagCode::TautologicalWhen,
                    message: format!(
                        "rule `{}` has a tautological When-clause: its Else actions are dead",
                        rule.name
                    ),
                    rules: vec![rule.name.clone()],
                    roles: vec![],
                    events: vec![],
                    hint: "remove the Else actions or strengthen the condition".into(),
                });
            }
            _ => {}
        }
    }

    // Same-event shadowing, per triggering event in priority order.
    let mut events: Vec<EventId> = pool.iter().map(|(_, r)| r.event).collect();
    events.sort_unstable();
    events.dedup();
    for event in events {
        let ids = pool.triggered_by(event);
        for (hi, &high_id) in ids.iter().enumerate() {
            let high = pool.get(high_id).expect("indexed rule exists");
            if !high.enabled || !denies_on_true(high) {
                continue;
            }
            let Some(high_lits) = conjunction_literals(&high.when) else {
                continue;
            };
            for &low_id in &ids[hi + 1..] {
                let low = pool.get(low_id).expect("indexed rule exists");
                if !low.enabled || low.priority >= high.priority {
                    continue;
                }
                let Some(low_lits) = conjunction_literals(&low.when) else {
                    continue;
                };
                if high_lits.is_subset(&low_lits) {
                    diagnostics.push(Diagnostic {
                        severity: Severity::Warning,
                        code: DiagCode::ShadowedRule,
                        message: format!(
                            "rule `{}` is shadowed by higher-priority rule `{}`: whenever \
                             `{}` could fire, `{}` denies first and stops the dispatch",
                            low.name, high.name, low.name, high.name
                        ),
                        rules: vec![low.name.clone(), high.name.clone()],
                        roles: vec![],
                        events: vec![],
                        hint: "lower the shadowing rule's priority, or make its condition \
                               strictly stronger than the shadowed rule's"
                            .into(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel::{attach_rule, ParamRef, Rule};
    use snoop::Ts;

    fn exists() -> CondExpr {
        CondExpr::check(Check::UserExists(ParamRef::param("user")))
    }

    #[test]
    fn contradiction_is_false() {
        let d = Detector::new(Ts::ZERO);
        let facts = EventFacts {
            constituents: vec![],
            primitive: true,
        };
        let cond = CondExpr::All(vec![exists(), CondExpr::Not(Box::new(exists()))]);
        assert_eq!(eval(&cond, &d, &facts), Abs::False);
        let fine = CondExpr::All(vec![exists()]);
        assert_eq!(eval(&fine, &d, &facts), Abs::Unknown);
        assert_eq!(eval(&CondExpr::True, &d, &facts), Abs::True);
    }

    #[test]
    fn source_is_decided_by_constituents() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        d.primitive("b");
        let facts = EventFacts::of(&d, a);
        let same = CondExpr::check(Check::SourceIs("a".into()));
        let other = CondExpr::check(Check::SourceIs("b".into()));
        let unknown = CondExpr::check(Check::SourceIs("nope".into()));
        assert_eq!(eval(&same, &d, &facts), Abs::True);
        assert_eq!(eval(&other, &d, &facts), Abs::False);
        assert_eq!(eval(&unknown, &d, &facts), Abs::Unknown);
    }

    #[test]
    fn dead_and_tautological_rules_flagged() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new(
                "dead",
                a,
                CondExpr::All(vec![exists(), CondExpr::Not(Box::new(exists()))]),
            ),
        );
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("taut", a, CondExpr::True).otherwise(vec![ActionSpec::Alert("never".into())]),
        );
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("fine", a, CondExpr::True).then(vec![ActionSpec::Allow]),
        );
        let mut diags = Vec::new();
        check(&d, &pool, &mut diags);
        assert!(diags
            .iter()
            .any(|x| x.code == DiagCode::UnsatisfiableWhen && x.rules == vec!["dead"]));
        assert!(diags
            .iter()
            .any(|x| x.code == DiagCode::TautologicalWhen && x.rules == vec!["taut"]));
        assert_eq!(diags.len(), 2, "`fine` is not flagged: {diags:?}");
    }

    #[test]
    fn higher_priority_denier_shadows_weaker_rule() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("deny_all", a, CondExpr::True)
                .then(vec![ActionSpec::RaiseError("no".into())])
                .priority(5),
        );
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("guarded", a, exists()).then(vec![ActionSpec::Allow]),
        );
        let mut diags = Vec::new();
        check(&d, &pool, &mut diags);
        let shadow: Vec<_> = diags
            .iter()
            .filter(|x| x.code == DiagCode::ShadowedRule)
            .collect();
        assert_eq!(shadow.len(), 1);
        assert_eq!(shadow[0].rules, vec!["guarded", "deny_all"]);
    }

    #[test]
    fn non_denying_high_priority_rule_does_not_shadow() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("logger", a, CondExpr::True)
                .then(vec![ActionSpec::Alert("seen".into())])
                .priority(5),
        );
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("worker", a, exists()).then(vec![ActionSpec::Allow]),
        );
        let mut diags = Vec::new();
        check(&d, &pool, &mut diags);
        assert!(diags.iter().all(|x| x.code != DiagCode::ShadowedRule));
    }
}
