//! Coverage and conflict checks.
//!
//! * Every guarded RBAC operation — per-role activation / deactivation /
//!   enable / disable requests and the global check-access and
//!   administrative events — must be covered by at least one enabled rule
//!   (directly or through a composite event the operation's event feeds).
//! * Every event name a rule references (`RaiseEvent`, `CancelPlus`,
//!   `SourceIs`) must resolve in the detector registry; a miss is a
//!   runtime evaluation error waiting to happen.
//! * SSD/DSD sets are checked against the *transitive* hierarchy closure:
//!   a common senior that authorizes enough members defeats the set even
//!   when no two members are directly related.

use super::closure::sod_covers;
use super::{DiagCode, Diagnostic, Severity};
use crate::events;
use crate::graph::PolicyGraph;
use sentinel::{ActionSpec, Check, CondExpr, RulePool};
use snoop::Detector;
use std::collections::BTreeSet;

/// Collect every event name referenced by a condition's `SourceIs` checks.
fn source_names<'a>(cond: &'a CondExpr, out: &mut Vec<&'a str>) {
    match cond {
        CondExpr::Check(Check::SourceIs(name)) => out.push(name),
        CondExpr::Check(_) | CondExpr::True | CondExpr::False => {}
        CondExpr::All(cs) | CondExpr::Any(cs) => {
            for c in cs {
                source_names(c, out);
            }
        }
        CondExpr::Not(c) => source_names(c, out),
        CondExpr::If {
            guard,
            then,
            otherwise,
        } => {
            source_names(guard, out);
            source_names(then, out);
            source_names(otherwise, out);
        }
    }
}

/// Is the event (or any composite it feeds) guarded by an enabled rule?
fn covered(detector: &Detector, pool: &RulePool, name: &str) -> bool {
    let Some(id) = detector.lookup(name) else {
        return false;
    };
    detector.ancestor_closure(id, false).into_iter().any(|e| {
        pool.triggered_by(e)
            .iter()
            .any(|&rid| pool.get(rid).is_some_and(|r| r.enabled))
    })
}

/// Run the coverage and conflict checks.
pub(crate) fn check(
    graph: &PolicyGraph,
    detector: &Detector,
    pool: &RulePool,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // ---- guarded operations ------------------------------------------------
    for role in &graph.roles {
        let ops = [
            ("activation", events::add_active(&role.name)),
            ("deactivation", events::drop_active(&role.name)),
            ("enable request", events::enable_role(&role.name)),
            ("disable request", events::disable_role(&role.name)),
        ];
        for (what, event) in ops {
            if !covered(detector, pool, &event) {
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: DiagCode::UncoveredOperation,
                    message: format!(
                        "{what} of role `{}` is unguarded: no enabled rule triggers on \
                         event `{event}`",
                        role.name
                    ),
                    rules: vec![],
                    roles: vec![role.name.clone()],
                    events: vec![event],
                    hint: "regenerate the pool, or re-enable the rule that guards this \
                           operation"
                        .into(),
                });
            }
        }
    }
    for (what, event) in [
        ("access checking", events::CHECK_ACCESS),
        ("user assignment", events::ASSIGN_USER),
        ("user deassignment", events::DEASSIGN_USER),
    ] {
        if !covered(detector, pool, event) {
            diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: DiagCode::UncoveredOperation,
                message: format!(
                    "{what} is unguarded: no enabled rule triggers on event `{event}`"
                ),
                rules: vec![],
                roles: vec![],
                events: vec![event.to_string()],
                hint: "regenerate the pool, or re-enable the global rule".into(),
            });
        }
    }

    // ---- event-name resolution --------------------------------------------
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for (_, rule) in pool.iter() {
        let mut names: Vec<(&str, &str)> = Vec::new();
        for action in rule.then.iter().chain(&rule.otherwise) {
            match action {
                ActionSpec::RaiseEvent { event, .. } => names.push(("raises", event)),
                ActionSpec::CancelPlus { event, .. } => names.push(("cancels timers of", event)),
                _ => {}
            }
        }
        let mut sources = Vec::new();
        source_names(&rule.when, &mut sources);
        names.extend(sources.into_iter().map(|n| ("tests the source of", n)));
        for (verb, name) in names {
            if detector.lookup(name).is_some() {
                continue;
            }
            if !reported.insert((rule.name.clone(), name.to_string())) {
                continue;
            }
            diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: DiagCode::UnregisteredEvent,
                message: format!(
                    "rule `{}` {verb} event `{name}`, which is not registered in the \
                     detector",
                    rule.name
                ),
                rules: vec![rule.name.clone()],
                roles: vec![],
                events: vec![name.to_string()],
                hint: "register the event (or fix the name): at runtime this action/check \
                       fails and the rule falls through to its Else branch"
                    .into(),
            });
        }
    }

    // ---- SoD vs transitive hierarchy --------------------------------------
    for cover in sod_covers(graph, &graph.ssd) {
        diagnostics.push(Diagnostic {
            severity: Severity::Error,
            code: DiagCode::SodHierarchyConflict,
            message: format!(
                "role `{}` is a common senior of {} roles of SSD set `{}` (cardinality \
                 {}): one assignment authorizes {{{}}} together",
                cover.senior,
                cover.covered.len(),
                cover.set.name,
                cover.set.cardinality,
                cover.covered.join(", ")
            ),
            rules: vec![],
            roles: std::iter::once(cover.senior)
                .chain(cover.covered.iter().copied())
                .map(str::to_string)
                .collect(),
            events: vec![],
            hint: "remove the hierarchy path from the senior to the conflicting roles, \
                   or drop a role from the SSD set"
                .into(),
        });
    }
    for cover in sod_covers(graph, &graph.dsd) {
        diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            code: DiagCode::SodHierarchyConflict,
            message: format!(
                "role `{}` is a common senior of {} roles of DSD set `{}` (cardinality \
                 {}): a user of `{}` is authorized for {{{}}} and only the activation-time \
                 check keeps them apart",
                cover.senior,
                cover.covered.len(),
                cover.set.name,
                cover.set.cardinality,
                cover.senior,
                cover.covered.join(", ")
            ),
            rules: vec![],
            roles: std::iter::once(cover.senior)
                .chain(cover.covered.iter().copied())
                .map(str::to_string)
                .collect(),
            events: vec![],
            hint: "verify the dynamic SoD is intended to rely on activation-time \
                   enforcement alone"
                .into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::instantiate;
    use sentinel::{attach_rule, Rule};
    use snoop::Ts;

    #[test]
    fn xyz_pool_is_fully_covered() {
        let inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
        let mut diags = Vec::new();
        check(&inst.graph, &inst.detector, &inst.pool, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn disabling_the_activation_rule_uncovers_the_operation() {
        let mut inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
        inst.pool.set_enabled("AAR2_PC", false);
        let mut diags = Vec::new();
        check(&inst.graph, &inst.detector, &inst.pool, &mut diags);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::UncoveredOperation)
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].roles, vec!["PC"]);
        assert_eq!(hits[0].severity, Severity::Error);
    }

    #[test]
    fn unregistered_event_references_reported() {
        let mut inst = instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap();
        let ev = inst.detector.lookup(events::CHECK_ACCESS).unwrap();
        attach_rule(
            &mut inst.detector,
            &mut inst.pool,
            Rule::new(
                "BAD",
                ev,
                CondExpr::check(Check::SourceIs("ghost_source".into())),
            )
            .then(vec![ActionSpec::RaiseEvent {
                event: "ghost_event".into(),
                params: vec![],
            }]),
        );
        let mut diags = Vec::new();
        check(&inst.graph, &inst.detector, &inst.pool, &mut diags);
        let bad: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::UnregisteredEvent)
            .collect();
        assert_eq!(bad.len(), 2, "{diags:?}");
        let named: BTreeSet<&str> = bad
            .iter()
            .flat_map(|d| &d.events)
            .map(|s| s.as_str())
            .collect();
        assert_eq!(named, BTreeSet::from(["ghost_event", "ghost_source"]));
    }

    #[test]
    fn common_senior_ssd_conflict_is_an_error() {
        let mut g = PolicyGraph::enterprise_xyz();
        // `Boss` sits above both branches: it authorizes PC and AC together,
        // defeating the purchase-approval SSD set transitively.
        g.role("Boss");
        g.inherits("Boss", "PM");
        g.inherits("Boss", "AM");
        let mut diags = Vec::new();
        // Instantiation would refuse this policy (consistency rejects it);
        // drive the graph-level check directly.
        let d = Detector::new(Ts::ZERO);
        let pool = RulePool::new();
        let mut only_sod = Vec::new();
        check(&g, &d, &pool, &mut diags);
        for x in diags {
            if x.code == DiagCode::SodHierarchyConflict {
                only_sod.push(x);
            }
        }
        assert_eq!(only_sod.len(), 1, "{only_sod:?}");
        assert_eq!(only_sod[0].severity, Severity::Error);
        assert!(only_sod[0].message.contains("Boss"));
        assert!(only_sod[0].roles.contains(&"AC".to_string()));
    }
}
