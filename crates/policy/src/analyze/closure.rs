//! Transitive role-hierarchy closure, shared between the static analyzer
//! and [`crate::consistency`].
//!
//! The per-edge consistency checks only see direct domination; the SoD
//! checks here and in the analyzer need the *transitive* seniority
//! relation: a role authorizes every role reachable downward through the
//! hierarchy, so a common senior of enough members of an SoD set defeats
//! the set even when no two members are directly related.

use crate::graph::{PolicyGraph, SodSpec};
use std::collections::{HashMap, HashSet};

/// Transitive juniors of each role, by name. A role is **not** its own
/// junior; the closure follows senior → junior hierarchy edges.
pub fn juniors_closure(g: &PolicyGraph) -> HashMap<&str, HashSet<&str>> {
    let mut children: HashMap<&str, Vec<&str>> = HashMap::new();
    for (s, j) in &g.hierarchy {
        children.entry(s).or_default().push(j);
    }
    let mut out: HashMap<&str, HashSet<&str>> = HashMap::new();
    for role in g.roles.iter().map(|r| r.name.as_str()) {
        let mut seen = HashSet::new();
        let mut stack = vec![role];
        while let Some(cur) = stack.pop() {
            for &c in children.get(cur).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        out.insert(role, seen);
    }
    out
}

/// One role that transitively covers enough members of an SoD set to
/// defeat its cardinality on its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SodCover<'a> {
    /// The covering senior role.
    pub senior: &'a str,
    /// The defeated set.
    pub set: &'a SodSpec,
    /// The members of the set the senior authorizes (itself included when
    /// it is a member), sorted.
    pub covered: Vec<&'a str>,
    /// Whether the senior is itself a member of the set.
    pub senior_in_set: bool,
}

/// Find every role whose authorized-role closure (itself plus its
/// transitive juniors) contains at least `cardinality` members of one of
/// `sets`. Assumes the hierarchy is acyclic (callers check first).
pub fn sod_covers<'a>(g: &'a PolicyGraph, sets: &'a [SodSpec]) -> Vec<SodCover<'a>> {
    let juniors = juniors_closure(g);
    let mut out = Vec::new();
    for set in sets {
        for role in &g.roles {
            let senior = role.name.as_str();
            let js = juniors.get(senior);
            let mut covered: Vec<&str> = set
                .roles
                .iter()
                .map(String::as_str)
                .filter(|m| *m == senior || js.is_some_and(|s| s.contains(m)))
                .collect();
            if covered.len() >= set.cardinality.max(2) {
                covered.sort_unstable();
                out.push(SodCover {
                    senior,
                    set,
                    covered,
                    senior_in_set: set.roles.contains(senior),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> PolicyGraph {
        let mut g = PolicyGraph::new("t");
        for r in ["top", "mid", "leaf", "other"] {
            g.role(r);
        }
        g.inherits("top", "mid");
        g.inherits("mid", "leaf");
        g
    }

    #[test]
    fn closure_is_transitive() {
        let g = chain();
        let j = juniors_closure(&g);
        assert!(j["top"].contains("leaf"), "grandchild reached");
        assert!(j["top"].contains("mid"));
        assert!(!j["top"].contains("top"), "not its own junior");
        assert!(j["leaf"].is_empty());
        assert!(j["other"].is_empty());
    }

    #[test]
    fn common_senior_covers_sod_set() {
        let mut g = chain();
        g.ssd_set("s", &["mid", "leaf"], 2);
        let covers = sod_covers(&g, &g.ssd);
        // `top` covers both from outside; `mid` covers both as a member.
        let seniors: Vec<&str> = covers.iter().map(|c| c.senior).collect();
        assert!(seniors.contains(&"top"));
        assert!(seniors.contains(&"mid"));
        assert!(!seniors.contains(&"leaf"));
        let top = covers.iter().find(|c| c.senior == "top").unwrap();
        assert!(!top.senior_in_set);
        assert_eq!(top.covered, vec!["leaf", "mid"]);
    }

    #[test]
    fn unrelated_sets_are_not_covered() {
        let mut g = chain();
        g.ssd_set("s", &["leaf", "other"], 2);
        assert!(sod_covers(&g, &g.ssd).is_empty());
    }
}
