//! Rule interference and commutativity certificates.
//!
//! Built on the per-rule effective footprints of [`super::footprint`]:
//! two rules *interfere* when one's effective writes overlap the other's
//! effective reads or (non-commuting) writes — reordering them could
//! change the outcome. The connected components of the interference graph
//! are **commutativity classes**: rules in different classes touch
//! disjoint (or read-only-shared) state and may be dispatched in any
//! order, which licenses
//!
//! * the executor's `assume_independent` fast path (per *event*: every
//!   rule the event triggers must be unable to toggle rule enablement,
//!   even transitively — see [`EffectReport::independent_event_ids`]);
//! * shard placement: [`EffectReport::cross_user_footprints`] lists the
//!   rules whose state genuinely spans users and therefore cannot be
//!   confined to a per-user shard.
//!
//! Everything here is a sound over-approximation: a reported interference
//! may be cut by runtime conditions, but two rules reported independent
//! really commute on every schedule — the model checker in `crates/sim`
//! certifies the underlying footprints against observed executions.

use super::footprint::{direct_footprints, effective_footprints};
use super::termination::build_rule_graph;
use super::{DiagCode, Diagnostic, Severity};
use sentinel::{Footprint, Region, RulePool, Target};
use serde::{Deserialize, Serialize};
use snoop::{Detector, EventId};
use std::collections::{BTreeMap, BTreeSet};

/// The declared effect of one rule: what it may touch on its own and
/// through every synchronous cascade it can start.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleEffect {
    /// Rule name.
    pub rule: String,
    /// Footprint of the rule's own condition and actions.
    pub direct: Footprint,
    /// Direct footprint closed over synchronous trigger edges.
    pub effective: Footprint,
}

/// The effect-analysis half of an analysis report: per-rule footprints,
/// the interference structure they induce, and the independence
/// certificates derived from it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EffectReport {
    /// One entry per live rule, sorted by rule name.
    pub effects: Vec<RuleEffect>,
    /// Commutativity classes: connected components of the interference
    /// graph over effective footprints. Each class is sorted; classes are
    /// sorted by first member. Rules in different classes commute.
    pub classes: Vec<Vec<String>>,
    /// Number of interfering rule pairs (edges of the interference
    /// graph; the graph itself is re-derivable from `effects`).
    pub interference_edges: usize,
    /// Labels of the events whose triggered rules are certified
    /// independence-safe: none of them can reach a rule-toggle write (or
    /// an opaque effect) even transitively, so the executor may snapshot
    /// the triggered set once per occurrence. Sorted.
    pub independent_events: Vec<String>,
}

impl EffectReport {
    /// Look up one rule's declared effect.
    pub fn effect_of(&self, rule: &str) -> Option<&RuleEffect> {
        self.effects
            .binary_search_by(|e| e.rule.as_str().cmp(rule))
            .ok()
            .map(|i| &self.effects[i])
    }

    /// Do two rules interfere (on their effective footprints)? Unknown
    /// rules conservatively interfere.
    pub fn interferes(&self, a: &str, b: &str) -> bool {
        match (self.effect_of(a), self.effect_of(b)) {
            (Some(x), Some(y)) => x.effective.interferes(&y.effective),
            _ => true,
        }
    }

    /// The rules whose effective footprint genuinely spans users — the
    /// placement input for a sharded coordinator (ROADMAP item 2). A rule
    /// stays shardable per-user when everything it touches is keyed by a
    /// single user/session (sessions belong to one user) or is a *read*
    /// of global configuration (role status, SoD sets, temporal windows,
    /// context — replicable to every shard). It spans users when it
    /// consults or maintains a cross-user aggregate (role activation
    /// counters, the denial history), writes global configuration or rule
    /// toggles, touches a per-user family with an `Any` target, or is
    /// opaque. Denial-history *writes* are commutative appends (mergeable
    /// asynchronously) and timer writes are event-plumbing the
    /// coordinator routes anyway; neither forces cross-user placement.
    pub fn cross_user_footprints(&self) -> Vec<String> {
        self.effects
            .iter()
            .filter(|e| spans_users(&e.effective))
            .map(|e| e.rule.clone())
            .collect()
    }

    /// The machine-consumable form of `independent_events`: the event ids
    /// (in `pool`) every one of whose triggered rules — enabled or not,
    /// since a cascade could re-enable them — has a non-opaque effective
    /// footprint free of rule-toggle writes. Rules missing from the
    /// report (a stale report against a regenerated pool) disqualify
    /// their event.
    pub fn independent_event_ids(&self, pool: &RulePool) -> BTreeSet<EventId> {
        let mut by_event: BTreeMap<EventId, bool> = BTreeMap::new();
        for (_, rule) in pool.iter() {
            let ok = self
                .effect_of(&rule.name)
                .is_some_and(|e| toggle_free(&e.effective));
            *by_event.entry(rule.event).or_insert(true) &= ok;
        }
        by_event
            .into_iter()
            .filter_map(|(e, ok)| ok.then_some(e))
            .collect()
    }

    /// One-line summary, e.g.
    /// `23 rules in 4 commutativity classes, 87 interfering pairs, 12 independent events`.
    pub fn summary(&self) -> String {
        format!(
            "{} rules in {} commutativity classes, {} interfering pairs, {} independent events",
            self.effects.len(),
            self.classes.len(),
            self.interference_edges,
            self.independent_events.len()
        )
    }
}

/// May this effective footprint reach a rule-enablement write? (The
/// executor's batch-snapshot fast path is sound only when it cannot.)
fn toggle_free(fp: &Footprint) -> bool {
    !fp.opaque && !fp.writes.contains(&Region::RuleToggles)
}

/// Placement predicate for [`EffectReport::cross_user_footprints`].
fn spans_users(fp: &Footprint) -> bool {
    if fp.opaque {
        return true;
    }
    let per_user_any = |r: &Region| {
        matches!(
            r,
            Region::SessionRoles(Target::Any)
                | Region::UserActivation(Target::Any)
                | Region::Assignments(Target::Any)
        )
    };
    fp.reads.iter().any(|r| {
        matches!(
            r,
            Region::RoleActivation(_) | Region::DenialWindow | Region::Host(_)
        ) || per_user_any(r)
    }) || fp.writes.iter().any(|w| {
        matches!(
            w,
            Region::RoleActivation(_)
                | Region::RoleStatus(_)
                | Region::SodState
                | Region::TemporalWindows
                | Region::ContextVars
                | Region::RuleToggles
                | Region::Host(_)
        ) || per_user_any(w)
    })
}

/// Compute the effect report for a pool, appending an
/// [`DiagCode::OpaqueFootprint`] warning for every custom check/action
/// the effect table does not know (each site flagged where it appears —
/// the report-level dedup collapses repeats).
pub(crate) fn compute(
    detector: &Detector,
    pool: &RulePool,
    diagnostics: &mut Vec<Diagnostic>,
) -> EffectReport {
    let g = build_rule_graph(detector, pool);
    let direct = direct_footprints(pool, &g.names);
    let effective = effective_footprints(&g, &direct);

    for (i, name) in g.names.iter().enumerate() {
        if !direct[i].opaque {
            continue;
        }
        // Host regions appear once per lens (condition reads, action
        // writes) — a custom used in both produces two identical
        // diagnostics here, deduplicated by the report.
        for r in direct[i].reads.iter().chain(direct[i].writes.iter()) {
            if let Region::Host(n) = r {
                diagnostics.push(Diagnostic {
                    severity: Severity::Warning,
                    code: DiagCode::OpaqueFootprint,
                    message: format!(
                        "rule '{name}' has an opaque effect footprint: custom '{n}' is not in the effect table"
                    ),
                    rules: vec![name.clone()],
                    roles: vec![],
                    events: vec![],
                    hint: "register the custom in sentinel::effect so its regions are known; \
                           opaque rules interfere with everything and void independence certificates"
                        .into(),
                });
            }
        }
    }

    // Union-find over interfering pairs; the pair scan is O(n²) footprint
    // comparisons but allocates nothing per pair.
    let n = g.names.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut interference_edges = 0;
    for i in 0..n {
        for j in i + 1..n {
            if effective[i].interferes(&effective[j]) {
                interference_edges += 1;
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(g.names[i].clone());
    }
    let mut classes: Vec<Vec<String>> = groups.into_values().collect();
    // Members are pushed in `names` order (sorted); sort classes by their
    // first member for a stable report.
    classes.sort();

    let mut independent_events: Vec<String> = Vec::new();
    {
        let mut by_event: BTreeMap<EventId, bool> = BTreeMap::new();
        for (_, rule) in pool.iter() {
            let i = g
                .names
                .binary_search(&rule.name)
                .expect("graph names cover the pool");
            *by_event.entry(rule.event).or_insert(true) &= toggle_free(&effective[i]);
        }
        for (event, ok) in by_event {
            if ok {
                independent_events.push(detector.label(event).to_string());
            }
        }
        independent_events.sort();
        independent_events.dedup();
    }

    let effects = g
        .names
        .iter()
        .zip(direct)
        .zip(effective)
        .map(|((rule, direct), effective)| RuleEffect {
            rule: rule.clone(),
            direct,
            effective,
        })
        .collect();
    EffectReport {
        effects,
        classes,
        interference_edges,
        independent_events,
    }
}

/// Is an interfering pair a (non-commuting) write-write conflict, as
/// opposed to read-write only? Opaque counts as write-write.
fn write_write(a: &Footprint, b: &Footprint) -> bool {
    if a.opaque || b.opaque {
        return true;
    }
    a.writes.iter().any(|w| {
        b.writes
            .iter()
            .any(|r| w.overlaps(r) && !w.commutes_on_write())
    })
}

/// Render the interference graph in Graphviz DOT: one node per rule,
/// filled by commutativity class (a palette cycles, so distinct adjacent
/// classes may share a color on huge pools); solid red edges are
/// write-write conflicts, dashed orange edges read-write only. Node
/// tooltips carry the effective footprint. Edges are re-derived from the
/// stored footprints, so the export needs no edge list in the report.
pub fn effect_dot(report: &EffectReport) -> String {
    const PALETTE: [&str; 8] = [
        "lightblue",
        "lightyellow",
        "lightpink",
        "palegreen",
        "lavender",
        "mistyrose",
        "khaki",
        "lightgray",
    ];
    let mut class_of: BTreeMap<&str, usize> = BTreeMap::new();
    for (c, members) in report.classes.iter().enumerate() {
        for m in members {
            class_of.insert(m, c);
        }
    }
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let regions = |rs: &[Region]| {
        rs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out =
        String::from("digraph effects {\n  rankdir=LR;\n  node [shape=box, style=filled];\n");
    for (i, e) in report.effects.iter().enumerate() {
        let color = class_of
            .get(e.rule.as_str())
            .map_or("white", |&c| PALETTE[c % PALETTE.len()]);
        let mut tip = format!(
            "reads: {}; writes: {}",
            regions(&e.effective.reads),
            regions(&e.effective.writes)
        );
        if e.effective.opaque {
            tip.push_str(" (opaque)");
        }
        out.push_str(&format!(
            "  n{i} [label=\"{}\", fillcolor=\"{color}\", tooltip=\"{}\"];\n",
            esc(&e.rule),
            esc(&tip)
        ));
    }
    for i in 0..report.effects.len() {
        for j in i + 1..report.effects.len() {
            let (a, b) = (&report.effects[i].effective, &report.effects[j].effective);
            if !a.interferes(b) {
                continue;
            }
            if write_write(a, b) {
                out.push_str(&format!("  n{i} -> n{j} [dir=none, color=red];\n"));
            } else {
                out.push_str(&format!(
                    "  n{i} -> n{j} [dir=none, color=orange, style=dashed];\n"
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel::{attach_rule, ActionSpec, Check, CondExpr, ParamRef, Rule};
    use snoop::Ts;

    fn assign_rule(name: &str, event: EventId, user: i64) -> Rule {
        Rule::new(name, event, CondExpr::True).then(vec![ActionSpec::AssignUser {
            user: ParamRef::Int(user),
            role: ParamRef::Int(1),
        }])
    }

    #[test]
    fn disjoint_rules_split_into_classes() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let b = d.primitive("b");
        let mut pool = RulePool::new();
        attach_rule(&mut d, &mut pool, assign_rule("r1", a, 1));
        attach_rule(&mut d, &mut pool, assign_rule("r2", b, 2));
        let mut diags = Vec::new();
        let report = compute(&d, &pool, &mut diags);
        assert!(diags.is_empty());
        assert_eq!(report.interference_edges, 0);
        assert_eq!(
            report.classes,
            vec![vec!["r1".to_string()], vec!["r2".to_string()]],
            "distinct users, denial appends commute → rules commute"
        );
        // A denial-window *reader* joins both classes into one.
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new(
                "watch",
                a,
                CondExpr::Check(Check::Custom {
                    name: "denials_at_least".into(),
                    args: vec![ParamRef::Int(3), ParamRef::Int(60)],
                }),
            )
            .then(vec![ActionSpec::Alert("m".into())]),
        );
        let report = compute(&d, &pool, &mut Vec::new());
        assert_eq!(report.classes.len(), 1);
        assert_eq!(report.interference_edges, 2);
        assert!(report.interferes("r1", "watch"));
        assert!(!report.interferes("r1", "r2"));
    }

    #[test]
    fn toggle_writes_disqualify_events_transitively() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let b = d.primitive("b");
        let c = d.primitive("c");
        let mut pool = RulePool::new();
        attach_rule(&mut d, &mut pool, assign_rule("plain", a, 1));
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("toggler", b, CondExpr::True)
                .then(vec![ActionSpec::DisableRule("plain".into())]),
        );
        // `chain` only raises b — its own footprint has no toggle write,
        // but its effective one does.
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("chain", c, CondExpr::True).then(vec![ActionSpec::RaiseEvent {
                event: "b".into(),
                params: vec![],
            }]),
        );
        let report = compute(&d, &pool, &mut Vec::new());
        assert_eq!(report.independent_events, vec!["a".to_string()]);
        let ids = report.independent_event_ids(&pool);
        assert!(ids.contains(&a));
        assert!(!ids.contains(&b));
        assert!(!ids.contains(&c), "toggle reach is transitive");
    }

    #[test]
    fn cross_user_footprints_flag_aggregates_not_per_user_rules() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let mut pool = RulePool::new();
        // Per-user: reads/writes only the triggering user's assignments.
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new(
                "per-user",
                a,
                CondExpr::Check(Check::Assigned {
                    user: ParamRef::param("user"),
                    role: ParamRef::Int(1),
                }),
            )
            .then(vec![ActionSpec::AssignUser {
                user: ParamRef::param("user"),
                role: ParamRef::Int(2),
            }]),
        );
        // Cross-user: consults a role's activation aggregate.
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new(
                "aggregate",
                a,
                CondExpr::Check(Check::RoleActiveAnywhere(ParamRef::Int(1))),
            )
            .then(vec![ActionSpec::Alert("busy".into())]),
        );
        let report = compute(&d, &pool, &mut Vec::new());
        assert_eq!(
            report.cross_user_footprints(),
            vec!["aggregate".to_string()]
        );
    }

    #[test]
    fn opaque_custom_warns_once_per_site_and_dot_renders() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new(
                "mystic",
                a,
                CondExpr::Check(Check::Custom {
                    name: "mystery".into(),
                    args: vec![],
                }),
            )
            .then(vec![ActionSpec::Custom {
                name: "mystery".into(),
                args: vec![],
            }]),
        );
        let mut diags = Vec::new();
        let report = compute(&d, &pool, &mut diags);
        assert_eq!(diags.len(), 2, "one per site (read and write lens)");
        assert_eq!(diags[0], diags[1], "identical — the report dedups them");
        assert_eq!(diags[0].code, DiagCode::OpaqueFootprint);
        assert!(report.effect_of("mystic").unwrap().direct.opaque);
        assert!(report.independent_events.is_empty());
        let dot = effect_dot(&report);
        assert!(dot.starts_with("digraph effects {"));
        assert!(dot.contains("mystic"));
        assert!(dot.contains("(opaque)"));
        assert!(dot.ends_with("}\n"));
    }
}
