//! `owte-analyze`: static analysis of a generated OWTE rule pool.
//!
//! The generator ([`crate::generate`]) compiles a [`PolicyGraph`] into an
//! event graph plus a pool of On-When-Then-Else rules. Because Then/Else
//! actions can raise further events, a pool is a program — and like any
//! program it can loop, contain dead code, or shadow itself. This module
//! proves properties about the pool *before* it is allowed to run:
//!
//! * **Cascade termination** ([`Termination`]): a rule-dependency graph is
//!   built (rule → event it raises → rules triggered by that event or any
//!   composite it feeds) and checked for strongly connected components.
//!   Cycles through synchronous edges mean a single dispatch can cascade
//!   forever ([`DiagCode::RuleLoop`], verdict
//!   [`Termination::PotentialLoop`]); cycles that only close through
//!   delayed (timer) edges terminate per-dispatch and are reported as
//!   [`DiagCode::TimerLoop`] warnings.
//! * **Condition analysis**: each When-clause is abstractly evaluated; a
//!   clause that can never hold makes the rule dead
//!   ([`DiagCode::UnsatisfiableWhen`]), one that always holds makes its
//!   Else branch dead ([`DiagCode::TautologicalWhen`]), and a
//!   higher-priority denying rule with a weaker condition shadows rules
//!   below it ([`DiagCode::ShadowedRule`]).
//! * **Coverage and conflicts**: every guarded RBAC operation must keep at
//!   least one enabled rule ([`DiagCode::UncoveredOperation`]), every
//!   referenced event name must resolve
//!   ([`DiagCode::UnregisteredEvent`]), and SoD sets are checked against
//!   the transitive hierarchy closure
//!   ([`DiagCode::SodHierarchyConflict`]).
//! * **Effect analysis** ([`EffectReport`]): each rule's condition/action
//!   trees are abstractly interpreted into read/write footprints over a
//!   partition of the monitor state ([`sentinel::Region`]), closed over
//!   synchronous cascades, and compared pairwise into an interference
//!   graph whose connected components are commutativity classes. Custom
//!   checks/actions missing from the effect table widen to ⊤ and are
//!   flagged ([`DiagCode::OpaqueFootprint`]). The derived per-event
//!   independence certificates license the executor's
//!   `assume_independent` fast path; `crates/sim` certifies the declared
//!   footprints against every access the executor actually performs.
//!
//! The analysis is a sound over-approximation of reachability (it ignores
//! runtime conditions, so a reported loop may be cut by a condition in
//! practice) and an under-approximation of dead code (only decidable
//! condition fragments are flagged). See DESIGN.md for the full soundness
//! discussion.

pub mod closure;
mod conditions;
mod coverage;
mod footprint;
mod interference;
mod termination;

pub use crate::consistency::Severity;
pub use interference::{effect_dot, EffectReport, RuleEffect};

use crate::generate::Instantiated;
use crate::graph::PolicyGraph;
use sentinel::RulePool;
use serde::{Deserialize, Serialize};
use snoop::Detector;
use std::fmt;

/// Machine-readable classification of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DiagCode {
    /// Rules can cascade forever within one dispatch.
    RuleLoop,
    /// Rules form a loop that only closes through delayed (timer) events.
    TimerLoop,
    /// A When-clause that can never hold.
    UnsatisfiableWhen,
    /// A When-clause that always holds, making the Else branch dead.
    TautologicalWhen,
    /// A rule that can never fire because a higher-priority rule denies
    /// first.
    ShadowedRule,
    /// A guarded RBAC operation with no enabled rule.
    UncoveredOperation,
    /// A rule references an event name missing from the detector.
    UnregisteredEvent,
    /// A common senior defeats an SoD set through the transitive
    /// hierarchy.
    SodHierarchyConflict,
    /// A rule uses a custom check/action the effect table cannot map to
    /// state regions; its footprint widens to ⊤.
    OpaqueFootprint,
}

impl DiagCode {
    /// Stable kebab-case name, used in rendered diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::RuleLoop => "rule-loop",
            DiagCode::TimerLoop => "timer-loop",
            DiagCode::UnsatisfiableWhen => "unsatisfiable-when",
            DiagCode::TautologicalWhen => "tautological-when",
            DiagCode::ShadowedRule => "shadowed-rule",
            DiagCode::UncoveredOperation => "uncovered-operation",
            DiagCode::UnregisteredEvent => "unregistered-event",
            DiagCode::SodHierarchyConflict => "sod-hierarchy-conflict",
            DiagCode::OpaqueFootprint => "opaque-footprint",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding, anchored to the rules, roles and events it is
/// about so tools can navigate from the diagnostic to the artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How bad ([`Severity::Error`] findings block a gated generation).
    pub severity: Severity,
    /// Machine-readable classification.
    pub code: DiagCode,
    /// Human-readable description.
    pub message: String,
    /// Names of the rules involved (cycle members, shadow pairs, …).
    pub rules: Vec<String>,
    /// Names of the roles involved.
    pub roles: Vec<String>,
    /// Names of the events involved.
    pub events: Vec<String>,
    /// A suggested fix.
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}[{}]: {}", self.code, self.message)?;
        if !self.hint.is_empty() {
            write!(f, "\n    hint: {}", self.hint)?;
        }
        Ok(())
    }
}

/// The cascade-termination verdict for a rule pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// No synchronous rule cycle exists: every dispatch finishes without
    /// hitting the executor's cascade-depth guard, regardless of state.
    ProvedTerminating,
    /// At least one synchronous rule cycle exists; each cycle is a rule
    /// path `[r1, r2, …, r1]`.
    PotentialLoop {
        /// The offending cycles, as rule-name paths closing on their first
        /// element.
        cycles: Vec<Vec<String>>,
    },
}

impl Termination {
    /// Did the proof go through?
    pub fn is_proved(&self) -> bool {
        matches!(self, Termination::ProvedTerminating)
    }
}

/// Everything the analyzer found out about one pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// The cascade-termination verdict.
    pub termination: Termination,
    /// All findings, errors first, in a stable order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of live rules analyzed.
    pub rules: usize,
    /// Number of registered events in the detector.
    pub events: usize,
    /// Proved upper bound on the synchronous cascade depth any dispatch
    /// can reach (in rule-to-rule trigger edges; `Some(0)` = no rule ever
    /// triggers another synchronously). `None` when a synchronous cycle
    /// exists, i.e. exactly when termination is [`Termination::PotentialLoop`]
    /// with a synchronous cycle. The executor's observed `max_depth` must
    /// never exceed this bound; the model checker asserts it.
    #[serde(default)]
    pub max_sync_depth: Option<usize>,
    /// Per-rule effect footprints, interference structure and
    /// independence certificates.
    #[serde(default)]
    pub effects: EffectReport,
}

impl AnalysisReport {
    /// Number of `Error`-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// No findings at all (not even warnings)?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Shorthand for [`Termination::is_proved`].
    pub fn proved_terminating(&self) -> bool {
        self.termination.is_proved()
    }

    /// One-line verdict, e.g.
    /// `PROVED-TERMINATING — 23 rules over 57 events, 0 errors, 0 warnings`.
    pub fn summary(&self) -> String {
        let verdict = match &self.termination {
            Termination::ProvedTerminating => "PROVED-TERMINATING".to_string(),
            Termination::PotentialLoop { cycles } => {
                format!("POTENTIAL-LOOP ({} cycles)", cycles.len())
            }
        };
        format!(
            "{verdict} — {} rules over {} events, {} errors, {} warnings",
            self.rules,
            self.events,
            self.error_count(),
            self.warning_count()
        )
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rule-pool analysis: {}", self.summary())?;
        for d in &self.diagnostics {
            writeln!(f, "  {}", d.to_string().replace('\n', "\n  "))?;
        }
        Ok(())
    }
}

/// Analyze an instantiated policy.
pub fn analyze(inst: &Instantiated) -> AnalysisReport {
    analyze_parts(&inst.graph, &inst.detector, &inst.pool)
}

/// Analyze the parts directly (useful mid-regeneration, before an
/// [`Instantiated`] is assembled).
pub fn analyze_parts(graph: &PolicyGraph, detector: &Detector, pool: &RulePool) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    let termination = termination::check(detector, pool, &mut diagnostics);
    let max_sync_depth =
        termination::max_sync_depth(&termination::build_rule_graph(detector, pool));
    conditions::check(detector, pool, &mut diagnostics);
    coverage::check(graph, detector, pool, &mut diagnostics);
    let effects = interference::compute(detector, pool, &mut diagnostics);
    // Deterministic order over *every* field, then collapse duplicates —
    // the same finding can be reached through several closure paths (or,
    // for opaque footprints, several sites in one rule).
    diagnostics.sort_by(|a, b| {
        (
            a.severity, a.code, &a.message, &a.rules, &a.events, &a.roles, &a.hint,
        )
            .cmp(&(
                b.severity, b.code, &b.message, &b.rules, &b.events, &b.roles, &b.hint,
            ))
    });
    diagnostics.dedup();
    AnalysisReport {
        termination,
        diagnostics,
        rules: pool.len(),
        events: detector.event_ids().count(),
        max_sync_depth,
        effects,
    }
}

/// Render the rule-dependency graph in Graphviz DOT. Solid edges are
/// synchronous (the raised event can trigger the target rule within the
/// same dispatch); dashed edges only fire through a later timer.
pub fn rule_dependency_dot(detector: &Detector, pool: &RulePool) -> String {
    let g = termination::build_rule_graph(detector, pool);
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("digraph rules {\n  rankdir=LR;\n  node [shape=box];\n");
    for (i, name) in g.names.iter().enumerate() {
        out.push_str(&format!("  n{i} [label=\"{}\"];\n", esc(name)));
    }
    for (from, outs) in g.edges.iter().enumerate() {
        for &(to, sync) in outs {
            if sync {
                out.push_str(&format!("  n{from} -> n{to};\n"));
            } else {
                out.push_str(&format!(
                    "  n{from} -> n{to} [style=dashed, label=\"delayed\"];\n"
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::instantiate;
    use snoop::Ts;

    fn xyz() -> Instantiated {
        instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap()
    }

    #[test]
    fn xyz_report_is_clean_and_proved() {
        let report = analyze(&xyz());
        assert!(report.is_clean(), "{report}");
        assert!(report.proved_terminating());
        assert_eq!(report.rules, 5 * 4 + 3);
        assert_eq!(report.error_count(), 0);
        assert!(report.summary().starts_with("PROVED-TERMINATING"));
    }

    #[test]
    fn report_orders_errors_before_warnings() {
        let mut inst = xyz();
        // Uncover an operation (Error) and shadow nothing; then check a
        // Warning sorts after it by disabling a rule that also leaves a
        // warning-free pool — instead inject a tautological rule.
        inst.pool.set_enabled("AAR2_PC", false);
        let ev = inst.detector.lookup(crate::events::CHECK_ACCESS).unwrap();
        sentinel::attach_rule(
            &mut inst.detector,
            &mut inst.pool,
            sentinel::Rule::new("TAUT", ev, sentinel::CondExpr::True)
                .otherwise(vec![sentinel::ActionSpec::RaiseError("dead".into())]),
        );
        let report = analyze(&inst);
        assert!(report.error_count() >= 1);
        assert!(report.warning_count() >= 1);
        let first_warning = report
            .diagnostics
            .iter()
            .position(|d| d.severity == Severity::Warning)
            .unwrap();
        assert!(report.diagnostics[..first_warning]
            .iter()
            .all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn display_renders_tag_code_and_hint() {
        let d = Diagnostic {
            severity: Severity::Error,
            code: DiagCode::RuleLoop,
            message: "m".into(),
            rules: vec![],
            roles: vec![],
            events: vec![],
            hint: "h".into(),
        };
        assert_eq!(d.to_string(), "error[rule-loop]: m\n    hint: h");
    }

    #[test]
    fn dot_export_names_rules() {
        let inst = xyz();
        let dot = rule_dependency_dot(&inst.detector, &inst.pool);
        assert!(dot.starts_with("digraph rules {"));
        assert!(dot.contains("AAR2_PC"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn xyz_effects_cover_pool_and_certify_independence() {
        let inst = xyz();
        let report = analyze(&inst);
        let fx = &report.effects;
        assert_eq!(fx.effects.len(), report.rules);
        assert!(
            fx.effects.iter().all(|e| !e.direct.opaque),
            "every generated custom is in the effect table"
        );
        assert!(!fx.classes.is_empty());
        assert!(
            !fx.independent_events.is_empty(),
            "no XYZ rule toggles rules, so events certify: {}",
            fx.summary()
        );
        assert!(!fx.independent_event_ids(&inst.pool).is_empty());
        // Activation rules maintain cross-user role aggregates; the
        // check-access rule reads only one session's state.
        let cross = fx.cross_user_footprints();
        assert!(cross.iter().any(|r| r.starts_with("AAR")), "{cross:?}");
        assert!(!cross.contains(&"CA".to_string()), "{cross:?}");
        // The dot export renders every rule.
        let dot = effect_dot(fx);
        assert!(dot.contains("AAR2_PC") && dot.contains("fillcolor"));
    }

    #[test]
    fn duplicate_opaque_diagnostics_are_deduped() {
        let mut inst = xyz();
        let ev = inst.detector.lookup(crate::events::CHECK_ACCESS).unwrap();
        // The same unknown custom in When and Then flags the rule via two
        // sites (condition walk and action walk) — one diagnostic must
        // survive.
        sentinel::attach_rule(
            &mut inst.detector,
            &mut inst.pool,
            sentinel::Rule::new(
                "OPQ",
                ev,
                sentinel::CondExpr::check(sentinel::Check::Custom {
                    name: "mystery".into(),
                    args: vec![],
                }),
            )
            .then(vec![sentinel::ActionSpec::Custom {
                name: "mystery".into(),
                args: vec![],
            }]),
        );
        let report = analyze(&inst);
        let opaque: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::OpaqueFootprint)
            .collect();
        assert_eq!(opaque.len(), 1, "{opaque:?}");
        assert_eq!(opaque[0].rules, vec!["OPQ".to_string()]);
        assert!(report.effects.effect_of("OPQ").unwrap().direct.opaque);
    }

    #[test]
    fn report_serializes_round_trip() {
        let report = analyze(&xyz());
        let json = serde_json::to_string(&report).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
