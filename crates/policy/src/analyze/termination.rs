//! Cascade-termination proof over the rule-dependency graph.
//!
//! An OWTE rule depends on another when an event its Then/Else actions
//! raise can — directly or through composite-operator nodes of the Snoop
//! event graph — trigger the other rule. If that dependency relation is
//! acyclic when restricted to *synchronous* event-graph edges, every
//! dispatch terminates: each cascade step consumes one edge of a DAG.
//! Cycles that are only closed through *delayed* edges (PLUS / PERIODIC
//! timers) cannot recurse within a dispatch — they are reported as timer
//! loops (warnings), not termination failures.

use super::{Diagnostic, Severity, Termination};
use sentinel::{ActionSpec, RulePool};
use snoop::Detector;
use std::collections::HashMap;

/// The rule-dependency graph: one node per live rule, edges labelled with
/// whether every event-graph path behind them crosses a delayed operator.
pub(crate) struct RuleGraph {
    /// Rule names, index-aligned with `edges`.
    pub names: Vec<String>,
    /// Adjacency: `edges[i]` holds `(j, sync)` when rule `i` raises an
    /// event that can trigger rule `j`; `sync` is true when the trigger
    /// can happen within the same dispatch.
    pub edges: Vec<Vec<(usize, bool)>>,
}

/// Build the dependency graph. Disabled rules are included: runtime
/// actions can re-enable them, so a proof that ignored them would not
/// survive an `EnableRule` / `EnableRuleClass` action.
pub(crate) fn build_rule_graph(detector: &Detector, pool: &RulePool) -> RuleGraph {
    let mut names: Vec<String> = pool.iter().map(|(_, r)| r.name.clone()).collect();
    names.sort_unstable();
    let index: HashMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    let mut edges: Vec<Vec<(usize, bool)>> = vec![Vec::new(); names.len()];
    for (_, rule) in pool.iter() {
        let from = index[rule.name.as_str()];
        for action in rule.then.iter().chain(&rule.otherwise) {
            let ActionSpec::RaiseEvent { event, .. } = action else {
                continue;
            };
            let Some(eid) = detector.lookup(event) else {
                // Unregistered: reported by the coverage pass; no edge.
                continue;
            };
            let sync_reach = detector.ancestor_closure(eid, true);
            for anc in detector.ancestor_closure(eid, false) {
                let sync = sync_reach.contains(&anc);
                for &rid in pool.triggered_by(anc) {
                    let target = pool.get(rid).expect("indexed rule exists");
                    let to = index[target.name.as_str()];
                    let edge = &mut edges[from];
                    // Keep the strongest label per (from, to) pair.
                    match edge.iter_mut().find(|(t, _)| *t == to) {
                        Some((_, s)) => *s = *s || sync,
                        None => edge.push((to, sync)),
                    }
                }
            }
        }
    }
    for e in &mut edges {
        e.sort_unstable();
    }
    RuleGraph { names, edges }
}

/// Iterative Tarjan SCC. Returns the components in reverse topological
/// order; each is a sorted list of node indices.
fn sccs(edges: &[Vec<(usize, bool)>], sync_only: bool) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            let ci = frame.1;
            frame.1 += 1;
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succ = edges[v]
                .iter()
                .filter(|(_, sync)| !sync_only || *sync)
                .map(|(t, _)| *t)
                .nth(ci);
            match succ {
                Some(w) if index[w] == usize::MAX => frames.push((w, 0)),
                Some(w) => {
                    if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                }
                None => {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
    }
    out
}

/// Does node `v` have an edge to itself (respecting `sync_only`)?
fn self_loop(edges: &[Vec<(usize, bool)>], v: usize, sync_only: bool) -> bool {
    edges[v]
        .iter()
        .any(|(t, sync)| *t == v && (!sync_only || *sync))
}

/// A concrete cycle `start → … → start` inside `members`, as a rule-name
/// path, found by BFS (shortest cycle through `start`). `start` must lie
/// on a cycle of the restricted subgraph; if it somehow does not, the
/// member names are returned as a degenerate path.
fn cycle_path(g: &RuleGraph, members: &[usize], sync_only: bool, start: usize) -> Vec<String> {
    use std::collections::VecDeque;
    let in_set = |x: usize| members.binary_search(&x).is_ok();
    let allowed = |t: usize, sync: bool| in_set(t) && (!sync_only || sync);
    let close = |rev: Vec<usize>| {
        let mut names = vec![g.names[start].clone()];
        names.extend(rev.into_iter().rev().map(|i| g.names[i].clone()));
        names.push(g.names[start].clone());
        names
    };

    let mut parent: Vec<Option<usize>> = vec![None; g.edges.len()];
    let mut queue = VecDeque::new();
    for &(t, sync) in &g.edges[start] {
        if !allowed(t, sync) {
            continue;
        }
        if t == start {
            return close(Vec::new());
        }
        if parent[t].is_none() {
            parent[t] = Some(start);
            queue.push_back(t);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &(t, sync) in &g.edges[v] {
            if !allowed(t, sync) {
                continue;
            }
            if t == start {
                let mut rev = Vec::new();
                let mut cur = v;
                loop {
                    rev.push(cur);
                    match parent[cur] {
                        Some(p) if p != start => cur = p,
                        _ => break,
                    }
                }
                return close(rev);
            }
            if parent[t].is_none() {
                parent[t] = Some(v);
                queue.push_back(t);
            }
        }
    }
    let mut names: Vec<String> = members.iter().map(|&i| g.names[i].clone()).collect();
    names.push(g.names[start].clone());
    names
}

/// Longest chain of synchronous rule-to-rule triggers, counted in edges:
/// a rule running at cascade depth `d` can only have been reached through
/// `d` synchronous raises, so this bounds the executor's observable
/// `max_depth` for any run. `Some(0)` means no rule can synchronously
/// trigger another; `None` means a synchronous cycle exists and no finite
/// bound holds.
pub(crate) fn max_sync_depth(g: &RuleGraph) -> Option<usize> {
    let n = g.edges.len();
    let mut indeg = vec![0usize; n];
    for outs in &g.edges {
        for &(t, sync) in outs {
            if sync {
                indeg[t] += 1;
            }
        }
    }
    // Kahn's algorithm over the sync-only subgraph: longest-path DP while
    // peeling indegree-zero nodes. A self-loop or larger sync cycle keeps
    // its nodes' indegrees positive, so `seen != n` detects cycles.
    let mut depth = vec![0usize; n];
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &(t, sync) in &g.edges[v] {
            if !sync {
                continue;
            }
            depth[t] = depth[t].max(depth[v] + 1);
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    if seen != n {
        return None;
    }
    Some(depth.into_iter().max().unwrap_or(0))
}

/// Run the termination analysis: compute the verdict and append loop
/// diagnostics.
pub(crate) fn check(
    detector: &Detector,
    pool: &RulePool,
    diagnostics: &mut Vec<Diagnostic>,
) -> Termination {
    let g = build_rule_graph(detector, pool);
    let mut cycles: Vec<Vec<String>> = Vec::new();

    // A node lies on a synchronous cycle when its sync-only SCC is
    // non-trivial or it raises its own triggering event synchronously.
    let mut on_sync_cycle = vec![false; g.edges.len()];
    for sc in sccs(&g.edges, true) {
        if sc.len() > 1 {
            for &v in &sc {
                on_sync_cycle[v] = true;
            }
        }
    }
    for v in 0..g.edges.len() {
        if self_loop(&g.edges, v, true) {
            on_sync_cycle[v] = true;
        }
    }

    for comp in sccs(&g.edges, false) {
        let cyclic = comp.len() > 1 || self_loop(&g.edges, comp[0], false);
        if !cyclic {
            continue;
        }
        let sync_start = comp.iter().copied().find(|&v| on_sync_cycle[v]);
        let names: Vec<String> = comp.iter().map(|&i| g.names[i].clone()).collect();
        if let Some(start) = sync_start {
            let path = cycle_path(&g, &comp, true, start);
            diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: super::DiagCode::RuleLoop,
                message: format!(
                    "rules can cascade forever within one dispatch: {}",
                    path.join(" -> ")
                ),
                rules: names,
                roles: vec![],
                events: vec![],
                hint: "break the cycle: make one rule raise its event through a PLUS delay, \
                       or guard it with a condition that the cascade falsifies"
                    .into(),
            });
            cycles.push(path);
        } else {
            let path = cycle_path(&g, &comp, false, comp[0]);
            diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                code: super::DiagCode::TimerLoop,
                message: format!(
                    "rules form a loop through delayed (timer) events: {}",
                    path.join(" -> ")
                ),
                rules: names,
                roles: vec![],
                events: vec![],
                hint: "each dispatch terminates, but the rules re-trigger each other \
                       indefinitely over time; verify the conditions eventually falsify"
                    .into(),
            });
        }
    }

    if cycles.is_empty() {
        Termination::ProvedTerminating
    } else {
        Termination::PotentialLoop { cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel::{attach_rule, CondExpr, Rule};
    use snoop::{Dur, EventExpr, Ts};

    fn raise(event: &str) -> ActionSpec {
        ActionSpec::RaiseEvent {
            event: event.into(),
            params: vec![],
        }
    }

    #[test]
    fn acyclic_pool_proved_terminating() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let b = d.primitive("b");
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("r1", a, CondExpr::True).then(vec![raise("b")]),
        );
        attach_rule(&mut d, &mut pool, Rule::new("r2", b, CondExpr::True));
        let mut diags = Vec::new();
        assert_eq!(check(&d, &pool, &mut diags), Termination::ProvedTerminating);
        assert!(diags.is_empty());
        assert_eq!(
            max_sync_depth(&build_rule_graph(&d, &pool)),
            Some(1),
            "r1 -> r2 is one synchronous trigger edge"
        );
    }

    #[test]
    fn max_sync_depth_on_longer_chain_and_cycles() {
        // a chain r1 -> r2 -> r3 (depth 2) plus an unrelated leaf rule.
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let b = d.primitive("b");
        let c = d.primitive("c");
        let lone = d.primitive("lone");
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("r1", a, CondExpr::True).then(vec![raise("b")]),
        );
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("r2", b, CondExpr::True).then(vec![raise("c")]),
        );
        attach_rule(&mut d, &mut pool, Rule::new("r3", c, CondExpr::True));
        attach_rule(&mut d, &mut pool, Rule::new("leaf", lone, CondExpr::True));
        assert_eq!(max_sync_depth(&build_rule_graph(&d, &pool)), Some(2));

        // adding a synchronous self-loop destroys the bound.
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("echo", c, CondExpr::True).then(vec![raise("c")]),
        );
        assert_eq!(max_sync_depth(&build_rule_graph(&d, &pool)), None);
    }

    #[test]
    fn self_raising_rule_is_a_loop() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("echo", a, CondExpr::True).then(vec![raise("a")]),
        );
        let mut diags = Vec::new();
        let verdict = check(&d, &pool, &mut diags);
        assert!(matches!(verdict, Termination::PotentialLoop { .. }));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, super::super::DiagCode::RuleLoop);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("echo -> echo"));
    }

    #[test]
    fn two_rule_cycle_reported_as_path() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let b = d.primitive("b");
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("ping", a, CondExpr::True).then(vec![raise("b")]),
        );
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("pong", b, CondExpr::True).otherwise(vec![raise("a")]),
        );
        let mut diags = Vec::new();
        let verdict = check(&d, &pool, &mut diags);
        let Termination::PotentialLoop { cycles } = verdict else {
            panic!("expected loop");
        };
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3, "a -> b -> a closes the path");
    }

    #[test]
    fn plus_delayed_cycle_is_only_a_warning() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let plus = d
            .define(&EventExpr::plus(EventExpr::named("a"), Dur::from_secs(5)))
            .unwrap();
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("again", plus, CondExpr::True).then(vec![raise("a")]),
        );
        let _ = a;
        let mut diags = Vec::new();
        assert_eq!(
            check(&d, &pool, &mut diags),
            Termination::ProvedTerminating,
            "delayed cycles do not break per-dispatch termination"
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, super::super::DiagCode::TimerLoop);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(
            max_sync_depth(&build_rule_graph(&d, &pool)),
            Some(0),
            "a purely delayed cycle never deepens a single dispatch"
        );
    }

    #[test]
    fn composite_operators_carry_dependencies() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let seq = d
            .define(&EventExpr::seq(EventExpr::named("a"), EventExpr::prim("b")))
            .unwrap();
        let mut pool = RulePool::new();
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("through_seq", seq, CondExpr::True).then(vec![raise("a")]),
        );
        let _ = a;
        // through_seq raises `a`, `a` feeds SEQ(a,b), SEQ triggers
        // through_seq: a synchronous cycle through a composite node.
        let mut diags = Vec::new();
        assert!(matches!(
            check(&d, &pool, &mut diags),
            Termination::PotentialLoop { .. }
        ));
        assert_eq!(diags[0].severity, Severity::Error);
    }
}
