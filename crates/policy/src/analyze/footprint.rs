//! Per-rule effect footprints: which state regions each rule can read or
//! write, directly and through its synchronous cascades.
//!
//! The *direct* footprint of a rule is a path-insensitive walk of its
//! When/Then/Else trees through the shared region mapping in
//! [`sentinel::effect`] (literals stay concrete ids, occurrence
//! parameters widen to one-unknown-entity, unknown custom checks/actions
//! widen to ⊤). The *effective* footprint closes the direct one over the
//! synchronous edges of the rule-dependency graph
//! ([`super::termination::build_rule_graph`]): if rule A can raise an
//! event that triggers rule B within the same dispatch, everything B may
//! touch is attributed to A as well. Interference and the executor's
//! independence certificates are judged on effective footprints — a rule
//! is accountable for its whole cascade.

use super::termination::RuleGraph;
use sentinel::{action_footprint, cond_footprint, static_target, Footprint, RulePool};

/// Direct footprint of every rule, index-aligned with `names` (the
/// sorted rule-name order of [`RuleGraph`]).
pub(crate) fn direct_footprints(pool: &RulePool, names: &[String]) -> Vec<Footprint> {
    let mut out = vec![Footprint::empty(); names.len()];
    for (_, rule) in pool.iter() {
        let i = names
            .binary_search(&rule.name)
            .expect("graph names cover the pool");
        let mut fp = cond_footprint(&rule.when, &mut static_target);
        for action in rule.then.iter().chain(&rule.otherwise) {
            fp.absorb(action_footprint(action, static_target));
        }
        fp.normalize();
        out[i] = fp;
    }
    out
}

/// Close direct footprints over synchronous trigger edges: the effective
/// footprint of rule `i` is the union of the direct footprints of every
/// rule reachable from `i` through sync edges (including `i` itself).
///
/// Sound even on cyclic graphs (the DFS memoizes visited nodes per
/// source), though a synchronous cycle will already have failed the
/// termination gate.
pub(crate) fn effective_footprints(g: &RuleGraph, direct: &[Footprint]) -> Vec<Footprint> {
    let n = direct.len();
    let mut out = Vec::with_capacity(n);
    for start in 0..n {
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        let mut fp = Footprint::empty();
        while let Some(v) = stack.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            fp.absorb(direct[v].clone());
            for &(t, sync) in &g.edges[v] {
                if sync && !seen[t] {
                    stack.push(t);
                }
            }
        }
        fp.normalize();
        out.push(fp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::termination::build_rule_graph;
    use super::*;
    use sentinel::{attach_rule, ActionSpec, CondExpr, ParamRef, Region, Rule, Target};
    use snoop::{Detector, Ts};

    #[test]
    fn effective_footprint_closes_over_sync_cascade() {
        let mut d = Detector::new(Ts::ZERO);
        let a = d.primitive("a");
        let b = d.primitive("b");
        let mut pool = RulePool::new();
        // r1 only raises `b`; r2 assigns a user. Effectively r1 writes
        // what r2 writes.
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("r1", a, CondExpr::True).then(vec![ActionSpec::RaiseEvent {
                event: "b".into(),
                params: vec![],
            }]),
        );
        attach_rule(
            &mut d,
            &mut pool,
            Rule::new("r2", b, CondExpr::True).then(vec![ActionSpec::AssignUser {
                user: ParamRef::param("user"),
                role: ParamRef::Int(1),
            }]),
        );
        let g = build_rule_graph(&d, &pool);
        let direct = direct_footprints(&pool, &g.names);
        let eff = effective_footprints(&g, &direct);
        let i1 = g.names.iter().position(|n| n == "r1").unwrap();
        assert!(
            !direct[i1]
                .writes
                .contains(&Region::Assignments(Target::Param)),
            "direct footprint of r1 has no assignment write"
        );
        assert!(
            eff[i1].writes.contains(&Region::Assignments(Target::Param)),
            "effective footprint of r1 absorbs r2's: {:?}",
            eff[i1]
        );
    }
}
