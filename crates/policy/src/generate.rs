//! Rule synthesis: compile a [`PolicyGraph`] into the event graph, the OWTE
//! rule pool and the instantiated RBAC monitor — §4 and §5 of the paper.
//!
//! "OWTE rules shown … are **not** created manually by administrators":
//! this module is the generator. Per role it emits the activation rule
//! variant the role's flags call for (AAR₁ core / AAR₂ hierarchies / AAR₃
//! DSD / AAR₄ DSD+hierarchies), cardinality cascades (Rule 4), Δ-expiry
//! PLUS rules (Rule 7), enabling/disabling rules with disabling-time SoD
//! guards (Rule 6), post-condition CFD pairs (Rule 8), prerequisite
//! cascades (Rule 9), plus the globalized check-access (Rule 5),
//! administrative, and active-security rules.

use crate::consistency::{self, Issue, Severity};
use crate::events;
use crate::graph::{PolicyGraph, RoleNode, SecurityAction};
use gtrbac::{
    BoundedPeriodic, DisablingTimeSod, PeriodicWindow, PostConditionCfd, PrerequisiteActivation,
    TemporalConstraints, TemporalPolicies,
};
use rbac::{ObjId, OpId, RoleId, UserId};
use sentinel::{
    attach_rule, ActionSpec, Check, CondExpr, Granularity, ParamRef, Rule, RuleClass, RulePool,
};
use serde::{Deserialize, Serialize};
use snoop::{CalendarExpr, Detector, DetectorError, EventExpr, Ts};
use std::collections::HashMap;
use std::fmt;

/// Name → id maps produced by instantiation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Binding {
    /// Role names to monitor ids.
    pub roles: HashMap<String, RoleId>,
    /// User names to monitor ids.
    pub users: HashMap<String, UserId>,
    /// Operation names to ids.
    pub ops: HashMap<String, OpId>,
    /// Object names to ids.
    pub objs: HashMap<String, ObjId>,
    /// Reverse map for event naming.
    pub role_names: HashMap<RoleId, String>,
}

impl Binding {
    /// Role id by name (must exist after instantiation).
    pub fn role(&self, name: &str) -> RoleId {
        self.roles[name]
    }

    /// User id by name.
    pub fn user(&self, name: &str) -> UserId {
        self.users[name]
    }

    /// Role name by id.
    pub fn role_name(&self, id: RoleId) -> Option<&str> {
        self.role_names.get(&id).map(String::as_str)
    }
}

/// Rule-pool composition statistics (the E2 experiment's dependent
/// variable: roles in → rules out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenStats {
    /// Activation rules (AAR₁…AAR₄).
    pub activation: usize,
    /// Cardinality cascades (CC).
    pub cardinality: usize,
    /// Deactivation rules (DAR).
    pub deactivation: usize,
    /// Δ-expiry and Δ-cancel rules.
    pub duration: usize,
    /// Enable/disable rules (calendar + request paths).
    pub enabling: usize,
    /// CFD / prerequisite dependency rules.
    pub dependency: usize,
    /// Context-aware re-validation rules.
    pub context: usize,
    /// Globalized check-access rules.
    pub check_access: usize,
    /// Administrative rules.
    pub administrative: usize,
    /// Active-security rules.
    pub security: usize,
    /// Event-graph nodes in the detector.
    pub event_nodes: usize,
}

impl GenStats {
    /// Total rules generated.
    pub fn total_rules(&self) -> usize {
        self.activation
            + self.cardinality
            + self.deactivation
            + self.duration
            + self.enabling
            + self.dependency
            + self.context
            + self.check_access
            + self.administrative
            + self.security
    }
}

/// Why instantiation failed.
#[derive(Debug)]
pub enum InstantiateError {
    /// The policy has consistency errors.
    Inconsistent(Vec<Issue>),
    /// The monitor rejected the policy while materializing it.
    Rbac(rbac::RbacError),
    /// Event-graph construction failed.
    Detector(DetectorError),
    /// The verification gate refused the generated pool
    /// (see [`instantiate_verified`]).
    Rejected(Vec<crate::analyze::Diagnostic>),
}

impl fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstantiateError::Inconsistent(issues) => {
                writeln!(f, "policy is inconsistent:")?;
                for i in issues {
                    writeln!(f, "  {i}")?;
                }
                Ok(())
            }
            InstantiateError::Rbac(e) => write!(f, "monitor rejected policy: {e}"),
            InstantiateError::Detector(e) => write!(f, "event graph error: {e}"),
            InstantiateError::Rejected(diags) => {
                writeln!(f, "generated pool failed verification:")?;
                for d in diags {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for InstantiateError {}

impl From<rbac::RbacError> for InstantiateError {
    fn from(e: rbac::RbacError) -> Self {
        InstantiateError::Rbac(e)
    }
}

impl From<DetectorError> for InstantiateError {
    fn from(e: DetectorError) -> Self {
        InstantiateError::Detector(e)
    }
}

/// A fully instantiated policy: monitor state, event graph, rule pool and
/// temporal constraint data, ready to be driven by an engine.
///
/// Serializable as a unit so the durable engine can snapshot a running
/// policy instantiation and restore it without re-generating rules.
#[derive(Clone, Serialize, Deserialize)]
pub struct Instantiated {
    /// The policy it was generated from.
    pub graph: PolicyGraph,
    /// The event detector (graph + clock + timers).
    pub detector: Detector,
    /// The generated rule pool.
    pub pool: RulePool,
    /// The instantiated reference monitor.
    pub system: rbac::System,
    /// Temporal enabling/duration policies.
    pub temporal: TemporalPolicies,
    /// Dependency/time-SoD constraints.
    pub constraints: TemporalConstraints,
    /// Name ↔ id bindings.
    pub binding: Binding,
    /// Generation statistics.
    pub stats: GenStats,
}

impl std::fmt::Debug for Instantiated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instantiated")
            .field("policy", &self.graph.name)
            .field("events", &self.detector.node_count())
            .field("rules", &self.pool.len())
            .finish_non_exhaustive()
    }
}

/// Compile `graph` into an [`Instantiated`] policy with the detector clock
/// starting at `start`.
pub fn instantiate(graph: &PolicyGraph, start: Ts) -> Result<Instantiated, InstantiateError> {
    let issues: Vec<Issue> = consistency::check(graph)
        .into_iter()
        .filter(|i| i.severity == Severity::Error)
        .collect();
    if !issues.is_empty() {
        return Err(InstantiateError::Inconsistent(issues));
    }

    // ---- 1. materialize the monitor -------------------------------------
    let mut system = rbac::System::new();
    let mut binding = Binding::default();
    for r in &graph.roles {
        let id = system.add_role(&r.name)?;
        binding.roles.insert(r.name.clone(), id);
        binding.role_names.insert(id, r.name.clone());
    }
    for u in &graph.users {
        let id = system.add_user(&u.name)?;
        binding.users.insert(u.name.clone(), id);
    }
    for p in &graph.permissions {
        let op = match binding.ops.get(&p.op) {
            Some(&id) => id,
            None => {
                let id = system.add_operation(&p.op)?;
                binding.ops.insert(p.op.clone(), id);
                id
            }
        };
        let obj = match binding.objs.get(&p.obj) {
            Some(&id) => id,
            None => {
                let id = system.add_object(&p.obj)?;
                binding.objs.insert(p.obj.clone(), id);
                id
            }
        };
        system.perm_id(op, obj)?;
    }
    for (senior, junior) in &graph.hierarchy {
        system.add_inheritance(binding.role(senior), binding.role(junior))?;
    }
    for s in &graph.ssd {
        let roles: Vec<RoleId> = s.roles.iter().map(|r| binding.role(r)).collect();
        system.create_ssd_set(&s.name, &roles, s.cardinality)?;
    }
    for s in &graph.dsd {
        let roles: Vec<RoleId> = s.roles.iter().map(|r| binding.role(r)).collect();
        system.create_dsd_set(&s.name, &roles, s.cardinality)?;
    }
    for (perm, role) in &graph.grants {
        let p = graph
            .permissions
            .iter()
            .find(|x| x.name == *perm)
            .expect("consistency checked");
        system.grant_permission(binding.role(role), binding.ops[&p.op], binding.objs[&p.obj])?;
    }
    for (user, role) in &graph.assignments {
        system.assign_user(binding.user(user), binding.role(role))?;
    }
    for r in &graph.roles {
        if let Some(cap) = r.max_active_users {
            system.set_role_activation_cap(binding.role(&r.name), Some(cap))?;
        }
    }
    for u in &graph.users {
        if let Some(cap) = u.max_active_roles {
            system.set_user_active_role_cap(binding.user(&u.name), Some(cap))?;
        }
    }

    // ---- 2. temporal policies and constraints ---------------------------
    let mut temporal = TemporalPolicies::new();
    for r in &graph.roles {
        let rid = binding.role(&r.name);
        if let Some(w) = &r.enabling {
            temporal.set_enabling(
                rid,
                BoundedPeriodic::window(PeriodicWindow::daily(
                    w.start_h, w.start_m, w.end_h, w.end_m,
                )),
            );
        }
        if let Some(d) = r.max_activation {
            temporal.set_max_activation(rid, d);
        }
        for (user, d) in &r.per_user_activation {
            temporal.set_user_max_activation(rid, binding.user(user), *d);
        }
    }
    let mut constraints = TemporalConstraints::new();
    for d in &graph.disabling_sod {
        constraints.disabling_sod.push(DisablingTimeSod {
            name: d.name.clone(),
            roles: d.roles.iter().map(|r| binding.role(r)).collect(),
            window: BoundedPeriodic::window(PeriodicWindow::daily(
                d.window.start_h,
                d.window.start_m,
                d.window.end_h,
                d.window.end_m,
            )),
        });
    }
    for d in &graph.enabling_sod {
        constraints.enabling_sod.push(gtrbac::EnablingTimeSod {
            name: d.name.clone(),
            roles: d.roles.iter().map(|r| binding.role(r)).collect(),
            window: BoundedPeriodic::window(PeriodicWindow::daily(
                d.window.start_h,
                d.window.start_m,
                d.window.end_h,
                d.window.end_m,
            )),
        });
    }
    for pc in &graph.post_conditions {
        constraints.post_conditions.push(PostConditionCfd {
            role: binding.role(&pc.role),
            required: binding.role(&pc.requires),
        });
    }
    for p in &graph.prerequisites {
        constraints.prerequisites.push(PrerequisiteActivation {
            role: binding.role(&p.role),
            prerequisite: binding.role(&p.requires_active),
        });
    }

    // Initial enabled state per temporal window.
    for r in &graph.roles {
        let rid = binding.role(&r.name);
        if !temporal.should_be_enabled(rid, start) {
            system.disable_role(rid, false)?;
        }
    }

    // ---- 3. event graph and rules ---------------------------------------
    let mut detector = Detector::new(start);
    let mut pool = RulePool::new();
    let mut stats = GenStats::default();

    for r in &graph.roles {
        generate_role(graph, &binding, r, &mut detector, &mut pool, &mut stats)?;
    }
    generate_global(graph, &binding, &mut detector, &mut pool, &mut stats)?;

    stats.event_nodes = detector.node_count();
    Ok(Instantiated {
        graph: graph.clone(),
        detector,
        pool,
        system,
        temporal,
        constraints,
        binding,
        stats,
    })
}

/// Whether generation runs the static analyzer and refuses bad pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VerifyGate {
    /// Skip the gate: the analysis report is returned but never blocks.
    Off,
    /// Refuse pools carrying any `Error`-severity diagnostic (warnings
    /// pass). The default.
    #[default]
    DenyOnError,
}

/// [`instantiate`], then run the static analyzer ([`crate::analyze`]) over
/// the generated pool.
///
/// With [`VerifyGate::DenyOnError`], a pool carrying `Error`-severity
/// diagnostics — a synchronous rule loop, an uncovered operation, an
/// unregistered event reference — is refused with
/// [`InstantiateError::Rejected`]. The report is returned on success so
/// callers can act on it (e.g. enable the executor's acyclic fast path
/// when the termination proof went through).
pub fn instantiate_verified(
    graph: &PolicyGraph,
    start: Ts,
    gate: VerifyGate,
) -> Result<(Instantiated, crate::analyze::AnalysisReport), InstantiateError> {
    let inst = instantiate(graph, start)?;
    let report = crate::analyze::analyze(&inst);
    if gate == VerifyGate::DenyOnError && report.error_count() > 0 {
        return Err(InstantiateError::Rejected(
            report
                .diagnostics
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect(),
        ));
    }
    Ok((inst, report))
}

/// Parameter shorthands.
fn p_user() -> ParamRef {
    ParamRef::param("user")
}
fn p_session() -> ParamRef {
    ParamRef::param("session")
}
fn p_role() -> ParamRef {
    ParamRef::param("role")
}
/// The three params every role-scoped event carries along cascades.
fn usr_params() -> Vec<(String, ParamRef)> {
    vec![
        ("user".into(), p_user()),
        ("session".into(), p_session()),
        ("role".into(), p_role()),
    ]
}

/// Generate (or regenerate) all rules and event nodes for one role.
///
/// Rule names are deterministic functions of the role name, so re-running
/// this after a policy change overwrites the previous generation in place.
pub(crate) fn generate_role(
    graph: &PolicyGraph,
    binding: &Binding,
    node: &RoleNode,
    detector: &mut Detector,
    pool: &mut RulePool,
    stats: &mut GenStats,
) -> Result<(), DetectorError> {
    let role = &node.name;
    let rid = i64::from(binding.role(role).0);
    let flags = graph.role_flags(role);

    let ev_add = detector.primitive(&events::add_active(role));
    let ev_stage = detector.primitive(&events::session_role_add(role));
    let ev_added = detector.primitive(&events::role_added(role));
    let ev_drop = detector.primitive(&events::drop_active(role));
    let ev_dropped = detector.primitive(&events::role_dropped(role));
    let ev_enable = detector.primitive(&events::enable_role(role));
    let ev_disable = detector.primitive(&events::disable_role(role));
    detector.primitive(&events::role_enabled(role));
    detector.primitive(&events::role_disabled(role));
    let status_params = |rid: i64| vec![("role".to_string(), ParamRef::Int(rid))];

    // ---- AAR: the activation rule, variant per flags (paper §4.3.1) ------
    let mut when = vec![
        CondExpr::check(Check::UserExists(p_user())),
        CondExpr::check(Check::SessionExists(p_session())),
        CondExpr::check(Check::SessionOwnedBy {
            session: p_session(),
            user: p_user(),
        }),
        CondExpr::check(Check::RoleNotActive {
            session: p_session(),
            role: ParamRef::Int(rid),
        }),
    ];
    let variant = match (flags.hierarchy, flags.dynamic_sod) {
        (false, false) => "AAR1",
        (true, false) => "AAR2",
        (false, true) => "AAR3",
        (true, true) => "AAR4",
    };
    if flags.hierarchy {
        when.push(CondExpr::check(Check::Authorized {
            user: p_user(),
            role: ParamRef::Int(rid),
        }));
    } else {
        when.push(CondExpr::check(Check::Assigned {
            user: p_user(),
            role: ParamRef::Int(rid),
        }));
    }
    if flags.dynamic_sod {
        when.push(CondExpr::check(Check::DsdSatisfied {
            session: p_session(),
            role: ParamRef::Int(rid),
        }));
    }
    if node.enabling.is_some() {
        when.push(CondExpr::check(Check::RoleEnabled(ParamRef::Int(rid))));
    }
    // Context-aware constraints (context-aware RBAC): activation requires
    // the environment context to satisfy the role's constraints.
    let has_context = graph.context_constraints.iter().any(|c| c.role == *role);
    if has_context {
        when.push(CondExpr::check(Check::Custom {
            name: "context_ok".into(),
            args: vec![ParamRef::Int(rid)],
        }));
    }
    // Specialized per-user caps, folded as a state-resolved check.
    when.push(CondExpr::check(Check::UserCapOk {
        user: p_user(),
        role: ParamRef::Int(rid),
    }));
    // Prerequisite roles (Rule 9): must be active somewhere.
    for p in graph.prerequisites.iter().filter(|p| p.role == *role) {
        when.push(CondExpr::check(Check::RoleActiveAnywhere(ParamRef::Int(
            i64::from(binding.role(&p.requires_active).0),
        ))));
    }
    let apply_actions = vec![
        ActionSpec::AddSessionRole {
            user: p_user(),
            session: p_session(),
            role: ParamRef::Int(rid),
        },
        ActionSpec::RaiseEvent {
            event: events::role_added(role),
            params: usr_params(),
        },
    ];
    let then = if node.max_active_users.is_some() {
        // Stage through the CC rule (the paper's Rule 4 cascade).
        vec![ActionSpec::RaiseEvent {
            event: events::session_role_add(role),
            params: usr_params(),
        }]
    } else {
        apply_actions.clone()
    };
    attach_rule(
        detector,
        pool,
        Rule::new(format!("{variant}_{role}"), ev_add, CondExpr::all(when))
            .then(then)
            .otherwise(vec![ActionSpec::RaiseError(format!(
                "Access Denied Cannot Activate {role}"
            ))])
            .class(RuleClass::ActivityControl)
            .granularity(Granularity::Localized),
    );
    stats.activation += 1;

    // ---- CC: cardinality cascade (Rule 4) --------------------------------
    if let Some(max) = node.max_active_users {
        attach_rule(
            detector,
            pool,
            Rule::new(
                format!("CC_{role}"),
                ev_stage,
                CondExpr::check(Check::RoleCardinalityBelow {
                    role: ParamRef::Int(rid),
                    user: p_user(),
                    max,
                }),
            )
            .then(apply_actions.clone())
            .otherwise(vec![ActionSpec::RaiseError(
                "Maximum Number of Roles Reached".into(),
            )])
            .class(RuleClass::ActivityControl)
            .granularity(Granularity::Localized),
        );
        stats.cardinality += 1;
    } else {
        pool.remove(&format!("CC_{role}"));
    }

    // ---- DAR: deactivation ------------------------------------------------
    attach_rule(
        detector,
        pool,
        Rule::new(
            format!("DAR_{role}"),
            ev_drop,
            CondExpr::all(vec![
                CondExpr::check(Check::SessionOwnedBy {
                    session: p_session(),
                    user: p_user(),
                }),
                CondExpr::check(Check::RoleActive {
                    session: p_session(),
                    role: ParamRef::Int(rid),
                }),
            ]),
        )
        .then(vec![
            ActionSpec::DropSessionRole {
                user: p_user(),
                session: p_session(),
                role: ParamRef::Int(rid),
            },
            ActionSpec::RaiseEvent {
                event: events::role_dropped(role),
                params: usr_params(),
            },
        ])
        .otherwise(vec![ActionSpec::RaiseError(format!(
            "Cannot Deactivate {role}: not active"
        ))])
        .class(RuleClass::ActivityControl)
        .granularity(Granularity::Localized),
    );
    stats.deactivation += 1;

    // ---- Δ-expiry (Rule 7), role-wide ------------------------------------
    if let Some(delta) = node.max_activation {
        let plus = detector.define(&EventExpr::plus(
            EventExpr::named(events::role_added(role)),
            delta,
        ))?;
        detector.name(plus, &events::delta(role))?;
        attach_rule(
            detector,
            pool,
            Rule::new(
                format!("DELTA_{role}"),
                plus,
                CondExpr::check(Check::RoleActive {
                    session: p_session(),
                    role: ParamRef::Int(rid),
                }),
            )
            .then(vec![
                ActionSpec::DropSessionRole {
                    user: p_user(),
                    session: p_session(),
                    role: ParamRef::Int(rid),
                },
                ActionSpec::RaiseEvent {
                    event: events::role_dropped(role),
                    params: usr_params(),
                },
            ])
            .class(RuleClass::ActivityControl)
            .granularity(Granularity::Localized),
        );
        attach_rule(
            detector,
            pool,
            Rule::new(format!("CANCEL_{role}"), ev_dropped, CondExpr::True)
                .then(vec![ActionSpec::CancelPlus {
                    event: events::delta(role),
                    key_param: "session".into(),
                }])
                .class(RuleClass::ActivityControl)
                .granularity(Granularity::Localized),
        );
        stats.duration += 2;
    } else {
        pool.remove(&format!("DELTA_{role}"));
        pool.remove(&format!("CANCEL_{role}"));
    }

    // ---- Δ-expiry per user (Rule 7's Bob/R3 form) -------------------------
    for (user, delta) in &node.per_user_activation {
        let uid = i64::from(binding.user(user).0);
        let filtered_name = events::user_activation(role, user);
        detector.primitive(&filtered_name);
        let plus = detector.define(&EventExpr::plus(
            EventExpr::named(events::user_activation(role, user)),
            *delta,
        ))?;
        detector.name(plus, &events::delta_user(role, user))?;
        // Start the filtered event when this user activates the role.
        attach_rule(
            detector,
            pool,
            Rule::new(
                format!("DELTAS_{role}_{user}"),
                ev_added,
                CondExpr::check(Check::ParamEquals {
                    name: "user".into(),
                    value: snoop::Value::Int(uid),
                }),
            )
            .then(vec![ActionSpec::RaiseEvent {
                event: filtered_name.clone(),
                params: usr_params(),
            }])
            .class(RuleClass::ActivityControl)
            .granularity(Granularity::Specialized),
        );
        attach_rule(
            detector,
            pool,
            Rule::new(
                format!("DELTA_{role}_{user}"),
                plus,
                CondExpr::check(Check::RoleActive {
                    session: p_session(),
                    role: ParamRef::Int(rid),
                }),
            )
            .then(vec![
                ActionSpec::DropSessionRole {
                    user: p_user(),
                    session: p_session(),
                    role: ParamRef::Int(rid),
                },
                ActionSpec::RaiseEvent {
                    event: events::role_dropped(role),
                    params: usr_params(),
                },
            ])
            .class(RuleClass::ActivityControl)
            .granularity(Granularity::Specialized),
        );
        attach_rule(
            detector,
            pool,
            Rule::new(
                format!("CANCEL_{role}_{user}"),
                ev_dropped,
                CondExpr::check(Check::ParamEquals {
                    name: "user".into(),
                    value: snoop::Value::Int(uid),
                }),
            )
            .then(vec![ActionSpec::CancelPlus {
                event: events::delta_user(role, user),
                key_param: "session".into(),
            }])
            .class(RuleClass::ActivityControl)
            .granularity(Granularity::Specialized),
        );
        stats.duration += 3;
    }

    // ---- temporal enabling (shifts) ---------------------------------------
    if let Some(w) = &node.enabling {
        let start_cal = detector.calendar(CalendarExpr::daily(w.start_h, w.start_m, 0));
        let end_cal = detector.calendar(CalendarExpr::daily(w.end_h, w.end_m, 0));
        attach_rule(
            detector,
            pool,
            Rule::new(format!("ENA_{role}"), start_cal, CondExpr::True)
                .then(vec![
                    ActionSpec::EnableRole(ParamRef::Int(rid)),
                    ActionSpec::RaiseEvent {
                        event: events::role_enabled(role),
                        params: status_params(rid),
                    },
                ])
                .class(RuleClass::ActivityControl)
                .granularity(Granularity::Localized),
        );
        attach_rule(
            detector,
            pool,
            Rule::new(format!("DIS_{role}"), end_cal, CondExpr::True)
                .then(vec![
                    ActionSpec::DisableRole {
                        role: ParamRef::Int(rid),
                        deactivate: true,
                    },
                    ActionSpec::RaiseEvent {
                        event: events::role_disabled(role),
                        params: status_params(rid),
                    },
                ])
                .class(RuleClass::ActivityControl)
                .granularity(Granularity::Localized),
        );
        stats.enabling += 2;
    } else {
        pool.remove(&format!("ENA_{role}"));
        pool.remove(&format!("DIS_{role}"));
    }

    // ---- enable/disable request paths (Rules 6 and 8) --------------------
    // Disable requests honour disabling-time SoD via a state-resolved check
    // (same semantics as the paper's Aperiodic-window guard: inside the
    // window the conflicting role must still be enabled).
    attach_rule(
        detector,
        pool,
        Rule::new(
            format!("DISR_{role}"),
            ev_disable,
            CondExpr::check(Check::Custom {
                name: "disabling_sod_ok".into(),
                args: vec![ParamRef::Int(rid)],
            }),
        )
        .then(vec![
            ActionSpec::DisableRole {
                role: ParamRef::Int(rid),
                deactivate: true,
            },
            ActionSpec::RaiseEvent {
                event: events::role_disabled(role),
                params: status_params(rid),
            },
        ])
        .otherwise(vec![ActionSpec::RaiseError(format!(
            "Denied: disabling {role} violates a disabling-time SoD"
        ))])
        .class(RuleClass::ActivityControl)
        .granularity(Granularity::Localized),
    );
    stats.enabling += 1;

    // Enable requests cascade post-condition requirements (Rule 8: CFD₁
    // raises the required role's enable event; its failure disables us).
    let mut enable_then = vec![
        ActionSpec::EnableRole(ParamRef::Int(rid)),
        ActionSpec::RaiseEvent {
            event: events::role_enabled(role),
            params: status_params(rid),
        },
    ];
    for pc in graph.post_conditions.iter().filter(|pc| pc.role == *role) {
        enable_then.push(ActionSpec::RaiseEvent {
            event: events::enable_role(&pc.requires),
            params: vec![],
        });
        stats.dependency += 1;
    }
    let mut enable_else = Vec::new();
    for pc in graph
        .post_conditions
        .iter()
        .filter(|pc| pc.requires == *role)
    {
        // CFD₂: if we cannot be enabled, the trigger role must come down.
        enable_else.push(ActionSpec::DisableRole {
            role: ParamRef::Int(i64::from(binding.role(&pc.role).0)),
            deactivate: true,
        });
    }
    enable_else.push(ActionSpec::RaiseError(format!("Cannot Enable {role}")));
    attach_rule(
        detector,
        pool,
        Rule::new(
            format!("ENR_{role}"),
            ev_enable,
            CondExpr::all(vec![
                CondExpr::check(Check::Custom {
                    name: "may_enable".into(),
                    args: vec![ParamRef::Int(rid)],
                }),
                CondExpr::check(Check::Custom {
                    name: "enabling_sod_ok".into(),
                    args: vec![ParamRef::Int(rid)],
                }),
            ]),
        )
        .then(enable_then)
        .otherwise(enable_else)
        .class(RuleClass::ActivityControl)
        .granularity(Granularity::Localized),
    );
    stats.enabling += 1;

    // ---- context re-validation -------------------------------------------
    // On any context change, a constrained role whose context no longer
    // holds is force-deactivated (the rule's *alternative* actions — the
    // OWTE Else at work).
    if has_context {
        let ev_ctx = detector.primitive(events::CONTEXT_CHANGED);
        attach_rule(
            detector,
            pool,
            Rule::new(
                format!("CTX_{role}"),
                ev_ctx,
                CondExpr::check(Check::Custom {
                    name: "context_ok".into(),
                    args: vec![ParamRef::Int(rid)],
                }),
            )
            .otherwise(vec![ActionSpec::DeactivateRoleEverywhere(ParamRef::Int(
                rid,
            ))])
            .class(RuleClass::ActiveSecurity)
            .granularity(Granularity::Localized),
        );
        stats.context += 1;
    } else {
        pool.remove(&format!("CTX_{role}"));
    }

    // ---- prerequisite cascade (Rule 9's ASEC₂ side) -----------------------
    let dependents: Vec<&str> = graph
        .prerequisites
        .iter()
        .filter(|p| p.requires_active == *role)
        .map(|p| p.role.as_str())
        .collect();
    if !dependents.is_empty() {
        let then: Vec<ActionSpec> = dependents
            .iter()
            .map(|d| {
                ActionSpec::DeactivateRoleEverywhere(ParamRef::Int(i64::from(binding.role(d).0)))
            })
            .collect();
        attach_rule(
            detector,
            pool,
            Rule::new(
                format!("PREDROP_{role}"),
                ev_dropped,
                CondExpr::Not(Box::new(CondExpr::check(Check::RoleActiveAnywhere(
                    ParamRef::Int(rid),
                )))),
            )
            .then(then)
            .class(RuleClass::ActiveSecurity)
            .granularity(Granularity::Localized),
        );
        stats.dependency += 1;
    } else {
        pool.remove(&format!("PREDROP_{role}"));
    }

    Ok(())
}

/// Globalized rules: check-access, administrative, active security.
fn generate_global(
    graph: &PolicyGraph,
    binding: &Binding,
    detector: &mut Detector,
    pool: &mut RulePool,
    stats: &mut GenStats,
) -> Result<(), DetectorError> {
    let ev_check = detector.primitive(events::CHECK_ACCESS);
    let ev_assign = detector.primitive(events::ASSIGN_USER);
    let ev_deassign = detector.primitive(events::DEASSIGN_USER);
    let ev_denied = detector.primitive(events::ACCESS_DENIED);
    // Context events exist even when no role is constrained (sensors may
    // report before an administrator adds the first constraint).
    detector.primitive(events::CONTEXT_CHANGED);

    // CA (Rule 5), globalized: same rule for every role, "invoked with
    // different parameters".
    let mut when = vec![
        CondExpr::check(Check::SessionExists(p_session())),
        CondExpr::check(Check::SessionHasPermission {
            session: p_session(),
            op: ParamRef::param("op"),
            obj: ParamRef::param("obj"),
        }),
    ];
    if !graph.object_policies.is_empty() {
        when.push(CondExpr::check(Check::Custom {
            name: "purpose_ok".into(),
            args: vec![
                p_session(),
                ParamRef::param("op"),
                ParamRef::param("obj"),
                ParamRef::param("purpose"),
            ],
        }));
    }
    attach_rule(
        detector,
        pool,
        Rule::new("CA", ev_check, CondExpr::all(when))
            .then(vec![ActionSpec::Allow])
            .otherwise(vec![ActionSpec::RaiseError("Permission Denied".into())])
            .class(RuleClass::ActivityControl)
            .granularity(Granularity::Globalized),
    );
    stats.check_access += 1;

    // Administrative rules (scenario 3: "same rule is invoked with
    // different parameters").
    attach_rule(
        detector,
        pool,
        Rule::new(
            "ASSIGN",
            ev_assign,
            CondExpr::check(Check::UserExists(p_user())),
        )
        .then(vec![ActionSpec::AssignUser {
            user: p_user(),
            role: p_role(),
        }])
        .otherwise(vec![ActionSpec::RaiseError("Cannot Assign".into())])
        .class(RuleClass::Administrative)
        .granularity(Granularity::Globalized),
    );
    attach_rule(
        detector,
        pool,
        Rule::new(
            "DEASSIGN",
            ev_deassign,
            CondExpr::all(vec![
                CondExpr::check(Check::UserExists(p_user())),
                CondExpr::check(Check::Assigned {
                    user: p_user(),
                    role: p_role(),
                }),
            ]),
        )
        .then(vec![ActionSpec::DeassignUser {
            user: p_user(),
            role: p_role(),
        }])
        .otherwise(vec![ActionSpec::RaiseError("Cannot Deassign".into())])
        .class(RuleClass::Administrative)
        .granularity(Granularity::Globalized),
    );
    stats.administrative += 2;

    // TRBAC role triggers, lowered onto the status-notification events.
    // Actions go through the guarded request path (enableRole_*/
    // disableRole_* events), so window/SoD checks still apply; delayed
    // actions go through a PLUS event (TRBAC's "after Δ").
    for t in &graph.triggers {
        use crate::graph::StatusKind;
        let base = match t.on_kind {
            StatusKind::Enabled => events::role_enabled(&t.on_role),
            StatusKind::Disabled => events::role_disabled(&t.on_role),
        };
        let base_ev = detector.primitive(&base);
        let mut conds = Vec::new();
        for (r, must_be_enabled) in &t.when {
            let check = CondExpr::check(Check::RoleEnabled(ParamRef::Int(i64::from(
                binding.role(r).0,
            ))));
            conds.push(if *must_be_enabled {
                check
            } else {
                CondExpr::Not(Box::new(check))
            });
        }
        let action_event = match t.action_kind {
            StatusKind::Enabled => events::enable_role(&t.action_role),
            StatusKind::Disabled => events::disable_role(&t.action_role),
        };
        let action = ActionSpec::RaiseEvent {
            event: action_event,
            params: vec![(
                "role".to_string(),
                ParamRef::Int(i64::from(binding.role(&t.action_role).0)),
            )],
        };
        if t.after.is_zero() {
            attach_rule(
                detector,
                pool,
                Rule::new(format!("TRIG_{}", t.name), base_ev, CondExpr::all(conds))
                    .then(vec![action])
                    .class(RuleClass::ActiveSecurity)
                    .granularity(Granularity::Localized),
            );
            stats.dependency += 1;
        } else {
            // Conditions evaluate at trigger time (TRBAC), action after Δ.
            let fire_name = events::trigger_fire(&t.name);
            detector.primitive(&fire_name);
            attach_rule(
                detector,
                pool,
                Rule::new(format!("TRIG_{}", t.name), base_ev, CondExpr::all(conds))
                    .then(vec![ActionSpec::RaiseEvent {
                        event: fire_name.clone(),
                        params: vec![],
                    }])
                    .class(RuleClass::ActiveSecurity)
                    .granularity(Granularity::Localized),
            );
            let plus = detector.define(&EventExpr::plus(EventExpr::named(fire_name), t.after))?;
            detector.name(plus, &events::trigger_delay(&t.name))?;
            attach_rule(
                detector,
                pool,
                Rule::new(format!("TRIGD_{}", t.name), plus, CondExpr::True)
                    .then(vec![action])
                    .class(RuleClass::ActiveSecurity)
                    .granularity(Granularity::Localized),
            );
            stats.dependency += 2;
        }
    }

    // Active-security threshold rules. Each disables itself after firing
    // ("some critical authorization rules are disabled and the
    // administrators are alerted") so one storm produces one alert.
    for s in &graph.security {
        let name = format!("SEC_{}", s.name);
        let mut then = Vec::new();
        for a in &s.actions {
            match a {
                SecurityAction::Alert => then.push(ActionSpec::Alert(format!(
                    "internal security alert `{}`: more than {} denials within {}",
                    s.name, s.threshold, s.window
                ))),
                SecurityAction::DisableActivityRules => {
                    then.push(ActionSpec::DisableRuleClass(RuleClass::ActivityControl))
                }
                SecurityAction::DisableRole(r) => {
                    then.push(ActionSpec::RaiseEvent {
                        event: events::disable_role(r),
                        params: vec![],
                    });
                }
            }
        }
        then.push(ActionSpec::DisableRule(name.clone()));
        attach_rule(
            detector,
            pool,
            Rule::new(
                name,
                ev_denied,
                CondExpr::check(Check::Custom {
                    name: "denials_at_least".into(),
                    args: vec![
                        ParamRef::Int(s.threshold as i64),
                        ParamRef::Int(s.window.as_secs() as i64),
                    ],
                }),
            )
            .then(then)
            .priority(10)
            .class(RuleClass::ActiveSecurity)
            .granularity(Granularity::Globalized),
        );
        stats.security += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xyz() -> Instantiated {
        instantiate(&PolicyGraph::enterprise_xyz(), Ts::ZERO).unwrap()
    }

    #[test]
    fn xyz_generates_expected_pool() {
        let inst = xyz();
        // Per role: AAR + DAR + DISR + ENR = 4; globals: CA + 2 admin = 3.
        assert_eq!(inst.stats.total_rules(), 5 * 4 + 3);
        assert_eq!(inst.pool.len(), inst.stats.total_rules());
        // PC participates in hierarchy (and static SoD): AAR₂ variant,
        // exactly as §5 says ("this rule is similar to rule AAR₂").
        assert!(inst.pool.get_by_name("AAR2_PC").is_some());
        // Clerk also sits in the hierarchy.
        assert!(inst.pool.get_by_name("AAR2_Clerk").is_some());
        // No DSD in XYZ: no AAR₃/AAR₄.
        assert!(!inst
            .pool
            .iter()
            .any(|(_, r)| r.name.starts_with("AAR3") || r.name.starts_with("AAR4")));
    }

    #[test]
    fn verified_instantiation_passes_clean_pools() {
        let (inst, report) = instantiate_verified(
            &PolicyGraph::enterprise_xyz(),
            Ts::ZERO,
            VerifyGate::DenyOnError,
        )
        .unwrap();
        assert!(report.proved_terminating());
        assert_eq!(report.error_count(), 0);
        assert_eq!(inst.pool.len(), report.rules);
    }

    #[test]
    fn verified_instantiation_gates_on_rule_loops() {
        use crate::graph::PostConditionSpec;
        // Mutual post-conditions pass the graph-level consistency check but
        // generate ENR rules that raise each other's enabling event — a
        // synchronous rule loop the analyzer refuses.
        let mut g = PolicyGraph::new("t");
        g.role("a");
        g.role("b");
        g.post_conditions.push(PostConditionSpec {
            role: "a".into(),
            requires: "b".into(),
        });
        g.post_conditions.push(PostConditionSpec {
            role: "b".into(),
            requires: "a".into(),
        });
        assert!(instantiate(&g, Ts::ZERO).is_ok(), "ungated path accepts");
        let err = instantiate_verified(&g, Ts::ZERO, VerifyGate::DenyOnError).unwrap_err();
        match err {
            InstantiateError::Rejected(diags) => {
                assert!(!diags.is_empty());
                assert!(diags.iter().all(|d| d.severity == Severity::Error));
            }
            other => panic!("expected Rejected, got {other}"),
        }
        // With the gate off the report is returned for inspection instead.
        let (_, report) = instantiate_verified(&g, Ts::ZERO, VerifyGate::Off).unwrap();
        assert!(!report.proved_terminating());
    }

    #[test]
    fn variant_selection_follows_flags() {
        let mut g = PolicyGraph::new("v");
        g.role("lone");
        g.role("d1");
        g.role("d2");
        g.dsd_set("x", &["d1", "d2"], 2);
        g.role("top");
        g.role("mid");
        g.inherits("top", "mid");
        g.role("both");
        g.inherits("both", "d1"); // hmm: gives d1 hierarchy flag too
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        assert!(inst.pool.get_by_name("AAR1_lone").is_some());
        assert!(
            inst.pool.get_by_name("AAR4_d1").is_some(),
            "dsd + hierarchy"
        );
        assert!(inst.pool.get_by_name("AAR3_d2").is_some(), "dsd only");
        assert!(inst.pool.get_by_name("AAR2_top").is_some());
    }

    #[test]
    fn cardinality_rule_generated_only_when_capped() {
        let mut g = PolicyGraph::new("c");
        g.role("capped").max_active_users = Some(5);
        g.role("free");
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        assert!(inst.pool.get_by_name("CC_capped").is_some());
        assert!(inst.pool.get_by_name("CC_free").is_none());
        // The AAR for the capped role stages through the CC event.
        let aar = inst.pool.get_by_name("AAR1_capped").unwrap();
        assert!(matches!(
            aar.then.as_slice(),
            [ActionSpec::RaiseEvent { event, .. }] if event == "addSessionRole_capped"
        ));
    }

    #[test]
    fn temporal_rules_and_initial_state() {
        let mut g = PolicyGraph::new("t");
        g.role("shift").enabling = Some(crate::graph::DailyWindow {
            start_h: 8,
            start_m: 0,
            end_h: 16,
            end_m: 0,
        });
        // Start the clock at midnight: the role must begin disabled.
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        assert!(inst.pool.get_by_name("ENA_shift").is_some());
        assert!(inst.pool.get_by_name("DIS_shift").is_some());
        let rid = inst.binding.role("shift");
        assert!(!inst.system.is_enabled(rid).unwrap());
    }

    #[test]
    fn duration_rules_role_and_user() {
        let mut g = PolicyGraph::new("d");
        g.user("bob");
        g.role("r3").max_activation = Some(snoop::Dur::from_hours(4));
        g.role("r3")
            .per_user_activation
            .insert("bob".into(), snoop::Dur::from_hours(2));
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        assert!(inst.pool.get_by_name("DELTA_r3").is_some());
        assert!(inst.pool.get_by_name("CANCEL_r3").is_some());
        assert!(inst.pool.get_by_name("DELTAS_r3_bob").is_some());
        assert!(inst.pool.get_by_name("DELTA_r3_bob").is_some());
        assert!(inst.pool.get_by_name("CANCEL_r3_bob").is_some());
        assert_eq!(inst.stats.duration, 5);
        // Specialized granularity for the per-user rules.
        assert_eq!(
            inst.pool.get_by_name("DELTA_r3_bob").unwrap().granularity,
            Granularity::Specialized
        );
    }

    #[test]
    fn dependency_rules() {
        let mut g = PolicyGraph::new("dep");
        for r in ["SysAdmin", "SysAudit", "Manager", "JuniorEmp"] {
            g.role(r);
        }
        g.post_conditions.push(crate::graph::PostConditionSpec {
            role: "SysAdmin".into(),
            requires: "SysAudit".into(),
        });
        g.prerequisites.push(crate::graph::PrerequisiteSpec {
            role: "JuniorEmp".into(),
            requires_active: "Manager".into(),
        });
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        // CFD₁: enabling SysAdmin raises SysAudit's enable event.
        let enr = inst.pool.get_by_name("ENR_SysAdmin").unwrap();
        assert!(enr.then.iter().any(|a| matches!(
            a,
            ActionSpec::RaiseEvent { event, .. } if event == "enableRole_SysAudit"
        )));
        // CFD₂: SysAudit's failure path disables SysAdmin.
        let enr2 = inst.pool.get_by_name("ENR_SysAudit").unwrap();
        assert!(enr2
            .otherwise
            .iter()
            .any(|a| matches!(a, ActionSpec::DisableRole { .. })));
        // Rule 9: dropping Manager cascades to JuniorEmp.
        assert!(inst.pool.get_by_name("PREDROP_Manager").is_some());
        // And JuniorEmp's AAR requires Manager active.
        let aar = inst.pool.get_by_name("AAR1_JuniorEmp").unwrap();
        assert!(aar.when.to_string().contains("checkActive"));
    }

    #[test]
    fn security_rules_self_disable() {
        let mut g = PolicyGraph::new("s");
        g.security.push(crate::graph::SecuritySpec {
            name: "storm".into(),
            threshold: 10,
            window: snoop::Dur::from_secs(60),
            actions: vec![SecurityAction::Alert, SecurityAction::DisableActivityRules],
        });
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        let sec = inst.pool.get_by_name("SEC_storm").unwrap();
        assert_eq!(sec.class, RuleClass::ActiveSecurity);
        assert!(sec
            .then
            .iter()
            .any(|a| matches!(a, ActionSpec::DisableRule(n) if n == "SEC_storm")));
    }

    #[test]
    fn inconsistent_policy_rejected() {
        let mut g = PolicyGraph::new("bad");
        g.role("a");
        g.inherits("a", "ghost");
        assert!(matches!(
            instantiate(&g, Ts::ZERO),
            Err(InstantiateError::Inconsistent(_))
        ));
    }

    #[test]
    fn rule_pool_dump_is_owte_syntax() {
        let inst = xyz();
        let dump = inst.pool.dump();
        assert!(dump.contains("RULE [ AAR2_PC"));
        assert!(dump.contains("ELSE  raise error \"Access Denied Cannot Activate PC\""));
    }

    #[test]
    fn hundreds_of_roles_thousands_of_checks() {
        // The paper's scaling claim: hundreds of roles need thousands of
        // rules. 200 roles → ≥ 800 rules (4 per role) + globals.
        let mut g = PolicyGraph::new("big");
        for i in 0..200 {
            g.role(&format!("r{i}"));
        }
        let inst = instantiate(&g, Ts::ZERO).unwrap();
        assert!(inst.pool.len() >= 800);
        let stats = inst.pool.stats();
        assert!(stats.checks >= 1000, "thousands of condition checks");
    }
}
