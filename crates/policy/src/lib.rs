//! # policy — high-level specification and OWTE rule generation
//!
//! The paper's key usability claim is that administrators never write OWTE
//! rules: they specify enterprise access-control policies at a high level
//! (the RBAC Manager GUI of §5 / Figure 1), and the system *generates* —
//! and on change *regenerates* — the thousands of authorization rules.
//!
//! * [`graph::PolicyGraph`] — the Figure-1 policy graph: role nodes with
//!   relationship flags, hierarchy edges, SoD "dashed lines", plus the
//!   temporal, dependency, cardinality, active-security and privacy
//!   annotations of the extensions;
//! * [`spec`] — a small textual DSL producing the same graph (our stand-in
//!   for the drag-and-drop GUI);
//! * [`consistency`] — policy validation (the "advanced consistency
//!   checking mechanisms" the paper lists as work in progress);
//! * [`generate`] — rule synthesis: instantiates the RBAC monitor, builds
//!   the event graph, and emits the rule pool (AAR₁…AAR₄ variants chosen
//!   per role flags, CC cardinality cascades, Δ PLUS rules, calendar
//!   enable/disable, CFD and prerequisite rules, check-access,
//!   administrative and active-security rules);
//! * [`mod@regenerate`] — incremental regeneration on policy change (§5's
//!   day-doctor shift scenario);
//! * [`analyze`] — `owte-analyze`, the static rule-pool analyzer: proves
//!   cascade termination, finds dead/shadowed/unsatisfiable rules and
//!   coverage gaps, and gates generation on a verified pool.

#![warn(missing_docs)]

pub mod analyze;
pub mod compile;
pub mod consistency;
pub mod events;
pub mod generate;
pub mod graph;
pub mod regenerate;
pub mod spec;

pub use analyze::{
    analyze, analyze_parts, effect_dot, rule_dependency_dot, AnalysisReport, DiagCode, Diagnostic,
    EffectReport, RuleEffect, Termination,
};
pub use compile::{compile_pool, CompileError, CompiledPolicy};
pub use consistency::{check, is_consistent, Issue, Severity};
pub use generate::{
    instantiate, instantiate_verified, Binding, GenStats, InstantiateError, Instantiated,
    VerifyGate,
};
pub use graph::{
    ContextConstraintSpec, DailyWindow, DisablingSodSpec, ObjectPolicySpec, PolicyGraph,
    PostConditionSpec, PrerequisiteSpec, PurposeSpec, RoleFlags, RoleNode, SecurityAction,
    SecuritySpec, SodSpec, StatusKind, TriggerSpec, UserNode,
};
pub use regenerate::{needs_full_rebuild, regenerate, regenerate_verified, RegenReport};
pub use spec::{parse, print, SpecError};
