//! Consistency checking of high-level policies.
//!
//! The paper assumes "the policies specified … do not have inconsistencies,
//! but we are in the process of developing advanced consistency checking
//! mechanisms" — this module is that mechanism. It validates a
//! [`PolicyGraph`] *before* instantiation, reporting precise errors
//! (policy cannot be instantiated) and warnings (suspicious but legal).

use crate::analyze::closure::{juniors_closure, sod_covers};
use crate::graph::{PolicyGraph, SecurityAction};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Severity of a finding.
///
/// `Error` orders before `Warning`, so sorting findings by severity puts
/// the blocking ones first. The same scale is used by the static rule-pool
/// analyzer ([`crate::analyze`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// The policy cannot be instantiated.
    Error,
    /// Legal but probably not what the author meant.
    Warning,
}

/// One consistency finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Issue {
    /// How bad.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}: {}", self.message)
    }
}

fn error(issues: &mut Vec<Issue>, msg: String) {
    issues.push(Issue {
        severity: Severity::Error,
        message: msg,
    });
}

fn warning(issues: &mut Vec<Issue>, msg: String) {
    issues.push(Issue {
        severity: Severity::Warning,
        message: msg,
    });
}

/// Run all checks. An empty error set means the policy can be instantiated.
pub fn check(g: &PolicyGraph) -> Vec<Issue> {
    let mut issues = Vec::new();
    check_unique_names(g, &mut issues);
    check_references(g, &mut issues);
    let cyclic = check_hierarchy_cycles(g, &mut issues);
    check_sod_sets(g, &mut issues);
    if !cyclic {
        check_ssd_vs_hierarchy(g, &mut issues);
        check_assignments_vs_ssd(g, &mut issues);
    }
    check_temporal(g, &mut issues);
    check_dependencies(g, &mut issues);
    check_security(g, &mut issues);
    check_triggers(g, &mut issues);
    check_context(g, &mut issues);
    check_privacy(g, &mut issues);
    issues
}

/// Are there no errors (warnings allowed)?
///
/// This is the gate [`crate::generate::instantiate`] applies: a graph with
/// any `Error`-severity issue is refused, while warnings never block
/// instantiation.
pub fn is_consistent(g: &PolicyGraph) -> bool {
    check(g).iter().all(|i| i.severity != Severity::Error)
}

fn check_unique_names(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    for (kind, names) in [
        ("role", g.roles.iter().map(|r| &r.name).collect::<Vec<_>>()),
        ("user", g.users.iter().map(|u| &u.name).collect()),
        (
            "permission",
            g.permissions.iter().map(|p| &p.name).collect(),
        ),
        ("purpose", g.purposes.iter().map(|p| &p.name).collect()),
    ] {
        let mut seen = HashSet::new();
        for n in names {
            if !seen.insert(n) {
                error(issues, format!("duplicate {kind} name `{n}`"));
            }
        }
    }
}

fn check_references(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    let role_ok = |n: &str| g.role_node(n).is_some();
    let user_ok = |n: &str| g.user_node(n).is_some();
    let perm_ok = |n: &str| g.permissions.iter().any(|p| p.name == n);
    for (s, j) in &g.hierarchy {
        for r in [s, j] {
            if !role_ok(r) {
                error(issues, format!("hierarchy references unknown role `{r}`"));
            }
        }
    }
    for (u, r) in &g.assignments {
        if !user_ok(u) {
            error(issues, format!("assignment references unknown user `{u}`"));
        }
        if !role_ok(r) {
            error(issues, format!("assignment references unknown role `{r}`"));
        }
    }
    for (p, r) in &g.grants {
        if !perm_ok(p) {
            error(issues, format!("grant references unknown permission `{p}`"));
        }
        if !role_ok(r) {
            error(issues, format!("grant references unknown role `{r}`"));
        }
    }
    for set in g.ssd.iter().chain(&g.dsd) {
        for r in &set.roles {
            if !role_ok(r) {
                error(
                    issues,
                    format!("SoD set `{}` references unknown role `{r}`", set.name),
                );
            }
        }
    }
    for (kind, sets) in [
        ("disabling", &g.disabling_sod),
        ("enabling", &g.enabling_sod),
    ] {
        for d in sets {
            for r in &d.roles {
                if !role_ok(r) {
                    error(
                        issues,
                        format!("{kind} SoD `{}` references unknown role `{r}`", d.name),
                    );
                }
            }
        }
    }
    // Unused permissions are legal but suspicious.
    for p in &g.permissions {
        if !g.grants.iter().any(|(perm, _)| *perm == p.name) {
            warning(issues, format!("permission `{}` is never granted", p.name));
        }
    }
}

/// Returns true if a cycle was found (downstream checks are skipped).
fn check_hierarchy_cycles(g: &PolicyGraph, issues: &mut Vec<Issue>) -> bool {
    // Kahn's algorithm over senior→junior edges.
    let mut indegree: BTreeMap<&str, usize> = BTreeMap::new();
    let mut out: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (s, j) in &g.hierarchy {
        nodes.insert(s);
        nodes.insert(j);
        out.entry(s).or_default().push(j);
        *indegree.entry(j).or_default() += 1;
        indegree.entry(s).or_default();
        if s == j {
            error(issues, format!("role `{s}` inherits from itself"));
            return true;
        }
    }
    let mut queue: Vec<&str> = nodes
        .iter()
        .filter(|n| indegree.get(*n).copied().unwrap_or(0) == 0)
        .copied()
        .collect();
    let mut visited = 0;
    while let Some(n) = queue.pop() {
        visited += 1;
        for &m in out.get(n).map(Vec::as_slice).unwrap_or(&[]) {
            let d = indegree.get_mut(m).expect("edge target counted");
            *d -= 1;
            if *d == 0 {
                queue.push(m);
            }
        }
    }
    if visited != nodes.len() {
        error(issues, "role hierarchy contains a cycle".to_string());
        true
    } else {
        false
    }
}

fn check_sod_sets(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    for (kind, sets) in [("SSD", &g.ssd), ("DSD", &g.dsd)] {
        for set in sets {
            if set.roles.len() < 2 {
                error(
                    issues,
                    format!("{kind} set `{}` needs at least two roles", set.name),
                );
            }
            if set.cardinality < 2 || set.cardinality > set.roles.len().max(2) {
                error(
                    issues,
                    format!(
                        "{kind} set `{}` cardinality {} invalid for {} roles",
                        set.name,
                        set.cardinality,
                        set.roles.len()
                    ),
                );
            }
        }
    }
    // A DSD set whose roles are already fully SSD-conflicting is redundant:
    // no user can even be assigned the conflicting combination.
    for d in &g.dsd {
        for s in &g.ssd {
            if d.roles.is_subset(&s.roles) && s.cardinality <= d.cardinality {
                warning(
                    issues,
                    format!(
                        "DSD set `{}` is redundant: SSD set `{}` already forbids assignment",
                        d.name, s.name
                    ),
                );
            }
        }
    }
}

fn check_ssd_vs_hierarchy(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    let juniors = juniors_closure(g);
    for set in &g.ssd {
        let roles: Vec<&str> = set.roles.iter().map(String::as_str).collect();
        for (i, a) in roles.iter().enumerate() {
            for b in &roles[i + 1..] {
                let a_dom_b = juniors.get(a).is_some_and(|s| s.contains(b));
                let b_dom_a = juniors.get(b).is_some_and(|s| s.contains(a));
                if (a_dom_b || b_dom_a) && set.cardinality == 2 {
                    error(
                        issues,
                        format!(
                            "SSD set `{}` contains hierarchically related roles `{a}` and `{b}`: \
                             any user of the senior is authorized for both",
                            set.name
                        ),
                    );
                }
            }
        }
    }
    // Transitive conflicts. A common senior outside the set (or a set whose
    // cardinality only trips with three or more members) never shows up in
    // the pairwise scan above, yet one assignment of the senior still
    // authorizes enough members to defeat the set.
    for cover in sod_covers(g, &g.ssd) {
        if cover.senior_in_set && cover.set.cardinality == 2 {
            continue; // already reported pairwise
        }
        error(
            issues,
            format!(
                "role `{}` is a common senior of {} roles of SSD set `{}` (cardinality {}): \
                 one assignment authorizes {{{}}} together",
                cover.senior,
                cover.covered.len(),
                cover.set.name,
                cover.set.cardinality,
                cover.covered.join(", ")
            ),
        );
    }
}

fn check_assignments_vs_ssd(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    let juniors = juniors_closure(g);
    // authorized roles per user = assignments + juniors of assignments.
    let mut authorized: HashMap<&str, HashSet<&str>> = HashMap::new();
    for (u, r) in &g.assignments {
        let entry = authorized.entry(u).or_default();
        entry.insert(r);
        if let Some(js) = juniors.get(r.as_str()) {
            entry.extend(js.iter().copied());
        }
    }
    for set in &g.ssd {
        for (u, auth) in &authorized {
            let hit = set
                .roles
                .iter()
                .filter(|r| auth.contains(r.as_str()))
                .count();
            if hit >= set.cardinality {
                error(
                    issues,
                    format!(
                        "user `{u}` is authorized for {hit} roles of SSD set `{}` \
                         (cardinality {})",
                        set.name, set.cardinality
                    ),
                );
            }
        }
    }
}

fn check_temporal(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    for r in &g.roles {
        if let Some(w) = &r.enabling {
            if (w.start_h, w.start_m) == (w.end_h, w.end_m) {
                error(
                    issues,
                    format!("role `{}` enabling window {w} is empty", r.name),
                );
            }
        }
        if let Some(d) = r.max_activation {
            if d.is_zero() {
                error(
                    issues,
                    format!(
                        "role `{}` max_activation of zero forbids all activation",
                        r.name
                    ),
                );
            }
        }
        if r.max_active_users == Some(0) {
            warning(
                issues,
                format!(
                    "role `{}` has max_active_users 0: nobody can activate it",
                    r.name
                ),
            );
        }
        for (u, d) in &r.per_user_activation {
            if g.user_node(u).is_none() {
                error(
                    issues,
                    format!("role `{}` has a Δ for unknown user `{u}`", r.name),
                );
            }
            if d.is_zero() {
                error(
                    issues,
                    format!("role `{}` per-user Δ of zero for `{u}`", r.name),
                );
            }
        }
    }
    for (kind, sets) in [
        ("disabling", &g.disabling_sod),
        ("enabling", &g.enabling_sod),
    ] {
        for d in sets {
            if d.roles.len() < 2 {
                error(
                    issues,
                    format!("{kind} SoD `{}` needs at least two roles", d.name),
                );
            }
        }
    }
}

fn check_dependencies(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    for pc in &g.post_conditions {
        if pc.role == pc.requires {
            error(
                issues,
                format!("post-condition `{}` requires itself", pc.role),
            );
        }
        for r in [&pc.role, &pc.requires] {
            if g.role_node(r).is_none() {
                error(
                    issues,
                    format!("post-condition references unknown role `{r}`"),
                );
            }
        }
    }
    for p in &g.prerequisites {
        if p.role == p.requires_active {
            error(
                issues,
                format!(
                    "prerequisite `{}` requires itself active: it could never be activated",
                    p.role
                ),
            );
        }
        for r in [&p.role, &p.requires_active] {
            if g.role_node(r).is_none() {
                error(
                    issues,
                    format!("prerequisite references unknown role `{r}`"),
                );
            }
        }
    }
}

fn check_security(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    let mut seen = HashSet::new();
    for s in &g.security {
        if !seen.insert(&s.name) {
            error(issues, format!("duplicate security policy `{}`", s.name));
        }
        if s.threshold == 0 {
            warning(
                issues,
                format!(
                    "security policy `{}` threshold 0 trips on every denial",
                    s.name
                ),
            );
        }
        if s.window.is_zero() {
            error(
                issues,
                format!("security policy `{}` has an empty window", s.name),
            );
        }
        for a in &s.actions {
            if let SecurityAction::DisableRole(r) = a {
                if g.role_node(r).is_none() {
                    error(
                        issues,
                        format!("security policy `{}` disables unknown role `{r}`", s.name),
                    );
                }
            }
        }
    }
}

fn check_triggers(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    let mut names = HashSet::new();
    for t in &g.triggers {
        if !names.insert(&t.name) {
            error(issues, format!("duplicate trigger name `{}`", t.name));
        }
        for r in std::iter::once(&t.on_role)
            .chain(std::iter::once(&t.action_role))
            .chain(t.when.iter().map(|(r, _)| r))
        {
            if g.role_node(r).is_none() {
                error(
                    issues,
                    format!("trigger `{}` references unknown role `{r}`", t.name),
                );
            }
        }
        // An immediate self-feeding trigger (on enable A then enable A)
        // would loop; the executor's depth guard would cut it, but reject
        // it up front.
        if t.on_role == t.action_role && t.on_kind == t.action_kind && t.after.is_zero() {
            error(
                issues,
                format!("trigger `{}` immediately re-fires itself", t.name),
            );
        }
    }
}

fn check_context(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    let mut seen = HashSet::new();
    for c in &g.context_constraints {
        if g.role_node(&c.role).is_none() {
            error(
                issues,
                format!("context constraint references unknown role `{}`", c.role),
            );
        }
        if !seen.insert((&c.role, &c.key)) {
            error(
                issues,
                format!(
                    "role `{}` has two context constraints on key `{}` \
                     (only one value can hold at a time)",
                    c.role, c.key
                ),
            );
        }
    }
}

fn check_privacy(g: &PolicyGraph, issues: &mut Vec<Issue>) {
    let known: HashSet<&str> = g.purposes.iter().map(|p| p.name.as_str()).collect();
    // Parent references + cycles along parent chains.
    for p in &g.purposes {
        if let Some(parent) = &p.parent {
            if !known.contains(parent.as_str()) {
                error(
                    issues,
                    format!("purpose `{}` has unknown parent `{parent}`", p.name),
                );
                continue;
            }
            // Walk up; the chain is short, bound by purpose count.
            let mut cur = parent.as_str();
            let mut steps = 0;
            loop {
                if cur == p.name {
                    error(issues, format!("purpose `{}` is its own ancestor", p.name));
                    break;
                }
                steps += 1;
                if steps > g.purposes.len() {
                    break;
                }
                match g
                    .purposes
                    .iter()
                    .find(|x| x.name == cur)
                    .and_then(|x| x.parent.as_deref())
                {
                    Some(next) => cur = next,
                    None => break,
                }
            }
        }
    }
    for op in &g.object_policies {
        if !known.contains(op.purpose.as_str()) {
            error(
                issues,
                format!("object policy references unknown purpose `{}`", op.purpose),
            );
        }
        if g.role_node(&op.role).is_none() {
            error(
                issues,
                format!("object policy references unknown role `{}`", op.role),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{PrerequisiteSpec, PurposeSpec, SecuritySpec};
    use snoop::Dur;

    fn errors(g: &PolicyGraph) -> Vec<String> {
        check(g)
            .into_iter()
            .filter(|i| i.severity == Severity::Error)
            .map(|i| i.message)
            .collect()
    }

    #[test]
    fn xyz_is_consistent() {
        let g = PolicyGraph::enterprise_xyz();
        assert!(is_consistent(&g), "{:?}", check(&g));
    }

    #[test]
    fn hierarchy_cycle_detected() {
        let mut g = PolicyGraph::new("t");
        g.role("a");
        g.role("b");
        g.inherits("a", "b");
        g.inherits("b", "a");
        assert!(errors(&g).iter().any(|m| m.contains("cycle")));
        // Self-loop.
        let mut g2 = PolicyGraph::new("t");
        g2.role("a");
        g2.inherits("a", "a");
        assert!(errors(&g2)
            .iter()
            .any(|m| m.contains("inherits from itself")));
    }

    #[test]
    fn ssd_with_related_roles_rejected() {
        let mut g = PolicyGraph::new("t");
        g.role("senior");
        g.role("junior");
        g.inherits("senior", "junior");
        g.ssd_set("bad", &["senior", "junior"], 2);
        assert!(errors(&g)
            .iter()
            .any(|m| m.contains("hierarchically related")));
    }

    #[test]
    fn common_senior_ssd_conflict_detected() {
        // PC and AC are unrelated pairwise, but a fresh `Boss` atop both
        // branches is authorized for the whole purchase-approval SSD set.
        let mut g = PolicyGraph::enterprise_xyz();
        g.role("Boss");
        g.inherits("Boss", "PM");
        g.inherits("Boss", "AM");
        assert!(
            errors(&g).iter().any(|m| m.contains("common senior")),
            "{:?}",
            check(&g)
        );
        assert!(!is_consistent(&g));
    }

    #[test]
    fn assignment_violating_ssd_rejected() {
        let mut g = PolicyGraph::enterprise_xyz();
        g.user("eve");
        g.assign("eve", "PM"); // PM brings PC via hierarchy
        g.assign("eve", "AC");
        assert!(errors(&g).iter().any(|m| m.contains("SSD set")));
    }

    #[test]
    fn sod_cardinality_bounds() {
        let mut g = PolicyGraph::new("t");
        g.role("a");
        g.role("b");
        g.ssd_set("x", &["a", "b"], 1);
        assert!(errors(&g)
            .iter()
            .any(|m| m.contains("cardinality 1 invalid")));
        let mut g2 = PolicyGraph::new("t");
        g2.role("a");
        g2.ssd_set("x", &["a"], 2);
        assert!(errors(&g2).iter().any(|m| m.contains("at least two roles")));
    }

    #[test]
    fn redundant_dsd_warned() {
        let mut g = PolicyGraph::new("t");
        g.role("a");
        g.role("b");
        g.ssd_set("s", &["a", "b"], 2);
        g.dsd_set("d", &["a", "b"], 2);
        let warns: Vec<_> = check(&g)
            .into_iter()
            .filter(|i| i.severity == Severity::Warning)
            .collect();
        assert!(warns.iter().any(|w| w.message.contains("redundant")));
        assert!(is_consistent(&g), "warning only");
    }

    #[test]
    fn temporal_checks() {
        let mut g = PolicyGraph::new("t");
        g.role("r").enabling = Some(crate::graph::DailyWindow {
            start_h: 8,
            start_m: 0,
            end_h: 8,
            end_m: 0,
        });
        assert!(errors(&g)
            .iter()
            .any(|m| m.contains("window") && m.contains("empty")));
        let mut g2 = PolicyGraph::new("t");
        g2.role("r").max_activation = Some(Dur::ZERO);
        assert!(errors(&g2).iter().any(|m| m.contains("max_activation")));
    }

    #[test]
    fn dependency_self_reference() {
        let mut g = PolicyGraph::new("t");
        g.role("a");
        g.prerequisites.push(PrerequisiteSpec {
            role: "a".into(),
            requires_active: "a".into(),
        });
        assert!(errors(&g)
            .iter()
            .any(|m| m.contains("requires itself active")));
    }

    #[test]
    fn security_and_privacy_checks() {
        let mut g = PolicyGraph::new("t");
        g.security.push(SecuritySpec {
            name: "s".into(),
            threshold: 5,
            window: Dur::ZERO,
            actions: vec![],
        });
        assert!(errors(&g).iter().any(|m| m.contains("empty window")));

        let mut g2 = PolicyGraph::new("t");
        g2.purposes.push(PurposeSpec {
            name: "a".into(),
            parent: Some("b".into()),
        });
        g2.purposes.push(PurposeSpec {
            name: "b".into(),
            parent: Some("a".into()),
        });
        assert!(errors(&g2).iter().any(|m| m.contains("ancestor")));
    }

    #[test]
    fn unknown_references() {
        let mut g = PolicyGraph::new("t");
        g.inherits("ghost", "phantom");
        let errs = errors(&g);
        assert_eq!(errs.len(), 2);
        g.roles.clear();
        g.hierarchy.clear();
        g.assign("nobody", "nothing");
        assert_eq!(errors(&g).len(), 2);
    }
}
