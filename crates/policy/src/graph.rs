//! The high-level access-control-policy graph — the data structure behind
//! Figure 1 of the paper.
//!
//! Role nodes carry relationship *flags* (hierarchy, static SoD, dynamic
//! SoD, temporal, active security); hierarchy edges connect parent (senior)
//! nodes to children; SoD relations are the "dashed lines". Each child node
//! keeps a *subscriber list* of pointers to its parents, exactly as the
//! paper describes — the pointers are derived by the system, not specified
//! by users. The graph is what the RBAC-Manager GUI produced; here it is
//! built programmatically or parsed from the DSL in [`crate::spec`].

use serde::{Deserialize, Serialize};
use snoop::Dur;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A daily time window `HH:MM – HH:MM` in a policy (shift times, SoD
/// windows). Compiled to calendar events / [`gtrbac::PeriodicWindow`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DailyWindow {
    /// Opening hour.
    pub start_h: u32,
    /// Opening minute.
    pub start_m: u32,
    /// Closing hour.
    pub end_h: u32,
    /// Closing minute.
    pub end_m: u32,
}

impl fmt::Display for DailyWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02}:{:02}-{:02}:{:02}",
            self.start_h, self.start_m, self.end_h, self.end_m
        )
    }
}

/// The relationship flags stored in a role node (Figure 1: "flags
/// corresponding to relationships … are stored in the node").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoleFlags {
    /// Takes part in the role hierarchy.
    pub hierarchy: bool,
    /// Member of a static SoD relation.
    pub static_sod: bool,
    /// Member of a dynamic SoD relation.
    pub dynamic_sod: bool,
    /// Has temporal constraints (enabling window / activation duration).
    pub temporal: bool,
    /// Referenced by an active-security or dependency constraint.
    pub active_security: bool,
    /// Has context-aware activation constraints.
    pub context: bool,
}

/// One role node of the policy graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoleNode {
    /// Role name (unique).
    pub name: String,
    /// Max distinct users active at once (paper Rule 4), if bounded.
    pub max_active_users: Option<usize>,
    /// Daily enabling window (shift), if temporally constrained.
    pub enabling: Option<DailyWindow>,
    /// Max duration of one activation (role-wide Δ).
    pub max_activation: Option<Dur>,
    /// Per-user Δ overrides (user name → Δ).
    pub per_user_activation: BTreeMap<String, Dur>,
}

impl RoleNode {
    fn new(name: &str) -> RoleNode {
        RoleNode {
            name: name.to_string(),
            max_active_users: None,
            enabling: None,
            max_activation: None,
            per_user_activation: BTreeMap::new(),
        }
    }
}

/// One user node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserNode {
    /// User name (unique).
    pub name: String,
    /// Max roles this user may have active at once (paper scenario 1).
    pub max_active_roles: Option<usize>,
}

/// A named permission: an operation on an object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermNode {
    /// Permission name (unique).
    pub name: String,
    /// Operation name.
    pub op: String,
    /// Object name.
    pub obj: String,
}

/// A static or dynamic SoD set in the policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SodSpec {
    /// Constraint name (unique within its kind).
    pub name: String,
    /// Role names.
    pub roles: BTreeSet<String>,
    /// Cardinality `n`: at most `n - 1` of `roles` per user/session.
    pub cardinality: usize,
}

/// A disabling-time SoD constraint (paper Rule 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisablingSodSpec {
    /// Constraint name.
    pub name: String,
    /// Role names that may not be disabled together.
    pub roles: BTreeSet<String>,
    /// The daily `(I, P)` window it applies in.
    pub window: DailyWindow,
}

/// A post-condition control-flow dependency (paper Rule 8).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostConditionSpec {
    /// The trigger role (SysAdmin).
    pub role: String,
    /// The role that must be enabled with it (SysAudit).
    pub requires: String,
}

/// A prerequisite-activation dependency (paper Rule 9).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrerequisiteSpec {
    /// The dependent role (JuniorEmp).
    pub role: String,
    /// The role that must be active somewhere first (Manager).
    pub requires_active: String,
}

/// Reaction of an active-security policy when its threshold trips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecurityAction {
    /// Alert the administrators (always sensible; reports included).
    Alert,
    /// Disable all activity-control rules (lockdown).
    DisableActivityRules,
    /// Disable one role (deactivating it everywhere).
    DisableRole(String),
}

/// An active-security threshold policy: more than `threshold` denials
/// within `window` triggers the actions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecuritySpec {
    /// Policy name.
    pub name: String,
    /// Denial-count threshold.
    pub threshold: usize,
    /// Sliding window.
    pub window: Dur,
    /// What to do when tripped.
    pub actions: Vec<SecurityAction>,
}

/// Which role-status event a TRBAC trigger reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatusKind {
    /// The role was enabled.
    Enabled,
    /// The role was disabled.
    Disabled,
}

/// A TRBAC role trigger (Bertino et al., TISSEC '01): on a role-status
/// event, if all status conditions hold, enable/disable another role,
/// optionally after a delay Δ — "periodic role enabling and disabling, and
/// temporal dependencies among such actions".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggerSpec {
    /// Trigger name (unique).
    pub name: String,
    /// The role whose status event fires the trigger.
    pub on_role: String,
    /// Enable or disable event.
    pub on_kind: StatusKind,
    /// Status conditions checked at fire time: (role, must be enabled?).
    pub when: Vec<(String, bool)>,
    /// The role the action targets.
    pub action_role: String,
    /// Enable or disable it.
    pub action_kind: StatusKind,
    /// Delay before the action (zero = immediate).
    pub after: Dur,
}

/// A context-aware constraint (context-aware RBAC, Moyer & Ahamad): the
/// role may be active only while the environment context `key` equals
/// `value` (e.g. `location = ward`, `network = secure`). Context changes
/// arrive as external events and *deactivate* roles whose constraints no
/// longer hold — the paper's "when a user moves from one location to
/// another, external events can trigger some rules that
/// activate/deactivate roles" (§3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextConstraintSpec {
    /// The constrained role.
    pub role: String,
    /// Context key (location, network, …).
    pub key: String,
    /// Required value.
    pub value: String,
}

/// A privacy purpose (privacy-aware RBAC), optionally under a parent
/// purpose (purpose hierarchies).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PurposeSpec {
    /// Purpose name (unique).
    pub name: String,
    /// Parent purpose, if any.
    pub parent: Option<String>,
}

/// A privacy object policy: (op, obj) by `role` requires an access purpose
/// at or under `purpose`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectPolicySpec {
    /// Operation name.
    pub op: String,
    /// Object name.
    pub obj: String,
    /// Role the policy binds.
    pub role: String,
    /// Required purpose.
    pub purpose: String,
}

/// The complete high-level policy: everything the paper's RBAC Manager
/// captured, plus the extensions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyGraph {
    /// Enterprise/policy name.
    pub name: String,
    /// Role nodes, in declaration order.
    pub roles: Vec<RoleNode>,
    /// User nodes.
    pub users: Vec<UserNode>,
    /// Named permissions.
    pub permissions: Vec<PermNode>,
    /// Hierarchy edges (senior name, junior name).
    pub hierarchy: Vec<(String, String)>,
    /// User-role assignments (user name, role name).
    pub assignments: Vec<(String, String)>,
    /// Permission grants (permission name, role name).
    pub grants: Vec<(String, String)>,
    /// Static SoD sets.
    pub ssd: Vec<SodSpec>,
    /// Dynamic SoD sets.
    pub dsd: Vec<SodSpec>,
    /// Disabling-time SoD constraints.
    pub disabling_sod: Vec<DisablingSodSpec>,
    /// Enabling-time SoD constraints (same shape: role set + daily window).
    pub enabling_sod: Vec<DisablingSodSpec>,
    /// Post-condition CFDs.
    pub post_conditions: Vec<PostConditionSpec>,
    /// Prerequisite activations.
    pub prerequisites: Vec<PrerequisiteSpec>,
    /// Active-security threshold policies.
    pub security: Vec<SecuritySpec>,
    /// Context-aware activation constraints.
    pub context_constraints: Vec<ContextConstraintSpec>,
    /// TRBAC role triggers.
    pub triggers: Vec<TriggerSpec>,
    /// Privacy purposes.
    pub purposes: Vec<PurposeSpec>,
    /// Privacy object policies.
    pub object_policies: Vec<ObjectPolicySpec>,
}

impl PolicyGraph {
    /// An empty policy.
    pub fn new(name: &str) -> PolicyGraph {
        PolicyGraph {
            name: name.to_string(),
            ..PolicyGraph::default()
        }
    }

    // ---- builder API (what the GUI's drag-n-drop produced) -----------------

    /// Add a role node (idempotent).
    pub fn role(&mut self, name: &str) -> &mut RoleNode {
        if let Some(i) = self.roles.iter().position(|r| r.name == name) {
            return &mut self.roles[i];
        }
        self.roles.push(RoleNode::new(name));
        self.roles.last_mut().expect("just pushed")
    }

    /// Add a user node (idempotent).
    pub fn user(&mut self, name: &str) -> &mut UserNode {
        if let Some(i) = self.users.iter().position(|u| u.name == name) {
            return &mut self.users[i];
        }
        self.users.push(UserNode {
            name: name.to_string(),
            max_active_roles: None,
        });
        self.users.last_mut().expect("just pushed")
    }

    /// Declare a named permission.
    pub fn permission(&mut self, name: &str, op: &str, obj: &str) {
        if !self.permissions.iter().any(|p| p.name == name) {
            self.permissions.push(PermNode {
                name: name.to_string(),
                op: op.to_string(),
                obj: obj.to_string(),
            });
        }
    }

    /// Connect `senior` above `junior` (idempotent).
    pub fn inherits(&mut self, senior: &str, junior: &str) {
        let edge = (senior.to_string(), junior.to_string());
        if !self.hierarchy.contains(&edge) {
            self.hierarchy.push(edge);
        }
    }

    /// Assign a user to a role (idempotent).
    pub fn assign(&mut self, user: &str, role: &str) {
        let pair = (user.to_string(), role.to_string());
        if !self.assignments.contains(&pair) {
            self.assignments.push(pair);
        }
    }

    /// Grant a permission to a role (idempotent).
    pub fn grant(&mut self, perm: &str, role: &str) {
        let pair = (perm.to_string(), role.to_string());
        if !self.grants.contains(&pair) {
            self.grants.push(pair);
        }
    }

    /// Add a static SoD set (the dashed line in Figure 1).
    pub fn ssd_set(&mut self, name: &str, roles: &[&str], cardinality: usize) {
        self.ssd.push(SodSpec {
            name: name.to_string(),
            roles: roles.iter().map(|s| s.to_string()).collect(),
            cardinality,
        });
    }

    /// Add a dynamic SoD set.
    pub fn dsd_set(&mut self, name: &str, roles: &[&str], cardinality: usize) {
        self.dsd.push(SodSpec {
            name: name.to_string(),
            roles: roles.iter().map(|s| s.to_string()).collect(),
            cardinality,
        });
    }

    // ---- derived structure (the system-generated pointers) -----------------

    /// Look up a role node.
    pub fn role_node(&self, name: &str) -> Option<&RoleNode> {
        self.roles.iter().find(|r| r.name == name)
    }

    /// Look up a user node.
    pub fn user_node(&self, name: &str) -> Option<&UserNode> {
        self.users.iter().find(|u| u.name == name)
    }

    /// Immediate parents (seniors) of a role — the node's subscriber list
    /// in Figure 1.
    pub fn parents_of(&self, role: &str) -> Vec<&str> {
        self.hierarchy
            .iter()
            .filter(|(_, j)| j == role)
            .map(|(s, _)| s.as_str())
            .collect()
    }

    /// Immediate children (juniors) of a role.
    pub fn children_of(&self, role: &str) -> Vec<&str> {
        self.hierarchy
            .iter()
            .filter(|(s, _)| s == role)
            .map(|(_, j)| j.as_str())
            .collect()
    }

    /// The derived flags of a role node — set from the relationships the
    /// role takes part in, exactly as the GUI set them "when the policies
    /// are specified".
    pub fn role_flags(&self, role: &str) -> RoleFlags {
        let in_hierarchy = self.hierarchy.iter().any(|(s, j)| s == role || j == role);
        let in_ssd = self.ssd.iter().any(|s| s.roles.contains(role));
        let in_dsd = self.dsd.iter().any(|s| s.roles.contains(role));
        let node = self.role_node(role);
        let temporal = node.is_some_and(|n| {
            n.enabling.is_some() || n.max_activation.is_some() || !n.per_user_activation.is_empty()
        });
        let in_security = self.disabling_sod.iter().any(|d| d.roles.contains(role))
            || self.enabling_sod.iter().any(|d| d.roles.contains(role))
            || self
                .triggers
                .iter()
                .any(|t| t.on_role == role || t.action_role == role)
            || self
                .post_conditions
                .iter()
                .any(|p| p.role == role || p.requires == role)
            || self
                .prerequisites
                .iter()
                .any(|p| p.role == role || p.requires_active == role)
            || self.security.iter().any(|s| {
                s.actions
                    .iter()
                    .any(|a| matches!(a, SecurityAction::DisableRole(r) if r == role))
            });
        let in_context = self.context_constraints.iter().any(|c| c.role == role);
        RoleFlags {
            hierarchy: in_hierarchy,
            static_sod: in_ssd,
            dynamic_sod: in_dsd,
            temporal,
            active_security: in_security,
            context: in_context,
        }
    }

    /// Render the policy graph in Graphviz DOT form — the Figure-1 picture:
    /// role nodes (temporally constrained ones shaded), solid arrows for
    /// hierarchy (senior → junior), dashed undirected edges for static SoD,
    /// dotted for dynamic SoD.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph policy {\n");
        let _ = writeln!(out, "  label=\"{}\";", self.name);
        for r in &self.roles {
            let flags = self.role_flags(&r.name);
            let style = if flags.temporal {
                ",style=filled,fillcolor=lightyellow"
            } else {
                ""
            };
            let _ = writeln!(out, "  \"{}\" [shape=box{style}];", r.name);
        }
        for (s, j) in &self.hierarchy {
            let _ = writeln!(out, "  \"{s}\" -- \"{j}\" [dir=forward];");
        }
        for set in &self.ssd {
            let roles: Vec<&String> = set.roles.iter().collect();
            for w in roles.windows(2) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -- \"{}\" [style=dashed,label=\"SSD\"];",
                    w[0], w[1]
                );
            }
        }
        for set in &self.dsd {
            let roles: Vec<&String> = set.roles.iter().collect();
            for w in roles.windows(2) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -- \"{}\" [style=dotted,label=\"DSD\"];",
                    w[0], w[1]
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// The paper's enterprise XYZ (Figure 1): purchase and approval
    /// branches over a shared Clerk, with a static SoD between PC and AC.
    pub fn enterprise_xyz() -> PolicyGraph {
        let mut g = PolicyGraph::new("XYZ");
        for r in ["PM", "PC", "AM", "AC", "Clerk"] {
            g.role(r);
        }
        g.inherits("PM", "PC");
        g.inherits("PC", "Clerk");
        g.inherits("AM", "AC");
        g.inherits("AC", "Clerk");
        g.ssd_set("purchase-approval", &["PC", "AC"], 2);
        g.permission("place_order", "create", "purchase_order");
        g.permission("approve_order", "approve", "purchase_order");
        g.permission("read_order", "read", "purchase_order");
        g.grant("place_order", "PC");
        g.grant("approve_order", "AC");
        g.grant("read_order", "Clerk");
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_idempotent() {
        let mut g = PolicyGraph::new("t");
        g.role("a");
        g.role("a");
        assert_eq!(g.roles.len(), 1);
        g.inherits("a", "b"); // b not declared yet — consistency will flag it
        g.inherits("a", "b");
        assert_eq!(g.hierarchy.len(), 1);
        g.user("u");
        g.user("u");
        assert_eq!(g.users.len(), 1);
        g.assign("u", "a");
        g.assign("u", "a");
        assert_eq!(g.assignments.len(), 1);
    }

    #[test]
    fn xyz_structure_matches_figure_1() {
        let g = PolicyGraph::enterprise_xyz();
        assert_eq!(g.roles.len(), 5);
        // PC's parents (subscriber list) point to PM.
        assert_eq!(g.parents_of("PC"), vec!["PM"]);
        // Clerk has two parents: PC and AC.
        let mut clerk_parents = g.parents_of("Clerk");
        clerk_parents.sort();
        assert_eq!(clerk_parents, vec!["AC", "PC"]);
        // Flags: PC has hierarchy + static SoD (so rule AAR₂ applies).
        let pc = g.role_flags("PC");
        assert!(pc.hierarchy);
        assert!(pc.static_sod);
        assert!(!pc.dynamic_sod);
        // PM is in the hierarchy but not (directly) in the SoD set — it
        // inherits the constraint through PC at enforcement time.
        let pm = g.role_flags("PM");
        assert!(pm.hierarchy);
        assert!(!pm.static_sod);
    }

    #[test]
    fn flags_reflect_constraints() {
        let mut g = PolicyGraph::new("t");
        g.role("solo");
        let f = g.role_flags("solo");
        assert_eq!(f, RoleFlags::default());

        g.role("shift").enabling = Some(DailyWindow {
            start_h: 8,
            start_m: 0,
            end_h: 16,
            end_m: 0,
        });
        assert!(g.role_flags("shift").temporal);

        g.role("j");
        g.role("m");
        g.prerequisites.push(PrerequisiteSpec {
            role: "j".into(),
            requires_active: "m".into(),
        });
        assert!(g.role_flags("j").active_security);
        assert!(g.role_flags("m").active_security);

        g.role("d1");
        g.role("d2");
        g.dsd_set("x", &["d1", "d2"], 2);
        assert!(g.role_flags("d1").dynamic_sod);
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn figure_1_dot_rendering() {
        let g = PolicyGraph::enterprise_xyz();
        let dot = g.to_dot();
        assert!(dot.starts_with("graph policy {"));
        assert!(dot.contains("\"PM\" -- \"PC\" [dir=forward];"));
        assert!(dot.contains("\"AC\" -- \"PC\" [style=dashed,label=\"SSD\"];"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn temporal_roles_are_shaded() {
        let mut g = PolicyGraph::new("t");
        g.role("shift").enabling = Some(DailyWindow {
            start_h: 8,
            start_m: 0,
            end_h: 16,
            end_m: 0,
        });
        g.role("plain");
        let dot = g.to_dot();
        assert!(dot.contains("\"shift\" [shape=box,style=filled,fillcolor=lightyellow];"));
        assert!(dot.contains("\"plain\" [shape=box];"));
    }
}
