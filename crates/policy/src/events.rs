//! Naming conventions for the primitive/composite events the generator
//! wires up and the engine raises.
//!
//! In the paper each role gets role-specific event generators
//! (`addActiveRoleR1`, `removeSessionRoleR1`, …) raised by the reactive
//! objects; here the engine raises them by name. Keeping the convention in
//! one place means the generator, regenerator and engine can never drift.

/// `U → AddActiveRole_R(sessionId)` — a user requests activation of `role`.
pub fn add_active(role: &str) -> String {
    format!("addActiveRole_{role}")
}

/// Staged activation (cap-guarded roles): the AAR rule raises this, the CC
/// rule applies it — the paper's `addSessionRoleR1` → CC₁ cascade (Rule 4).
pub fn session_role_add(role: &str) -> String {
    format!("addSessionRole_{role}")
}

/// `role` was successfully added to a session (starts Δ timers, Rule 7).
pub fn role_added(role: &str) -> String {
    format!("sessionRoleAdded_{role}")
}

/// A user requests deactivation of `role`.
pub fn drop_active(role: &str) -> String {
    format!("dropActiveRole_{role}")
}

/// `role` was deactivated in a session (cancels Δ timers, cascades
/// prerequisite deactivations — Rule 9's ET₁₇).
pub fn role_dropped(role: &str) -> String {
    format!("sessionRoleDropped_{role}")
}

/// Request to enable `role` (paper's `enableRoleSysAdmin`).
pub fn enable_role(role: &str) -> String {
    format!("enableRole_{role}")
}

/// Request to disable `role` (paper's `roleDisableNurse`).
pub fn disable_role(role: &str) -> String {
    format!("disableRole_{role}")
}

/// `role` was enabled (status notification; feeds TRBAC role triggers).
pub fn role_enabled(role: &str) -> String {
    format!("roleEnabled_{role}")
}

/// `role` was disabled (status notification; feeds TRBAC role triggers).
pub fn role_disabled(role: &str) -> String {
    format!("roleDisabled_{role}")
}

/// The PLUS node delaying trigger `name`'s action by Δ.
pub fn trigger_delay(name: &str) -> String {
    format!("trigger_{name}")
}

/// The primitive event started when trigger `name`'s conditions held.
pub fn trigger_fire(name: &str) -> String {
    format!("triggerFire_{name}")
}

/// The PLUS node enforcing the role-wide Δ of `role`.
pub fn delta(role: &str) -> String {
    format!("delta_{role}")
}

/// The filtered activation event for a per-user Δ (paper's
/// `Bob → addActiveRoleR3`).
pub fn user_activation(role: &str, user: &str) -> String {
    format!("activated_{role}_by_{user}")
}

/// The PLUS node enforcing the per-user Δ of (`role`, `user`).
pub fn delta_user(role: &str, user: &str) -> String {
    format!("delta_{role}_{user}")
}

/// `user → checkAccess(sessionId, operation, object)` — Rule 5's E₆.
pub const CHECK_ACCESS: &str = "checkAccess";

/// Administrative: `assignUser(user, role)`.
pub const ASSIGN_USER: &str = "assignUser";

/// Administrative: `deassignUser(user, role)`.
pub const DEASSIGN_USER: &str = "deassignUser";

/// Raised by the engine after any denied request — the feed for
/// active-security threshold rules.
pub const ACCESS_DENIED: &str = "accessDenied";

/// External event: an environment context (location, network, …) changed.
/// Context-constrained roles re-validate and deactivate if violated — the
/// paper's "when a user moves from one location to another, external
/// events can trigger some rules that activate/deactivate roles" (§3).
pub const CONTEXT_CHANGED: &str = "contextChanged";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_role_scoped_and_stable() {
        assert_eq!(add_active("PC"), "addActiveRole_PC");
        assert_eq!(session_role_add("PC"), "addSessionRole_PC");
        assert_eq!(role_added("PC"), "sessionRoleAdded_PC");
        assert_eq!(drop_active("PC"), "dropActiveRole_PC");
        assert_eq!(role_dropped("PC"), "sessionRoleDropped_PC");
        assert_eq!(delta_user("R3", "bob"), "delta_R3_bob");
        assert_ne!(add_active("A"), add_active("B"));
    }
}
