//! Rule regeneration on policy change (§5 of the paper).
//!
//! "When there is a change in the policy — for example, the shift time of
//! role 'day doctor' is changed from (8–4) to (9–5) — it can be easily
//! changed in the high level specification and the corresponding rules can
//! be regenerated … without burdening the administrator."
//!
//! [`regenerate`] diffs the old and new policy graphs role by role, rewrites
//! only the affected roles' rules in place (rule names are deterministic, so
//! [`sentinel::RulePool::add`] overwrites), and updates the monitor-side
//! policy data. Entity-set changes (roles/users/permissions added or
//! removed, hierarchy or SoD membership changes) alter the enforcement of
//! *other* roles too; those fall back to full re-instantiation, which
//! [`needs_full_rebuild`] detects.

use crate::generate::{self, GenStats, InstantiateError, Instantiated};
use crate::graph::{PolicyGraph, RoleNode};
use gtrbac::{BoundedPeriodic, PeriodicWindow};
use std::collections::BTreeSet;

/// What a regeneration did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegenReport {
    /// Roles whose rules were rewritten.
    pub regenerated_roles: Vec<String>,
    /// Rules rewritten (sum over regenerated roles).
    pub rules_rewritten: usize,
    /// True when the change forced a full rebuild instead.
    pub full_rebuild: bool,
    /// Total live rules after regeneration.
    pub total_rules: usize,
}

/// Does the change require a full rebuild? True when anything beyond
/// per-role properties (caps, windows, durations) changed.
pub fn needs_full_rebuild(old: &PolicyGraph, new: &PolicyGraph) -> bool {
    fn role_names(g: &PolicyGraph) -> BTreeSet<&str> {
        g.roles.iter().map(|r| r.name.as_str()).collect()
    }
    role_names(old) != role_names(new)
        || old.users != new.users
        || old.permissions != new.permissions
        || old.hierarchy != new.hierarchy
        || old.assignments != new.assignments
        || old.grants != new.grants
        || old.ssd != new.ssd
        || old.dsd != new.dsd
        || old.disabling_sod != new.disabling_sod
        || old.enabling_sod != new.enabling_sod
        || old.post_conditions != new.post_conditions
        || old.prerequisites != new.prerequisites
        || old.security != new.security
        || old.context_constraints != new.context_constraints
        || old.triggers != new.triggers
        || old.purposes != new.purposes
        || old.object_policies != new.object_policies
}

/// Roles whose node properties differ between the two graphs.
pub fn changed_roles<'a>(old: &'a PolicyGraph, new: &'a PolicyGraph) -> Vec<&'a RoleNode> {
    new.roles
        .iter()
        .filter(|nr| old.role_node(&nr.name) != Some(*nr))
        .collect()
}

/// Apply the `new` policy to an existing instantiation.
///
/// Incremental when only role properties changed; otherwise rebuilds from
/// scratch (the report says which happened). On success `inst.graph` is the
/// new policy.
pub fn regenerate(
    inst: &mut Instantiated,
    new: &PolicyGraph,
) -> Result<RegenReport, InstantiateError> {
    if needs_full_rebuild(&inst.graph, new) {
        let fresh = generate::instantiate(new, inst.detector.now())?;
        let total = fresh.pool.len();
        *inst = fresh;
        return Ok(RegenReport {
            regenerated_roles: Vec::new(),
            rules_rewritten: 0,
            full_rebuild: true,
            total_rules: total,
        });
    }

    let changed: Vec<RoleNode> = changed_roles(&inst.graph, new)
        .into_iter()
        .cloned()
        .collect();
    let mut report = RegenReport::default();
    for node in &changed {
        let rid = inst.binding.role(&node.name);
        // Monitor-side policy data.
        inst.system
            .set_role_activation_cap(rid, node.max_active_users)?;
        let mut policy = gtrbac::RoleTemporalPolicy::default();
        if let Some(w) = &node.enabling {
            policy.enabling = Some(BoundedPeriodic::window(PeriodicWindow::daily(
                w.start_h, w.start_m, w.end_h, w.end_m,
            )));
        }
        policy.max_activation = node.max_activation;
        for (u, d) in &node.per_user_activation {
            policy
                .per_user_max_activation
                .insert(inst.binding.user(u), *d);
        }
        inst.temporal.set(rid, policy);
        // The role's enabled state must follow the new window immediately.
        if inst.temporal.should_be_enabled(rid, inst.detector.now()) {
            inst.system.enable_role(rid)?;
        } else {
            inst.system.disable_role(rid, true)?;
        }
        // Retract Δ state scheduled under the old policy. A *changed*
        // duration hash-conses to a different Plus node, so the old node
        // must be fully retired (timers cancelled, deterministic name
        // unbound, detached so future activations stop feeding it) before
        // the regenerated rules can claim `delta_<role>` for the new node.
        // An unchanged duration keeps its node; only pending timers go.
        let old_role = inst.graph.role_node(&node.name).cloned();
        let mut stale_deltas = Vec::new();
        if let Some(old) = &old_role {
            if old.max_activation != node.max_activation {
                stale_deltas.push(crate::events::delta(&node.name));
            }
            for user in old.per_user_activation.keys() {
                if old.per_user_activation.get(user) != node.per_user_activation.get(user) {
                    stale_deltas.push(crate::events::delta_user(&node.name, user));
                }
            }
        }
        for name in &stale_deltas {
            if let Some(plus) = inst.detector.lookup(name) {
                inst.detector.retire(plus)?;
            }
        }
        if let Some(plus) = inst.detector.lookup(&crate::events::delta(&node.name)) {
            inst.detector.cancel_timers(plus);
        }

        // Rewrite the role's rules in place.
        let before = rules_of_role(inst, &node.name);
        let mut stats = GenStats::default();
        generate::generate_role(
            new,
            &inst.binding,
            node,
            &mut inst.detector,
            &mut inst.pool,
            &mut stats,
        )?;
        let after = rules_of_role(inst, &node.name);
        report.rules_rewritten += before.union(&after).count();
        report.regenerated_roles.push(node.name.clone());
    }
    inst.graph = new.clone();
    inst.stats.event_nodes = inst.detector.node_count();
    report.total_rules = inst.pool.len();
    Ok(report)
}

/// [`regenerate`] with the static analyzer as a commit gate.
///
/// The new pool is built on a clone of the instantiation and analyzed
/// *before* being committed, so a rejected change leaves `inst` exactly as
/// it was. On success the regeneration report is returned together with
/// the analysis (e.g. so an engine can refresh its acyclic fast-path hint).
pub fn regenerate_verified(
    inst: &mut Instantiated,
    new: &PolicyGraph,
    gate: generate::VerifyGate,
) -> Result<(RegenReport, crate::analyze::AnalysisReport), InstantiateError> {
    let mut staged = inst.clone();
    let report = regenerate(&mut staged, new)?;
    let analysis = crate::analyze::analyze(&staged);
    if gate == generate::VerifyGate::DenyOnError && analysis.error_count() > 0 {
        return Err(InstantiateError::Rejected(
            analysis
                .diagnostics
                .into_iter()
                .filter(|d| d.severity == crate::consistency::Severity::Error)
                .collect(),
        ));
    }
    *inst = staged;
    Ok((report, analysis))
}

/// Names of the live rules scoped to one role (deterministic suffix match).
fn rules_of_role(inst: &Instantiated, role: &str) -> BTreeSet<String> {
    inst.pool
        .iter()
        .filter(|(_, r)| {
            r.name
                .rsplit_once('_')
                .is_some_and(|(_, tail)| tail == role)
                || r.name.contains(&format!("_{role}_"))
        })
        .map(|(_, r)| r.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DailyWindow;
    use snoop::{Civil, Dur, Ts};

    fn day_doctor_policy(start_h: u32, end_h: u32) -> PolicyGraph {
        let mut g = PolicyGraph::new("hospital");
        g.role("DayDoctor").enabling = Some(DailyWindow {
            start_h,
            start_m: 0,
            end_h,
            end_m: 0,
        });
        g.role("Nurse");
        g.user("bob");
        g.assign("bob", "DayDoctor");
        g
    }

    #[test]
    fn shift_change_is_incremental() {
        // The paper's §5 scenario: 8–4 becomes 9–5.
        let old = day_doctor_policy(8, 16);
        let new = day_doctor_policy(9, 17);
        assert!(!needs_full_rebuild(&old, &new));
        let mut inst = generate::instantiate(&old, Ts::ZERO).unwrap();
        let rules_before = inst.pool.len();
        let report = regenerate(&mut inst, &new).unwrap();
        assert!(!report.full_rebuild);
        assert_eq!(report.regenerated_roles, vec!["DayDoctor".to_string()]);
        assert!(report.rules_rewritten >= 4, "AAR/DAR/ENA/DIS at least");
        assert_eq!(inst.pool.len(), rules_before, "same rule population");
        assert_eq!(inst.graph, new);
    }

    #[test]
    fn regenerated_window_changes_enabled_state() {
        let old = day_doctor_policy(8, 16);
        let mut inst =
            generate::instantiate(&old, Civil::new(2000, 1, 5, 8, 30, 0).to_ts()).unwrap();
        let rid = inst.binding.role("DayDoctor");
        assert!(inst.system.is_enabled(rid).unwrap(), "8:30 is inside 8–16");
        // Shift moves to 9–17: at 8:30 the role must now be disabled.
        let new = day_doctor_policy(9, 17);
        regenerate(&mut inst, &new).unwrap();
        assert!(!inst.system.is_enabled(rid).unwrap());
    }

    #[test]
    fn cap_added_and_removed() {
        let base = day_doctor_policy(8, 16);
        let mut capped = base.clone();
        capped.role("Nurse").max_active_users = Some(3);
        let mut inst = generate::instantiate(&base, Ts::ZERO).unwrap();
        assert!(inst.pool.get_by_name("CC_Nurse").is_none());
        regenerate(&mut inst, &capped).unwrap();
        assert!(inst.pool.get_by_name("CC_Nurse").is_some());
        assert_eq!(
            inst.system
                .role_activation_cap(inst.binding.role("Nurse"))
                .unwrap(),
            Some(3)
        );
        // Removing the cap removes the CC rule again.
        regenerate(&mut inst, &base).unwrap();
        assert!(inst.pool.get_by_name("CC_Nurse").is_none());
    }

    #[test]
    fn delta_added_incrementally() {
        let base = day_doctor_policy(8, 16);
        let mut with_delta = base.clone();
        with_delta.role("Nurse").max_activation = Some(Dur::from_hours(2));
        let mut inst = generate::instantiate(&base, Ts::ZERO).unwrap();
        regenerate(&mut inst, &with_delta).unwrap();
        assert!(inst.pool.get_by_name("DELTA_Nurse").is_some());
        assert_eq!(
            inst.temporal
                .activation_limit(inst.binding.role("Nurse"), inst.binding.user("bob")),
            Some(Dur::from_hours(2))
        );
    }

    #[test]
    fn structural_change_forces_full_rebuild() {
        let old = day_doctor_policy(8, 16);
        let mut new = old.clone();
        new.role("Surgeon"); // new entity
        assert!(needs_full_rebuild(&old, &new));
        let mut inst = generate::instantiate(&old, Ts::ZERO).unwrap();
        let report = regenerate(&mut inst, &new).unwrap();
        assert!(report.full_rebuild);
        assert!(inst.pool.get_by_name("AAR1_Surgeon").is_some());
    }

    #[test]
    fn verified_regeneration_rejects_without_committing() {
        use crate::generate::VerifyGate;
        use crate::graph::PostConditionSpec;
        let g = PolicyGraph::enterprise_xyz();
        let mut inst = generate::instantiate(&g, Ts::ZERO).unwrap();
        let rules_before = inst.pool.len();
        let mut bad = g.clone();
        bad.post_conditions.push(PostConditionSpec {
            role: "PM".into(),
            requires: "AM".into(),
        });
        bad.post_conditions.push(PostConditionSpec {
            role: "AM".into(),
            requires: "PM".into(),
        });
        let err = regenerate_verified(&mut inst, &bad, VerifyGate::DenyOnError).unwrap_err();
        assert!(matches!(err, InstantiateError::Rejected(_)), "{err}");
        assert_eq!(inst.graph, g, "rejected change must not commit");
        assert_eq!(inst.pool.len(), rules_before);
        // The same change goes through with the gate off, and the report
        // says why it would have been refused.
        let (report, analysis) = regenerate_verified(&mut inst, &bad, VerifyGate::Off).unwrap();
        assert!(report.full_rebuild);
        assert!(!analysis.proved_terminating());
        assert_eq!(inst.graph, bad);
    }

    #[test]
    fn unchanged_policy_is_a_noop() {
        let g = day_doctor_policy(8, 16);
        let mut inst = generate::instantiate(&g, Ts::ZERO).unwrap();
        let report = regenerate(&mut inst, &g.clone()).unwrap();
        assert!(report.regenerated_roles.is_empty());
        assert_eq!(report.rules_rewritten, 0);
    }
}
