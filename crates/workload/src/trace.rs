//! Seeded event-trace generation: streams of sessions, activations,
//! deactivations and access requests to drive both engines identically.

use crate::enterprise::{role_name, user_name};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One step of a workload trace (entities by index into the generating
/// spec, resolved to ids by the harness).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step {
    /// `user` opens a session.
    CreateSession {
        /// User index.
        user: usize,
    },
    /// `user` closes their most recent open session.
    DeleteSession {
        /// User index.
        user: usize,
    },
    /// `user` activates `role` in their most recent session.
    AddActiveRole {
        /// User index.
        user: usize,
        /// Role index.
        role: usize,
    },
    /// `user` deactivates `role`.
    DropActiveRole {
        /// User index.
        user: usize,
        /// Role index.
        role: usize,
    },
    /// `user`'s most recent session asks for (op, obj).
    CheckAccess {
        /// User index.
        user: usize,
        /// Operation index (mod 8, matching the enterprise generator).
        op: usize,
        /// Object index.
        obj: usize,
    },
    /// Advance logical time by `secs` seconds.
    Advance {
        /// Seconds to advance.
        secs: u64,
    },
    /// An external context event: set `zone` to `ZONES[zone]`.
    SetContext {
        /// Index into [`crate::enterprise::ZONES`].
        zone: usize,
    },
}

impl Step {
    /// The user index this step concerns, if any.
    pub fn user(&self) -> Option<usize> {
        match self {
            Step::CreateSession { user }
            | Step::DeleteSession { user }
            | Step::AddActiveRole { user, .. }
            | Step::DropActiveRole { user, .. }
            | Step::CheckAccess { user, .. } => Some(*user),
            Step::Advance { .. } | Step::SetContext { .. } => None,
        }
    }

    /// Human-readable form using the enterprise naming convention.
    pub fn describe(&self) -> String {
        match self {
            Step::CreateSession { user } => format!("{} opens a session", user_name(*user)),
            Step::DeleteSession { user } => format!("{} closes a session", user_name(*user)),
            Step::AddActiveRole { user, role } => {
                format!("{} activates {}", user_name(*user), role_name(*role))
            }
            Step::DropActiveRole { user, role } => {
                format!("{} deactivates {}", user_name(*user), role_name(*role))
            }
            Step::CheckAccess { user, op, obj } => {
                format!("{} requests op{} on obj{}", user_name(*user), op, obj)
            }
            Step::Advance { secs } => format!("advance {secs}s"),
            Step::SetContext { zone } => {
                format!("context zone = {}", crate::enterprise::ZONES[*zone])
            }
        }
    }
}

/// Mix weights for trace generation (relative frequencies).
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Steps to generate.
    pub steps: usize,
    /// Users in the enterprise.
    pub users: usize,
    /// Roles in the enterprise.
    pub roles: usize,
    /// Objects (permission count) in the enterprise.
    pub objects: usize,
    /// Weight of session opens.
    pub w_session: u32,
    /// Weight of activations.
    pub w_activate: u32,
    /// Weight of deactivations.
    pub w_drop: u32,
    /// Weight of access checks.
    pub w_access: u32,
    /// Weight of time advances.
    pub w_advance: u32,
    /// Weight of context changes.
    pub w_context: u32,
    /// Max seconds per advance step.
    pub max_advance_secs: u64,
}

impl Default for TraceSpec {
    fn default() -> TraceSpec {
        TraceSpec {
            steps: 1000,
            users: 100,
            roles: 50,
            objects: 100,
            w_session: 10,
            w_activate: 30,
            w_drop: 10,
            w_access: 45,
            w_advance: 5,
            w_context: 0,
            max_advance_secs: 3600,
        }
    }
}

/// Generate a trace from the spec and seed.
pub fn generate(spec: &TraceSpec, seed: u64) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = spec.w_session
        + spec.w_activate
        + spec.w_drop
        + spec.w_access
        + spec.w_advance
        + spec.w_context;
    assert!(total > 0, "at least one step kind must have weight");
    let mut out = Vec::with_capacity(spec.steps);
    for _ in 0..spec.steps {
        let user = rng.gen_range(0..spec.users.max(1));
        let role = rng.gen_range(0..spec.roles.max(1));
        let pick = rng.gen_range(0..total);
        let step = if pick < spec.w_session {
            Step::CreateSession { user }
        } else if pick < spec.w_session + spec.w_activate {
            Step::AddActiveRole { user, role }
        } else if pick < spec.w_session + spec.w_activate + spec.w_drop {
            Step::DropActiveRole { user, role }
        } else if pick < spec.w_session + spec.w_activate + spec.w_drop + spec.w_access {
            Step::CheckAccess {
                user,
                op: rng.gen_range(0..8),
                obj: rng.gen_range(0..spec.objects.max(1)),
            }
        } else if pick
            < spec.w_session + spec.w_activate + spec.w_drop + spec.w_access + spec.w_advance
        {
            Step::Advance {
                secs: rng.gen_range(1..=spec.max_advance_secs.max(1)),
            }
        } else {
            Step::SetContext {
                zone: rng.gen_range(0..crate::enterprise::ZONES.len()),
            }
        };
        out.push(step);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let spec = TraceSpec::default();
        let a = generate(&spec, 5);
        let b = generate(&spec, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.steps);
        assert_ne!(a, generate(&spec, 6));
    }

    #[test]
    fn mix_respects_zero_weights() {
        let spec = TraceSpec {
            w_session: 0,
            w_activate: 1,
            w_drop: 0,
            w_access: 0,
            w_advance: 0,
            steps: 50,
            ..TraceSpec::default()
        };
        let t = generate(&spec, 1);
        assert!(t.iter().all(|s| matches!(s, Step::AddActiveRole { .. })));
    }

    #[test]
    fn describe_is_readable() {
        let s = Step::AddActiveRole { user: 2, role: 3 };
        assert_eq!(s.describe(), "user2 activates role3");
        assert_eq!(s.user(), Some(2));
        assert_eq!(Step::Advance { secs: 5 }.user(), None);
    }
}
