//! Shared trace runner.
//!
//! Every suite that pushes a generated [`Step`] trace through an engine
//! needs the same session bookkeeping: remember the most recent open
//! session per user, skip steps whose user has no session, forget a
//! session when it is deleted. That loop used to be copy-pasted across
//! the replication, durability and equivalence suites; it lives here
//! once, and each suite supplies a [`Driver`] that owns the actual
//! engine calls (one engine, a durable engine, or two engines compared
//! lock-step).

use crate::enterprise::ZONES;
use crate::trace::Step;

/// Engine adapter for [`drive`].
///
/// The runner owns the per-user session table; the driver owns the
/// engine(s). Methods are only invoked when the step is *actionable*:
/// session-scoped steps are skipped while the user has no open session,
/// exactly as the historical per-suite runners did, so a driver never
/// sees a dangling session handle.
pub trait Driver {
    /// Session handle as the driven engine names it.
    type Session: Copy;

    /// Called once per trace step, before the step is interpreted.
    /// Useful for stashing replay context (step index + description)
    /// for panic messages; the default does nothing.
    fn on_step(&mut self, _index: usize, _step: &Step) {}

    /// `user` opens a session. Return the handle to remember, or `None`
    /// if the engine refused (the user then stays session-less).
    fn create_session(&mut self, user: usize) -> Option<Self::Session>;

    /// `user` closes `session`. The runner has already forgotten the
    /// handle; it is never reused.
    fn delete_session(&mut self, user: usize, session: Self::Session);

    /// `user` activates role index `role` in `session`.
    fn add_active_role(&mut self, user: usize, session: Self::Session, role: usize);

    /// `user` deactivates role index `role` in `session`.
    fn drop_active_role(&mut self, user: usize, session: Self::Session, role: usize);

    /// `session` asks for (operation index, object index).
    fn check_access(&mut self, session: Self::Session, op: usize, obj: usize);

    /// Advance logical time by `secs` seconds.
    fn advance(&mut self, secs: u64);

    /// External context event: the `zone` attribute changes.
    fn set_context(&mut self, zone: &str);
}

/// Run `trace` against `driver`, tracking the most recent open session
/// of each of `users` users.
///
/// Decisions (grant/deny) are the driver's business — a denied request
/// is still a delivered request. Only *inapplicable* steps are skipped:
/// session-scoped steps for users without a session, and deletes of
/// never-created sessions.
pub fn drive<D: Driver>(driver: &mut D, trace: &[Step], users: usize) {
    let mut sessions: Vec<Option<D::Session>> = (0..users).map(|_| None).collect();
    for (i, step) in trace.iter().enumerate() {
        driver.on_step(i, step);
        match step {
            Step::CreateSession { user } => {
                if let Some(s) = driver.create_session(*user) {
                    sessions[*user] = Some(s);
                }
            }
            Step::DeleteSession { user } => {
                if let Some(s) = sessions[*user].take() {
                    driver.delete_session(*user, s);
                }
            }
            Step::AddActiveRole { user, role } => {
                if let Some(s) = sessions[*user] {
                    driver.add_active_role(*user, s, *role);
                }
            }
            Step::DropActiveRole { user, role } => {
                if let Some(s) = sessions[*user] {
                    driver.drop_active_role(*user, s, *role);
                }
            }
            Step::CheckAccess { user, op, obj } => {
                if let Some(s) = sessions[*user] {
                    driver.check_access(s, *op, *obj);
                }
            }
            Step::Advance { secs } => driver.advance(*secs),
            Step::SetContext { zone } => driver.set_context(ZONES[*zone]),
        }
    }
}
