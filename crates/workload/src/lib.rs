//! # workload — seeded generators for the evaluation
//!
//! Parametric enterprises (policy graphs) and event traces, deterministic
//! by seed; used by the benchmarks (E2–E7), the equivalence property tests
//! and the examples.

#![warn(missing_docs)]

pub mod drive;
pub mod enterprise;
pub mod trace;

pub use drive::{drive, Driver};
pub use enterprise::{generate as generate_enterprise, EnterpriseSpec};
pub use trace::{generate as generate_trace, Step, TraceSpec};
