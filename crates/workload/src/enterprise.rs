//! Seeded random enterprise generators.
//!
//! The evaluation needs enterprises of parametric size ("large enterprises
//! have hundreds of roles, which requires thousands of rules"). The
//! generator builds policy graphs with configurable role counts, hierarchy
//! shape, users, permissions and constraint densities — deterministically
//! from a seed, so benches and property tests are reproducible.

use policy::{DailyWindow, PolicyGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use snoop::Dur;

/// Shape parameters for a generated enterprise.
#[derive(Debug, Clone)]
pub struct EnterpriseSpec {
    /// Number of roles.
    pub roles: usize,
    /// Number of users.
    pub users: usize,
    /// Number of distinct (op, obj) permissions.
    pub permissions: usize,
    /// Fraction of roles that get a hierarchy parent (0..=1). The hierarchy
    /// is a forest: each selected role attaches under an earlier role.
    pub hierarchy_density: f64,
    /// Number of SSD pairs (disjoint role pairs).
    pub ssd_pairs: usize,
    /// Number of DSD pairs (disjoint role pairs, distinct from SSD pairs).
    pub dsd_pairs: usize,
    /// Fraction of roles with an activation-cardinality cap.
    pub capped_fraction: f64,
    /// Fraction of roles with a daily enabling window.
    pub temporal_fraction: f64,
    /// Fraction of roles with a role-wide max-activation Δ.
    pub duration_fraction: f64,
    /// Fraction of roles with a context constraint (key `zone`).
    pub context_fraction: f64,
    /// Assignments per user (each to a distinct role).
    pub assignments_per_user: usize,
    /// Grants per role.
    pub grants_per_role: usize,
}

impl Default for EnterpriseSpec {
    fn default() -> EnterpriseSpec {
        EnterpriseSpec {
            roles: 50,
            users: 100,
            permissions: 100,
            hierarchy_density: 0.5,
            ssd_pairs: 5,
            dsd_pairs: 5,
            capped_fraction: 0.2,
            temporal_fraction: 0.2,
            duration_fraction: 0.1,
            context_fraction: 0.0,
            assignments_per_user: 3,
            grants_per_role: 4,
        }
    }
}

impl EnterpriseSpec {
    /// A spec sized by role count with everything else proportional —
    /// the E2 sweep's independent variable.
    pub fn sized(roles: usize) -> EnterpriseSpec {
        EnterpriseSpec {
            roles,
            users: roles * 2,
            permissions: roles * 2,
            ssd_pairs: roles / 10,
            dsd_pairs: roles / 10,
            ..EnterpriseSpec::default()
        }
    }

    /// A flat spec: core RBAC only (no hierarchy or constraints) — isolates
    /// AAR₁ behaviour.
    pub fn flat(roles: usize) -> EnterpriseSpec {
        EnterpriseSpec {
            roles,
            users: roles * 2,
            permissions: roles,
            hierarchy_density: 0.0,
            ssd_pairs: 0,
            dsd_pairs: 0,
            capped_fraction: 0.0,
            temporal_fraction: 0.0,
            duration_fraction: 0.0,
            context_fraction: 0.0,
            ..EnterpriseSpec::default()
        }
    }
}

/// Context values used by [`generate`]'s `zone` constraints; traces set the
/// `zone` key to one of these.
pub const ZONES: [&str; 4] = ["z0", "z1", "z2", "z3"];

/// Role name for index `i`.
pub fn role_name(i: usize) -> String {
    format!("role{i}")
}

/// User name for index `i`.
pub fn user_name(i: usize) -> String {
    format!("user{i}")
}

/// Generate a consistent policy graph from the spec and seed.
pub fn generate(spec: &EnterpriseSpec, seed: u64) -> PolicyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PolicyGraph::new("generated");

    for i in 0..spec.roles {
        g.role(&role_name(i));
    }
    // Forest hierarchy: role i may attach under a random earlier role.
    // Constraint-bearing roles are attached carefully below, so hierarchy
    // never makes an SSD pair related.
    let mut parent_of: Vec<Option<usize>> = vec![None; spec.roles];
    #[allow(clippy::needless_range_loop)] // writes parent_of[i] and reads 0..i
    for i in 1..spec.roles {
        if rng.gen_bool(spec.hierarchy_density.clamp(0.0, 1.0)) {
            let p = rng.gen_range(0..i);
            parent_of[i] = Some(p);
            g.inherits(&role_name(p), &role_name(i));
        }
    }
    // Transitive ancestors, to keep SoD pairs unrelated.
    let ancestors = |mut i: usize, parent_of: &[Option<usize>]| {
        let mut out = Vec::new();
        while let Some(p) = parent_of[i] {
            out.push(p);
            i = p;
        }
        out
    };

    // Disjoint role pairs for SSD and DSD. A pair must be unrelated AND
    // share no ancestor: in a forest a common ancestor is a common senior,
    // which defeats a cardinality-2 SoD set transitively (one assignment of
    // the senior authorizes both members) — the consistency check and the
    // static analyzer reject such sets.
    let mut pool: Vec<usize> = (0..spec.roles).collect();
    pool.shuffle(&mut rng);
    let take_pair = |pool: &mut Vec<usize>| -> Option<(usize, usize)> {
        while pool.len() >= 2 {
            let a = pool.pop().expect("len checked");
            let anc_a = ancestors(a, &parent_of);
            // Find a partner with a fully disjoint ancestor chain.
            if let Some(pos) = pool.iter().position(|&b| {
                let anc_b = ancestors(b, &parent_of);
                !anc_a.contains(&b)
                    && !anc_b.contains(&a)
                    && anc_a.iter().all(|x| !anc_b.contains(x))
            }) {
                let b = pool.remove(pos);
                return Some((a, b));
            }
        }
        None
    };
    for k in 0..spec.ssd_pairs {
        if let Some((a, b)) = take_pair(&mut pool) {
            g.ssd_set(&format!("ssd{k}"), &[&role_name(a), &role_name(b)], 2);
        }
    }
    for k in 0..spec.dsd_pairs {
        if let Some((a, b)) = take_pair(&mut pool) {
            g.dsd_set(&format!("dsd{k}"), &[&role_name(a), &role_name(b)], 2);
        }
    }

    // Permissions and grants.
    for p in 0..spec.permissions {
        g.permission(
            &format!("perm{p}"),
            &format!("op{}", p % 8),
            &format!("obj{p}"),
        );
    }
    for i in 0..spec.roles {
        for _ in 0..spec.grants_per_role {
            if spec.permissions > 0 {
                let p = rng.gen_range(0..spec.permissions);
                g.grant(&format!("perm{p}"), &role_name(i));
            }
        }
    }

    // Constraints on roles.
    for i in 0..spec.roles {
        if rng.gen_bool(spec.capped_fraction.clamp(0.0, 1.0)) {
            g.role(&role_name(i)).max_active_users = Some(rng.gen_range(1..=8));
        }
        if rng.gen_bool(spec.temporal_fraction.clamp(0.0, 1.0)) {
            let start_h = rng.gen_range(0..12);
            let len = rng.gen_range(4..12);
            g.role(&role_name(i)).enabling = Some(DailyWindow {
                start_h,
                start_m: 0,
                end_h: start_h + len,
                end_m: 0,
            });
        }
        if rng.gen_bool(spec.duration_fraction.clamp(0.0, 1.0)) {
            g.role(&role_name(i)).max_activation = Some(Dur::from_mins(rng.gen_range(30..240)));
        }
        if rng.gen_bool(spec.context_fraction.clamp(0.0, 1.0)) {
            let zone = ZONES[rng.gen_range(0..ZONES.len())];
            g.context_constraints.push(policy::ContextConstraintSpec {
                role: role_name(i),
                key: "zone".into(),
                value: zone.into(),
            });
        }
    }

    // Users and SSD-safe assignments.
    for u in 0..spec.users {
        g.user(&user_name(u));
    }
    let conflicts: Vec<(std::collections::BTreeSet<String>, usize)> = g
        .ssd
        .iter()
        .map(|s| (s.roles.clone(), s.cardinality))
        .collect();
    for u in 0..spec.users {
        let mut authorized: std::collections::BTreeSet<String> = Default::default();
        let mut tries = 0;
        let mut picked = 0;
        while picked < spec.assignments_per_user && tries < spec.assignments_per_user * 10 {
            tries += 1;
            let r = rng.gen_range(0..spec.roles);
            let mut prospective = authorized.clone();
            prospective.insert(role_name(r));
            // Assignment to r authorizes r and every descendant of r.
            let mut stack = vec![r];
            while let Some(cur) = stack.pop() {
                prospective.insert(role_name(cur));
                for (j, p) in parent_of.iter().enumerate() {
                    if *p == Some(cur) {
                        stack.push(j);
                    }
                }
            }
            let violates = conflicts
                .iter()
                .any(|(roles, n)| prospective.intersection(roles).count() >= *n);
            if violates || authorized.contains(&role_name(r)) {
                continue;
            }
            g.assign(&user_name(u), &role_name(r));
            authorized = prospective;
            picked += 1;
        }
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_policies_are_consistent() {
        for seed in 0..10 {
            let g = generate(&EnterpriseSpec::default(), seed);
            let errors: Vec<_> = policy::check(&g)
                .into_iter()
                .filter(|i| i.severity == policy::Severity::Error)
                .collect();
            assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&EnterpriseSpec::default(), 42);
        let b = generate(&EnterpriseSpec::default(), 42);
        assert_eq!(a, b);
        let c = generate(&EnterpriseSpec::default(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn sized_specs_scale() {
        let g = generate(&EnterpriseSpec::sized(100), 1);
        assert_eq!(g.roles.len(), 100);
        assert_eq!(g.users.len(), 200);
        assert!(!g.ssd.is_empty());
    }

    #[test]
    fn flat_spec_has_no_constraints() {
        let g = generate(&EnterpriseSpec::flat(20), 1);
        assert!(g.hierarchy.is_empty());
        assert!(g.ssd.is_empty());
        assert!(g.dsd.is_empty());
        assert!(g.roles.iter().all(|r| r.enabling.is_none()));
    }

    #[test]
    fn generated_policies_instantiate() {
        let g = generate(&EnterpriseSpec::sized(30), 7);
        let inst = policy::instantiate(&g, snoop::Ts::ZERO).unwrap();
        assert!(inst.pool.len() >= 30 * 4);
    }
}
