//! The rule pool: "all the active authorization rules that are generated
//! form a *rule pool*" (§4.3).
//!
//! Rules are indexed by triggering event and ordered by priority; pools know
//! their classification/granularity breakdown and support the bulk
//! enable/disable the active-security rules perform ("some critical
//! authorization rules are disabled").

use crate::rule::{Granularity, Rule, RuleClass, RuleId};
use serde::{Deserialize, Serialize};
use snoop::EventId;
use std::collections::HashMap;
use std::sync::Arc;

/// An indexed collection of OWTE rules.
///
/// Rules are stored behind [`Arc`] so the executor's per-dispatch rule
/// snapshot is a refcount bump, not a deep clone of the condition/action
/// trees; mutation paths go through [`Arc::make_mut`] (copy-on-write, so
/// a snapshot taken mid-dispatch stays consistent).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RulePool {
    rules: Vec<Arc<Rule>>,
    by_event: HashMap<EventId, Vec<RuleId>>,
    by_name: HashMap<String, RuleId>,
}

/// Counts per classification and granularity (pool statistics for the
/// rule-generation experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total rules.
    pub total: usize,
    /// Enabled rules.
    pub enabled: usize,
    /// Administrative rules.
    pub administrative: usize,
    /// Activity-control rules.
    pub activity_control: usize,
    /// Active-security rules.
    pub active_security: usize,
    /// Specialized rules.
    pub specialized: usize,
    /// Localized rules.
    pub localized: usize,
    /// Globalized rules.
    pub globalized: usize,
    /// Total atomic checks across all conditions.
    pub checks: usize,
}

impl RulePool {
    /// An empty pool.
    pub fn new() -> RulePool {
        RulePool::default()
    }

    /// Add a rule; names must be unique (replaces any same-named rule, so
    /// regeneration can overwrite in place).
    pub fn add(&mut self, rule: Rule) -> RuleId {
        if let Some(&existing) = self.by_name.get(&rule.name) {
            let old_event = self.rules[existing.0 as usize].event;
            if old_event != rule.event {
                if let Some(v) = self.by_event.get_mut(&old_event) {
                    v.retain(|&r| r != existing);
                }
                self.by_event.entry(rule.event).or_default().push(existing);
            }
            self.rules[existing.0 as usize] = Arc::new(rule);
            self.resort(self.rules[existing.0 as usize].event);
            return existing;
        }
        let id = RuleId(u32::try_from(self.rules.len()).expect("rule count fits u32"));
        self.by_name.insert(rule.name.clone(), id);
        self.by_event.entry(rule.event).or_default().push(id);
        self.rules.push(Arc::new(rule));
        self.resort(self.rules[id.0 as usize].event);
        id
    }

    fn resort(&mut self, event: EventId) {
        if let Some(ids) = self.by_event.get_mut(&event) {
            ids.sort_by_key(|&id| (std::cmp::Reverse(self.rules[id.0 as usize].priority), id));
        }
    }

    /// Remove a rule by name. Returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(&id) = self.by_name.get(name) else {
            return false;
        };
        // Tombstone: disable and strip from the event index (ids stay
        // stable so the audit log's references remain valid).
        let event = self.rules[id.0 as usize].event;
        if let Some(v) = self.by_event.get_mut(&event) {
            v.retain(|&r| r != id);
        }
        self.by_name.remove(name);
        Arc::make_mut(&mut self.rules[id.0 as usize]).enabled = false;
        true
    }

    /// Rule ids triggered by `event`, highest priority first (enabled and
    /// disabled alike; the executor filters).
    pub fn triggered_by(&self, event: EventId) -> &[RuleId] {
        self.by_event.get(&event).map_or(&[], Vec::as_slice)
    }

    /// Fetch a rule.
    pub fn get(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(id.0 as usize).map(Arc::as_ref)
    }

    /// Fetch a shared handle to a rule (cheap clone for dispatch
    /// snapshots).
    pub fn get_arc(&self, id: RuleId) -> Option<Arc<Rule>> {
        self.rules.get(id.0 as usize).cloned()
    }

    /// Fetch a rule by name.
    pub fn get_by_name(&self, name: &str) -> Option<&Rule> {
        self.by_name
            .get(name)
            .map(|&id| self.rules[id.0 as usize].as_ref())
    }

    /// Look up a rule id by name.
    pub fn id_of(&self, name: &str) -> Option<RuleId> {
        self.by_name.get(name).copied()
    }

    /// Enable or disable one rule by name. Returns whether it existed.
    pub fn set_enabled(&mut self, name: &str, on: bool) -> bool {
        match self.by_name.get(name) {
            Some(&id) => {
                Arc::make_mut(&mut self.rules[id.0 as usize]).enabled = on;
                true
            }
            None => false,
        }
    }

    /// Enable or disable every rule of a class. Returns how many changed.
    pub fn set_class_enabled(&mut self, class: RuleClass, on: bool) -> usize {
        let mut n = 0;
        let named: Vec<RuleId> = self.by_name.values().copied().collect();
        for id in named {
            let r = &self.rules[id.0 as usize];
            if r.class == class && r.enabled != on {
                Arc::make_mut(&mut self.rules[id.0 as usize]).enabled = on;
                n += 1;
            }
        }
        n
    }

    /// Iterate over live (non-removed) rules.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.by_name
            .values()
            .map(move |&id| (id, self.rules[id.0 as usize].as_ref()))
    }

    /// Number of live rules.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Classification/granularity statistics.
    pub fn stats(&self) -> PoolStats {
        let mut s = PoolStats::default();
        for (_, r) in self.iter() {
            s.total += 1;
            if r.enabled {
                s.enabled += 1;
            }
            match r.class {
                RuleClass::Administrative => s.administrative += 1,
                RuleClass::ActivityControl => s.activity_control += 1,
                RuleClass::ActiveSecurity => s.active_security += 1,
            }
            match r.granularity {
                Granularity::Specialized => s.specialized += 1,
                Granularity::Localized => s.localized += 1,
                Granularity::Globalized => s.globalized += 1,
            }
            s.checks += r.when.check_count();
        }
        s
    }

    /// Render every live rule in OWTE syntax (sorted by name for stable
    /// golden-file comparisons).
    pub fn dump(&self) -> String {
        let mut names: Vec<&String> = self.by_name.keys().collect();
        names.sort();
        let mut out = String::new();
        for n in names {
            out.push_str(&self.get_by_name(n).expect("name indexed").to_owte_string());
            out.push_str("\n\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::CondExpr;

    fn rule(name: &str, event: u32, prio: i32) -> Rule {
        Rule::new(name, EventId(event), CondExpr::True).priority(prio)
    }

    #[test]
    fn add_and_lookup() {
        let mut p = RulePool::new();
        let a = p.add(rule("a", 1, 0));
        assert_eq!(p.id_of("a"), Some(a));
        assert_eq!(p.len(), 1);
        assert_eq!(p.triggered_by(EventId(1)), &[a]);
        assert!(p.triggered_by(EventId(9)).is_empty());
    }

    #[test]
    fn priority_ordering() {
        let mut p = RulePool::new();
        let low = p.add(rule("low", 1, 0));
        let high = p.add(rule("high", 1, 10));
        assert_eq!(p.triggered_by(EventId(1)), &[high, low]);
    }

    #[test]
    fn same_name_replaces() {
        let mut p = RulePool::new();
        let id1 = p.add(rule("x", 1, 0));
        let id2 = p.add(rule("x", 2, 0));
        assert_eq!(id1, id2, "regeneration reuses the slot");
        assert!(p.triggered_by(EventId(1)).is_empty());
        assert_eq!(p.triggered_by(EventId(2)), &[id1]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn remove_tombstones() {
        let mut p = RulePool::new();
        p.add(rule("x", 1, 0));
        assert!(p.remove("x"));
        assert!(!p.remove("x"));
        assert_eq!(p.len(), 0);
        assert!(p.triggered_by(EventId(1)).is_empty());
    }

    #[test]
    fn class_enable_disable() {
        let mut p = RulePool::new();
        p.add(rule("a", 1, 0).class(RuleClass::ActiveSecurity));
        p.add(rule("b", 1, 0).class(RuleClass::ActivityControl));
        p.add(rule("c", 2, 0).class(RuleClass::ActivityControl));
        assert_eq!(p.set_class_enabled(RuleClass::ActivityControl, false), 2);
        assert_eq!(p.stats().enabled, 1);
        assert_eq!(p.set_class_enabled(RuleClass::ActivityControl, true), 2);
        assert!(p.set_enabled("a", false));
        assert!(!p.set_enabled("zz", false));
    }

    #[test]
    fn stats_counts() {
        let mut p = RulePool::new();
        p.add(rule("a", 1, 0).class(RuleClass::Administrative));
        p.add(
            rule("b", 1, 0)
                .class(RuleClass::ActiveSecurity)
                .granularity(Granularity::Globalized),
        );
        let s = p.stats();
        assert_eq!(s.total, 2);
        assert_eq!(s.administrative, 1);
        assert_eq!(s.active_security, 1);
        assert_eq!(s.globalized, 1);
        assert_eq!(s.localized, 1);
    }

    #[test]
    fn dump_is_sorted_and_stable() {
        let mut p = RulePool::new();
        p.add(rule("zeta", 1, 0));
        p.add(rule("alpha", 1, 0));
        let d = p.dump();
        let zi = d.find("zeta").unwrap();
        let ai = d.find("alpha").unwrap();
        assert!(ai < zi);
        assert_eq!(d, p.dump());
    }
}
