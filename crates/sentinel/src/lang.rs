//! The rule language: the **W** (condition) and **T/E** (action) parts of
//! OWTE rules as *data*, not code.
//!
//! The paper's rules are generated from high-level policy, inspected by
//! administrators, and regenerated on policy change — which requires the
//! condition/action parts to be first-class values that can be printed in
//! the paper's OWTE syntax, compared, serialized, and re-synthesized. This
//! module defines that small interpreted language; evaluation happens in
//! [`crate::executor`] against a [`crate::state::AuthState`].

use serde::{Deserialize, Serialize};
use snoop::{Occurrence, Value};
use std::fmt;

/// A reference to a value: either a parameter of the triggering occurrence
/// (e.g. `sessionId`) or a literal baked into the generated rule (localized
/// and specialized rules fix their role/user at generation time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamRef {
    /// Named parameter of the triggering occurrence.
    Param(String),
    /// Literal integer (entity ids are integers).
    Int(i64),
    /// Literal string.
    Str(String),
}

impl ParamRef {
    /// Shorthand for a parameter reference.
    pub fn param(name: impl Into<String>) -> ParamRef {
        ParamRef::Param(name.into())
    }

    /// Resolve against an occurrence. `None` when a named parameter is
    /// absent (the executor treats that as a failed condition / action).
    pub fn resolve(&self, occ: &Occurrence) -> Option<Value> {
        match self {
            ParamRef::Param(name) => occ.params.get(name).cloned(),
            ParamRef::Int(i) => Some(Value::Int(*i)),
            ParamRef::Str(s) => Some(Value::Str(s.clone())),
        }
    }

    /// Resolve to an integer (entity ids).
    pub fn resolve_int(&self, occ: &Occurrence) -> Option<i64> {
        self.resolve(occ).and_then(|v| v.as_int())
    }
}

impl fmt::Display for ParamRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamRef::Param(n) => write!(f, "{n}"),
            ParamRef::Int(i) => write!(f, "{i}"),
            ParamRef::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// An atomic predicate over the authorization state, evaluated with the
/// triggering occurrence's parameters. Each variant corresponds to one of
/// the check functions the paper's rules call (`checkAssignedR1`,
/// `checkAuthorizationR1`, `checkDynamicSoDSet`, `CardinalityR1`, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Check {
    /// `user IN userL`
    UserExists(ParamRef),
    /// `sessionId IN sessionL`
    SessionExists(ParamRef),
    /// `sessionId IN checkUserSessions(user)`
    SessionOwnedBy {
        /// The session to test.
        session: ParamRef,
        /// The claimed owner.
        user: ParamRef,
    },
    /// `R1 NOT IN checkSessionRoles(user)` — role not already active.
    RoleNotActive {
        /// The session.
        session: ParamRef,
        /// The role.
        role: ParamRef,
    },
    /// Role currently active in the given session.
    RoleActive {
        /// The session.
        session: ParamRef,
        /// The role.
        role: ParamRef,
    },
    /// `checkAssignedR1(user)` — direct UA assignment (core RBAC).
    Assigned {
        /// The user.
        user: ParamRef,
        /// The role.
        role: ParamRef,
    },
    /// `checkAuthorizationR1(user)` — assignment via role hierarchies.
    Authorized {
        /// The user.
        user: ParamRef,
        /// The role.
        role: ParamRef,
    },
    /// `checkDynamicSoDSet(user, R1)` — activation keeps all DSD sets
    /// satisfied.
    DsdSatisfied {
        /// The session whose active set grows.
        session: ParamRef,
        /// The candidate role.
        role: ParamRef,
    },
    /// Role is currently enabled (temporal RBAC).
    RoleEnabled(ParamRef),
    /// Role has at least one active session anywhere (`checkActiveDoctor`).
    RoleActiveAnywhere(ParamRef),
    /// `CardinalityR1(INCR)` — adding one more *user* to the role stays
    /// under `max` (paper Rule 4).
    RoleCardinalityBelow {
        /// The role.
        role: ParamRef,
        /// The user attempting activation (already-active users don't
        /// consume a new slot).
        user: ParamRef,
        /// Maximum distinct active users.
        max: usize,
    },
    /// The user having one more active role stays under `max`
    /// (paper scenario 1: "Jane ≤ 5 active roles").
    UserCardinalityBelow {
        /// The user.
        user: ParamRef,
        /// The role being added (idempotent re-activation is free).
        role: ParamRef,
        /// Maximum active roles.
        max: usize,
    },
    /// The user's configured active-role cap (if any) permits one more
    /// role. Unlike [`Check::UserCardinalityBelow`] the bound is looked up
    /// in the state at evaluation time, so one check covers every
    /// specialized per-user cap.
    UserCapOk {
        /// The user.
        user: ParamRef,
        /// The role being added.
        role: ParamRef,
    },
    /// `For ANY role IN getSessionRoles(sessionId): checkPermissions(...)`
    /// — some active role of the session holds (op, obj).
    SessionHasPermission {
        /// The session.
        session: ParamRef,
        /// The operation.
        op: ParamRef,
        /// The object.
        obj: ParamRef,
    },
    /// Did the named primitive event contribute to the triggering
    /// occurrence? Distinguishes OR branches (Rule 6's
    /// `if roleDisableNurse == TRUE`).
    SourceIs(String),
    /// Occurrence parameter equals a value.
    ParamEquals {
        /// Parameter name.
        name: String,
        /// Expected value.
        value: Value,
    },
    /// Escape hatch: a named check resolved by the host state
    /// (context-aware constraints, privacy purposes, …).
    Custom {
        /// Host-registered check name.
        name: String,
        /// Arguments.
        args: Vec<ParamRef>,
    },
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Check::UserExists(u) => write!(f, "({u} IN userL)"),
            Check::SessionExists(s) => write!(f, "({s} IN sessionL)"),
            Check::SessionOwnedBy { session, user } => {
                write!(f, "({session} IN checkUserSessions({user}))")
            }
            Check::RoleNotActive { session, role } => {
                write!(f, "({role} NOT IN checkSessionRoles({session}))")
            }
            Check::RoleActive { session, role } => {
                write!(f, "({role} IN checkSessionRoles({session}))")
            }
            Check::Assigned { user, role } => write!(f, "(checkAssigned({user}, {role}))"),
            Check::Authorized { user, role } => write!(f, "(checkAuthorization({user}, {role}))"),
            Check::DsdSatisfied { session, role } => {
                write!(f, "(checkDynamicSoDSet({session}, {role}))")
            }
            Check::RoleEnabled(r) => write!(f, "(checkEnabled({r}))"),
            Check::RoleActiveAnywhere(r) => write!(f, "(checkActive({r}))"),
            Check::RoleCardinalityBelow { role, max, .. } => {
                write!(f, "(Cardinality({role}, INCR) <= {max})")
            }
            Check::UserCardinalityBelow { user, max, .. } => {
                write!(f, "(UserCardinality({user}, INCR) <= {max})")
            }
            Check::UserCapOk { user, role } => {
                write!(f, "(UserCapOk({user}, {role}))")
            }
            Check::SessionHasPermission { session, op, obj } => write!(
                f,
                "(ForANY role IN getSessionRoles({session}): checkPermissions({op}, {obj}, role))"
            ),
            Check::SourceIs(name) => write!(f, "(source == {name})"),
            Check::ParamEquals { name, value } => write!(f, "({name} == {value})"),
            Check::Custom { name, args } => {
                write!(f, "({name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "))")
            }
        }
    }
}

/// The **W** part: a boolean combination of checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CondExpr {
    /// Always true (paper Rule 2's `WHEN TRUE`).
    True,
    /// Always false.
    False,
    /// One atomic check.
    Check(Check),
    /// Conjunction (`&&`).
    All(Vec<CondExpr>),
    /// Disjunction (`||`).
    Any(Vec<CondExpr>),
    /// Negation.
    Not(Box<CondExpr>),
    /// Guarded branch: `if guard { then } else { otherwise }` — the shape of
    /// Rule 6's per-source conditions.
    If {
        /// The branch guard.
        guard: Box<CondExpr>,
        /// Evaluated when the guard holds.
        then: Box<CondExpr>,
        /// Evaluated when it does not.
        otherwise: Box<CondExpr>,
    },
}

impl CondExpr {
    /// Conjunction builder that flattens trivial cases.
    pub fn all(mut conds: Vec<CondExpr>) -> CondExpr {
        conds.retain(|c| *c != CondExpr::True);
        match conds.len() {
            0 => CondExpr::True,
            1 => conds.pop().expect("len checked"),
            _ => CondExpr::All(conds),
        }
    }

    /// Shorthand for a single check.
    pub fn check(c: Check) -> CondExpr {
        CondExpr::Check(c)
    }

    /// Count atomic checks (used for rule-pool statistics).
    pub fn check_count(&self) -> usize {
        match self {
            CondExpr::True | CondExpr::False => 0,
            CondExpr::Check(_) => 1,
            CondExpr::All(v) | CondExpr::Any(v) => v.iter().map(CondExpr::check_count).sum(),
            CondExpr::Not(c) => c.check_count(),
            CondExpr::If {
                guard,
                then,
                otherwise,
            } => guard.check_count() + then.check_count() + otherwise.check_count(),
        }
    }
}

impl fmt::Display for CondExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondExpr::True => write!(f, "TRUE"),
            CondExpr::False => write!(f, "FALSE"),
            CondExpr::Check(c) => write!(f, "{c}"),
            CondExpr::All(v) => {
                for (i, c) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            CondExpr::Any(v) => {
                for (i, c) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            CondExpr::Not(c) => write!(f, "!{c}"),
            CondExpr::If {
                guard,
                then,
                otherwise,
            } => write!(f, "(if {guard} then {then} else {otherwise})"),
        }
    }
}

/// The **T**/**E** parts: actions and alternative actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionSpec {
    /// `addSessionRole(sessionId)` — activate the role in the session.
    AddSessionRole {
        /// The user.
        user: ParamRef,
        /// The session.
        session: ParamRef,
        /// The role.
        role: ParamRef,
    },
    /// Deactivate the role in the session.
    DropSessionRole {
        /// The user.
        user: ParamRef,
        /// The session.
        session: ParamRef,
        /// The role.
        role: ParamRef,
    },
    /// Deactivate the role in *every* session (forced deactivation).
    DeactivateRoleEverywhere(ParamRef),
    /// Enable a role (temporal/post-condition rules).
    EnableRole(ParamRef),
    /// Disable a role; optionally force deactivation.
    DisableRole {
        /// The role.
        role: ParamRef,
        /// Also deactivate it in open sessions.
        deactivate: bool,
    },
    /// Assign the user to the role (administrative rules).
    AssignUser {
        /// The user.
        user: ParamRef,
        /// The role.
        role: ParamRef,
    },
    /// Deassign the user from the role.
    DeassignUser {
        /// The user.
        user: ParamRef,
        /// The role.
        role: ParamRef,
    },
    /// Record an explicit allow (CheckAccess rules' `<allow Access>`).
    Allow,
    /// `raise error "..."` — deny and record.
    RaiseError(String),
    /// Raise a primitive event (cascading rules; `startEventET7(sessionId)`),
    /// copying the listed occurrence parameters plus fixed extras.
    RaiseEvent {
        /// Primitive event name.
        event: String,
        /// `(target param name, source)` pairs to pass along.
        params: Vec<(String, ParamRef)>,
    },
    /// Cancel pending PLUS timers of a named event whose base occurrence
    /// matches `key_param == key value from this occurrence` (retract a
    /// scheduled Δ-deactivation).
    CancelPlus {
        /// The PLUS event name.
        event: String,
        /// Parameter to match between the base occurrence and this one.
        key_param: String,
    },
    /// Active security: alert the administrators.
    Alert(String),
    /// Active security: disable all rules of a class (e.g. critical rules
    /// during an internal security alert).
    DisableRuleClass(crate::rule::RuleClass),
    /// Re-enable all rules of a class.
    EnableRuleClass(crate::rule::RuleClass),
    /// Disable one rule by name.
    DisableRule(String),
    /// Enable one rule by name.
    EnableRule(String),
    /// Escape hatch: host-defined action.
    Custom {
        /// Host-registered action name.
        name: String,
        /// Arguments.
        args: Vec<ParamRef>,
    },
}

impl fmt::Display for ActionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ActionSpec::*;
        match self {
            AddSessionRole { session, role, .. } => {
                write!(f, "addSessionRole({session}, {role})")
            }
            DropSessionRole { session, role, .. } => {
                write!(f, "dropSessionRole({session}, {role})")
            }
            DeactivateRoleEverywhere(r) => write!(f, "deactivateRoleEverywhere({r})"),
            EnableRole(r) => write!(f, "enableRole({r})"),
            DisableRole { role, deactivate } => {
                if *deactivate {
                    write!(f, "disableRole({role}, deactivate)")
                } else {
                    write!(f, "disableRole({role})")
                }
            }
            AssignUser { user, role } => write!(f, "assignUser({user}, {role})"),
            DeassignUser { user, role } => write!(f, "deassignUser({user}, {role})"),
            Allow => write!(f, "<allow>"),
            RaiseError(m) => write!(f, "raise error {m:?}"),
            RaiseEvent { event, .. } => write!(f, "raiseEvent({event})"),
            CancelPlus { event, key_param } => write!(f, "cancelPlus({event}, by {key_param})"),
            Alert(m) => write!(f, "alert({m:?})"),
            DisableRuleClass(c) => write!(f, "disableRules({c})"),
            EnableRuleClass(c) => write!(f, "enableRules({c})"),
            DisableRule(n) => write!(f, "disableRule({n})"),
            EnableRule(n) => write!(f, "enableRule({n})"),
            Custom { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop::{EventId, Params, Ts};

    fn occ() -> Occurrence {
        Occurrence::primitive(
            EventId(1),
            Ts::from_secs(1),
            Params::new().with("user", 7i64).with("name", "bob"),
        )
    }

    #[test]
    fn param_ref_resolution() {
        let o = occ();
        assert_eq!(ParamRef::param("user").resolve_int(&o), Some(7));
        assert_eq!(ParamRef::Int(3).resolve_int(&o), Some(3));
        assert_eq!(ParamRef::param("missing").resolve(&o), None);
        assert_eq!(
            ParamRef::Str("x".into()).resolve(&o),
            Some(Value::Str("x".into()))
        );
        // Type mismatch: string param is not an int.
        assert_eq!(ParamRef::param("name").resolve_int(&o), None);
    }

    #[test]
    fn cond_all_flattens() {
        assert_eq!(CondExpr::all(vec![]), CondExpr::True);
        assert_eq!(CondExpr::all(vec![CondExpr::True]), CondExpr::True);
        let c = CondExpr::check(Check::UserExists(ParamRef::param("user")));
        assert_eq!(CondExpr::all(vec![CondExpr::True, c.clone()]), c.clone());
        let both = CondExpr::all(vec![c.clone(), c.clone()]);
        assert!(matches!(both, CondExpr::All(ref v) if v.len() == 2));
        assert_eq!(both.check_count(), 2);
    }

    #[test]
    fn display_matches_paper_style() {
        let c = CondExpr::All(vec![
            CondExpr::check(Check::UserExists(ParamRef::param("user"))),
            CondExpr::check(Check::SessionExists(ParamRef::param("sessionId"))),
            CondExpr::check(Check::Assigned {
                user: ParamRef::param("user"),
                role: ParamRef::Int(1),
            }),
        ]);
        assert_eq!(
            c.to_string(),
            "(user IN userL) && (sessionId IN sessionL) && (checkAssigned(user, 1))"
        );
        let a = ActionSpec::RaiseError("Access Denied Cannot Activate".into());
        assert_eq!(
            a.to_string(),
            "raise error \"Access Denied Cannot Activate\""
        );
    }
}
