//! The OWTE rule: On–When–Then–Else (§3 of the paper).
//!
//! A rule has five components: a name, an event ("O"), conditions ("W"),
//! actions ("T", run when the conditions hold) and *alternative actions*
//! ("E", run when they do not) — the extension over plain ECA that makes
//! denial-side behaviour (raise error, alert, cascade-deactivate) first
//! class.

use crate::lang::{ActionSpec, CondExpr};
use serde::{Deserialize, Serialize};
use snoop::EventId;
use std::fmt;

/// Index of a rule in a [`crate::pool::RulePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuleId(pub u32);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// The paper's three rule-pool classifications (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleClass {
    /// Used with high-level specification of access control policies
    /// (assignments, grants, …).
    Administrative,
    /// Controls the activities of users (activations, access checks,
    /// cardinality, …).
    ActivityControl,
    /// Monitors state changes and takes preventive measures.
    ActiveSecurity,
}

impl fmt::Display for RuleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleClass::Administrative => "administrative",
            RuleClass::ActivityControl => "activity-control",
            RuleClass::ActiveSecurity => "active-security",
        };
        f.write_str(s)
    }
}

/// The paper's rule granularities (§4.3): how widely a generated rule
/// applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Specific to one user instance (e.g. "Jane ≤ 5 active roles").
    Specialized,
    /// Specific to one role, derived from role properties (e.g. "≤ 5 users
    /// active in Programmer").
    Localized,
    /// Generic; invoked with different parameters (e.g. the check-access
    /// rule).
    Globalized,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Granularity::Specialized => "specialized",
            Granularity::Localized => "localized",
            Granularity::Globalized => "globalized",
        };
        f.write_str(s)
    }
}

/// An active authorization rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule name (`R_name`), unique within a pool.
    pub name: String,
    /// "O": the (possibly composite) event that triggers the rule.
    pub event: EventId,
    /// "W": conditions checked when the event occurs.
    pub when: CondExpr,
    /// "T": actions when the conditions evaluate to TRUE.
    pub then: Vec<ActionSpec>,
    /// "E": alternative actions when they evaluate to FALSE.
    pub otherwise: Vec<ActionSpec>,
    /// Higher priority fires first among rules on the same event.
    pub priority: i32,
    /// Disabled rules are skipped (active-security responses flip this).
    pub enabled: bool,
    /// Pool classification.
    pub class: RuleClass,
    /// Generation granularity.
    pub granularity: Granularity,
}

impl Rule {
    /// A new enabled activity-control, localized rule with default priority.
    pub fn new(name: impl Into<String>, event: EventId, when: CondExpr) -> Rule {
        Rule {
            name: name.into(),
            event,
            when,
            then: Vec::new(),
            otherwise: Vec::new(),
            priority: 0,
            enabled: true,
            class: RuleClass::ActivityControl,
            granularity: Granularity::Localized,
        }
    }

    /// Builder: set the Then actions.
    pub fn then(mut self, actions: Vec<ActionSpec>) -> Rule {
        self.then = actions;
        self
    }

    /// Builder: set the Else (alternative) actions.
    pub fn otherwise(mut self, actions: Vec<ActionSpec>) -> Rule {
        self.otherwise = actions;
        self
    }

    /// Builder: set the priority.
    pub fn priority(mut self, p: i32) -> Rule {
        self.priority = p;
        self
    }

    /// Builder: set the class.
    pub fn class(mut self, c: RuleClass) -> Rule {
        self.class = c;
        self
    }

    /// Builder: set the granularity.
    pub fn granularity(mut self, g: Granularity) -> Rule {
        self.granularity = g;
        self
    }

    /// Render in the paper's OWTE syntax.
    pub fn to_owte_string(&self) -> String {
        self.to_owte_string_named(|_| None)
    }

    /// Render in OWTE syntax with a resolver mapping event ids to names
    /// (usually [`snoop::Detector::name_of`]), so the `ON` clause reads
    /// `addActiveRole_PC` instead of `E7`.
    pub fn to_owte_string_named(&self, resolve: impl Fn(EventId) -> Option<String>) -> String {
        let event = resolve(self.event).unwrap_or_else(|| self.event.to_string());
        let mut s = format!("RULE [ {}\n", self.name);
        s.push_str(&format!("  ON    {event}\n"));
        s.push_str(&format!("  WHEN  {}\n", self.when));
        if !self.then.is_empty() {
            s.push_str("  THEN  ");
            for (i, a) in self.then.iter().enumerate() {
                if i > 0 {
                    s.push_str("; ");
                }
                s.push_str(&a.to_string());
            }
            s.push('\n');
        }
        if !self.otherwise.is_empty() {
            s.push_str("  ELSE  ");
            for (i, a) in self.otherwise.iter().enumerate() {
                if i > 0 {
                    s.push_str("; ");
                }
                s.push_str(&a.to_string());
            }
            s.push('\n');
        }
        s.push(']');
        s
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_owte_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{Check, ParamRef};

    #[test]
    fn owte_rendering() {
        let r = Rule::new(
            "AAR_1",
            EventId(2),
            CondExpr::All(vec![
                CondExpr::check(Check::UserExists(ParamRef::param("user"))),
                CondExpr::check(Check::Assigned {
                    user: ParamRef::param("user"),
                    role: ParamRef::Int(1),
                }),
            ]),
        )
        .then(vec![ActionSpec::AddSessionRole {
            user: ParamRef::param("user"),
            session: ParamRef::param("sessionId"),
            role: ParamRef::Int(1),
        }])
        .otherwise(vec![ActionSpec::RaiseError(
            "Access Denied Cannot Activate".into(),
        )]);
        let text = r.to_owte_string();
        assert!(text.starts_with("RULE [ AAR_1"));
        assert!(text.contains("ON    E2"));
        assert!(text.contains("WHEN  (user IN userL) && (checkAssigned(user, 1))"));
        assert!(text.contains("THEN  addSessionRole(sessionId, 1)"));
        assert!(text.contains("ELSE  raise error \"Access Denied Cannot Activate\""));
    }

    #[test]
    fn builder_defaults() {
        let r = Rule::new("x", EventId(0), CondExpr::True)
            .priority(5)
            .class(RuleClass::ActiveSecurity)
            .granularity(Granularity::Globalized);
        assert!(r.enabled);
        assert_eq!(r.priority, 5);
        assert_eq!(r.class, RuleClass::ActiveSecurity);
        assert_eq!(r.granularity, Granularity::Globalized);
        assert_eq!(r.class.to_string(), "active-security");
        assert_eq!(r.granularity.to_string(), "globalized");
    }
}
